//! The bytecode engine: typed IR → register bytecode → dispatch loop.
//!
//! Code generation is a single pass over the IR with jump back-patching.
//! Each function gets two register files (i64 and f64); named locals
//! occupy the low slots and expression temporaries stack above them,
//! reset per statement. The dispatch loop is a plain safe-indexed
//! `match` over ops with zero per-step allocation; the counted semantic
//! events (flops, loads, stores) are incremented at exactly the ops the
//! reference interpreter counts, which is what makes the two engines'
//! [`ExecutionReport`]s bit-identical.

use crate::layout::{ElemTy, Layout, Memory, Value};
use crate::lower::{ArrRef, FAlu, IAlu, IExpr, IStmt, LFunc, LProgram, Pred};
use crate::{EngineError, ExecutionReport, RetValue};

/// One bytecode instruction. Register operands are `u16` indices into
/// the current frame's typed register files; `u32` operands are heap
/// base offsets (globals) or jump targets.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Op {
    /// `ri[d] = imm`
    LdcI(u16, i64),
    /// `rf[d] = imm`
    LdcF(u16, f64),
    MovI(u16, u16),
    MovF(u16, u16),
    /// `rf[d] = ri[s] as f64` (uncounted cast)
    CvtIF(u16, u16),
    /// `ri[d] = rf[s] as i64` (saturating, uncounted)
    CvtFI(u16, u16),
    /// Wrapping 64-bit integer ALU; `Div`/`Rem` trap on zero.
    AluI(IAlu, u16, u16, u16),
    /// f64 ALU; counts one flop.
    AluF(FAlu, u16, u16, u16),
    CmpI(Pred, u16, u16, u16),
    /// Float compare into an i-reg (uncounted).
    CmpF(Pred, u16, u16, u16),
    NegI(u16, u16),
    /// Counts one flop.
    NegF(u16, u16),
    /// `ri[d] = (ri[s] == 0) as i64`
    NotI(u16, u16),
    BitNotI(u16, u16),
    /// `ri[d] = (ri[s] != 0) as i64`
    TruthyI(u16, u16),
    /// `ri[d] = (rf[s] != 0.0) as i64`
    TruthyF(u16, u16),
    /// Counts one flop.
    SqrtF(u16, u16),
    LdGlobI(u16, u32),
    LdGlobF(u16, u32),
    StGlobI(u32, u16),
    StGlobF(u32, u16),
    /// `(d, arr, idx)` — bounds-checked element read; counts one load.
    LdElemI(u16, u16, u16),
    LdElemF(u16, u16, u16),
    /// `(arr, idx, src)` — bounds-checked element write; counts one store.
    StElemI(u16, u16, u16),
    StElemF(u16, u16, u16),
    Jmp(u32),
    /// Jump when `ri[c] == 0`.
    Jz(u16, u32),
    Jnz(u16, u32),
    RetV,
    RetI(u16),
    RetF(u16),
}

/// One compiled function: ops plus register-file extents.
#[derive(Debug, Clone)]
pub(crate) struct CodeFn {
    pub(crate) ops: Vec<Op>,
    pub(crate) params: Vec<(u16, ElemTy)>,
    pub(crate) n_i: u16,
    pub(crate) n_f: u16,
}

/// A fully specialized, executable kernel: layout, array table,
/// `init_array`, the entry function, and the baked entry arguments.
///
/// Everything configuration-dependent was resolved at lowering time, so
/// running the same `CompiledKernel` twice is deterministic and
/// bit-identical to interpreting the source under the same spec.
#[derive(Debug, Clone)]
pub struct CompiledKernel {
    pub(crate) layout: Layout,
    pub(crate) arrays: Vec<ArrRef>,
    pub(crate) init: Option<CodeFn>,
    pub(crate) entry: CodeFn,
    pub(crate) entry_args: Vec<Value>,
}

/// Reusable execution state (memory image + register files). Reusing a
/// `VmState` across runs avoids re-allocating the heap per invocation —
/// the fleet hot path runs thousands of kernel executions per round.
#[derive(Debug, Clone, Default)]
pub struct VmState {
    pub(crate) mem: Memory,
    ri: Vec<i64>,
    rf: Vec<f64>,
}

impl VmState {
    /// Creates an empty state; buffers grow to fit on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

struct Counts {
    flops: u64,
    loads: u64,
    stores: u64,
}

/// Per-cell initialization bitmaps for checked execution. Scalar globals
/// are pre-marked (they hold a defined value — zero or their constant
/// initializer — before any statement runs); array cells only become
/// initialized when a store writes them, so a checked load of a
/// never-written cell is a trap even though the unchecked engines would
/// deterministically read the zero fill.
struct Shadow {
    init_i: Vec<bool>,
    init_f: Vec<bool>,
}

impl Shadow {
    /// A zero-capacity shadow for the unchecked path; `exec::<false>`
    /// never touches it.
    fn empty() -> Shadow {
        Shadow {
            init_i: Vec::new(),
            init_f: Vec::new(),
        }
    }

    fn for_layout(layout: &Layout) -> Shadow {
        let mut sh = Shadow {
            init_i: vec![false; layout.i_len],
            init_f: vec![false; layout.f_len],
        };
        for g in &layout.globals {
            if g.is_scalar() {
                match g.elem {
                    ElemTy::I => sh.init_i[g.base] = true,
                    ElemTy::F => sh.init_f[g.base] = true,
                }
            }
        }
        sh
    }
}

impl CompiledKernel {
    /// Runs the kernel with a fresh [`VmState`].
    pub fn run(&self) -> Result<ExecutionReport, EngineError> {
        self.run_with(&mut VmState::new())
    }

    /// Runs the kernel reusing `vm`'s buffers: resets globals to their
    /// initial image, executes `init_array` (when present) and then the
    /// entry function with the baked arguments, and reports the final
    /// checksum plus semantic event counts.
    pub fn run_with(&self, vm: &mut VmState) -> Result<ExecutionReport, EngineError> {
        self.run_impl::<false>(vm, &mut Shadow::empty())
    }

    /// Runs the kernel in checked ("sanitizer") mode with a fresh state.
    ///
    /// Checked mode traps the static analyzer's fault classes
    /// dynamically: out-of-bounds element accesses and zero divisors
    /// (which the unchecked engines already trap) plus reads of array
    /// cells no store has written. When no trap fires, the report is
    /// bit-identical to [`CompiledKernel::run`] — the shadow bitmaps
    /// observe execution without perturbing it.
    pub fn run_checked(&self) -> Result<ExecutionReport, EngineError> {
        self.run_checked_with(&mut VmState::new())
    }

    /// Checked-mode counterpart of [`CompiledKernel::run_with`].
    pub fn run_checked_with(&self, vm: &mut VmState) -> Result<ExecutionReport, EngineError> {
        self.run_impl::<true>(vm, &mut Shadow::for_layout(&self.layout))
    }

    fn run_impl<const CHECKED: bool>(
        &self,
        vm: &mut VmState,
        shadow: &mut Shadow,
    ) -> Result<ExecutionReport, EngineError> {
        self.layout.reset_memory(&mut vm.mem);
        let need_i = self.init.as_ref().map_or(0, |f| f.n_i).max(self.entry.n_i) as usize;
        let need_f = self.init.as_ref().map_or(0, |f| f.n_f).max(self.entry.n_f) as usize;
        if vm.ri.len() < need_i {
            vm.ri.resize(need_i, 0);
        }
        if vm.rf.len() < need_f {
            vm.rf.resize(need_f, 0.0);
        }
        let mut counts = Counts {
            flops: 0,
            loads: 0,
            stores: 0,
        };
        if let Some(init) = &self.init {
            self.exec::<CHECKED>(init, vm, &mut counts, shadow)?;
        }
        for (&(slot, _), &arg) in self.entry.params.iter().zip(&self.entry_args) {
            match arg {
                Value::I(v) => vm.ri[slot as usize] = v,
                Value::F(v) => vm.rf[slot as usize] = v,
            }
        }
        let ret = self.exec::<CHECKED>(&self.entry, vm, &mut counts, shadow)?;
        Ok(ExecutionReport {
            checksum: self.layout.checksum(&vm.mem),
            flops: counts.flops,
            loads: counts.loads,
            stores: counts.stores,
            ret,
        })
    }

    /// Total instruction count across all compiled functions (an
    /// observability hook for tests and benches).
    pub fn op_count(&self) -> usize {
        self.init.as_ref().map_or(0, |f| f.ops.len()) + self.entry.ops.len()
    }

    fn exec<const CHECKED: bool>(
        &self,
        code: &CodeFn,
        vm: &mut VmState,
        c: &mut Counts,
        shadow: &mut Shadow,
    ) -> Result<RetValue, EngineError> {
        let ops = &code.ops[..];
        let ri = &mut vm.ri;
        let rf = &mut vm.rf;
        let mem = &mut vm.mem;
        let mut pc = 0usize;
        loop {
            match ops[pc] {
                Op::LdcI(d, v) => ri[d as usize] = v,
                Op::LdcF(d, v) => rf[d as usize] = v,
                Op::MovI(d, s) => ri[d as usize] = ri[s as usize],
                Op::MovF(d, s) => rf[d as usize] = rf[s as usize],
                Op::CvtIF(d, s) => rf[d as usize] = ri[s as usize] as f64,
                Op::CvtFI(d, s) => ri[d as usize] = rf[s as usize] as i64,
                Op::AluI(op, d, a, b) => {
                    let (x, y) = (ri[a as usize], ri[b as usize]);
                    ri[d as usize] = match op {
                        IAlu::Add => x.wrapping_add(y),
                        IAlu::Sub => x.wrapping_sub(y),
                        IAlu::Mul => x.wrapping_mul(y),
                        IAlu::Div | IAlu::Rem => {
                            if y == 0 {
                                return Err(EngineError::Runtime {
                                    what: "integer division by zero".into(),
                                });
                            }
                            if op == IAlu::Div {
                                x.wrapping_div(y)
                            } else {
                                x.wrapping_rem(y)
                            }
                        }
                        IAlu::And => x & y,
                        IAlu::Or => x | y,
                        IAlu::Xor => x ^ y,
                        IAlu::Shl => x.wrapping_shl(y as u32),
                        IAlu::Shr => x.wrapping_shr(y as u32),
                    };
                }
                Op::AluF(op, d, a, b) => {
                    let (x, y) = (rf[a as usize], rf[b as usize]);
                    c.flops += 1;
                    rf[d as usize] = match op {
                        FAlu::Add => x + y,
                        FAlu::Sub => x - y,
                        FAlu::Mul => x * y,
                        FAlu::Div => x / y,
                        FAlu::Rem => x % y,
                    };
                }
                Op::CmpI(p, d, a, b) => {
                    let (x, y) = (ri[a as usize], ri[b as usize]);
                    ri[d as usize] = i64::from(match p {
                        Pred::Eq => x == y,
                        Pred::Ne => x != y,
                        Pred::Lt => x < y,
                        Pred::Le => x <= y,
                        Pred::Gt => x > y,
                        Pred::Ge => x >= y,
                    });
                }
                Op::CmpF(p, d, a, b) => {
                    let (x, y) = (rf[a as usize], rf[b as usize]);
                    ri[d as usize] = i64::from(match p {
                        Pred::Eq => x == y,
                        Pred::Ne => x != y,
                        Pred::Lt => x < y,
                        Pred::Le => x <= y,
                        Pred::Gt => x > y,
                        Pred::Ge => x >= y,
                    });
                }
                Op::NegI(d, s) => ri[d as usize] = ri[s as usize].wrapping_neg(),
                Op::NegF(d, s) => {
                    c.flops += 1;
                    rf[d as usize] = -rf[s as usize];
                }
                Op::NotI(d, s) => ri[d as usize] = i64::from(ri[s as usize] == 0),
                Op::BitNotI(d, s) => ri[d as usize] = !ri[s as usize],
                Op::TruthyI(d, s) => ri[d as usize] = i64::from(ri[s as usize] != 0),
                Op::TruthyF(d, s) => ri[d as usize] = i64::from(rf[s as usize] != 0.0),
                Op::SqrtF(d, s) => {
                    c.flops += 1;
                    rf[d as usize] = rf[s as usize].sqrt();
                }
                Op::LdGlobI(d, g) => ri[d as usize] = mem.i[g as usize],
                Op::LdGlobF(d, g) => rf[d as usize] = mem.f[g as usize],
                Op::StGlobI(g, s) => mem.i[g as usize] = ri[s as usize],
                Op::StGlobF(g, s) => mem.f[g as usize] = rf[s as usize],
                Op::LdElemI(d, arr, idx) => {
                    let off = self.elem_offset(arr, ri[idx as usize])?;
                    if CHECKED && !shadow.init_i[off] {
                        return Err(self.uninit_read(arr, ri[idx as usize], ElemTy::I));
                    }
                    c.loads += 1;
                    ri[d as usize] = mem.i[off];
                }
                Op::LdElemF(d, arr, idx) => {
                    let off = self.elem_offset(arr, ri[idx as usize])?;
                    if CHECKED && !shadow.init_f[off] {
                        return Err(self.uninit_read(arr, ri[idx as usize], ElemTy::F));
                    }
                    c.loads += 1;
                    rf[d as usize] = mem.f[off];
                }
                Op::StElemI(arr, idx, s) => {
                    let off = self.elem_offset(arr, ri[idx as usize])?;
                    if CHECKED {
                        shadow.init_i[off] = true;
                    }
                    c.stores += 1;
                    mem.i[off] = ri[s as usize];
                }
                Op::StElemF(arr, idx, s) => {
                    let off = self.elem_offset(arr, ri[idx as usize])?;
                    if CHECKED {
                        shadow.init_f[off] = true;
                    }
                    c.stores += 1;
                    mem.f[off] = rf[s as usize];
                }
                Op::Jmp(t) => {
                    pc = t as usize;
                    continue;
                }
                Op::Jz(cr, t) => {
                    if ri[cr as usize] == 0 {
                        pc = t as usize;
                        continue;
                    }
                }
                Op::Jnz(cr, t) => {
                    if ri[cr as usize] != 0 {
                        pc = t as usize;
                        continue;
                    }
                }
                Op::RetV => return Ok(RetValue::Void),
                Op::RetI(s) => return Ok(RetValue::I64(ri[s as usize])),
                Op::RetF(s) => return Ok(RetValue::F64Bits(rf[s as usize].to_bits())),
            }
            pc += 1;
        }
    }

    /// Builds the checked-mode trap for a load of a never-written array
    /// cell, naming the array via reverse lookup in the layout (arrays
    /// are identified by base offset + element type, which is unique).
    #[cold]
    fn uninit_read(&self, arr: u16, idx: i64, elem: ElemTy) -> EngineError {
        let base = self.arrays[arr as usize].base as usize;
        let name = self
            .layout
            .by_name
            .iter()
            .find(|(_, &gi)| {
                let g = &self.layout.globals[gi];
                g.elem == elem && g.base == base && !g.is_scalar()
            })
            .map_or("<array>", |(n, _)| n.as_str());
        EngineError::Runtime {
            what: format!("uninitialized read of `{name}` at index {idx}"),
        }
    }

    #[inline]
    fn elem_offset(&self, arr: u16, idx: i64) -> Result<usize, EngineError> {
        let a = self.arrays[arr as usize];
        if (idx as u64) >= u64::from(a.len) {
            return Err(EngineError::Runtime {
                what: format!("index {idx} out of bounds (len {})", a.len),
            });
        }
        Ok(a.base as usize + idx as usize)
    }
}

/// Generates bytecode for a whole lowered program.
pub(crate) fn codegen(prog: LProgram) -> Result<CompiledKernel, EngineError> {
    let init = match &prog.init {
        Some(f) => Some(gen_fn(f)?),
        None => None,
    };
    let entry = gen_fn(&prog.entry)?;
    Ok(CompiledKernel {
        layout: prog.layout,
        arrays: prog.arrays,
        init,
        entry,
        entry_args: prog.entry_args,
    })
}

/// Break/continue patch lists for the innermost loop.
struct LoopCtx {
    breaks: Vec<usize>,
    continues: Vec<usize>,
}

struct Gen {
    ops: Vec<Op>,
    /// First temp slot (= named local count) per file.
    base_i: u16,
    base_f: u16,
    /// Next free temp per file (reset to base per statement).
    next_i: u16,
    next_f: u16,
    /// High-water marks for the final register-file extents.
    max_i: u16,
    max_f: u16,
    ret: Option<ElemTy>,
    loops: Vec<LoopCtx>,
}

fn gen_fn(f: &LFunc) -> Result<CodeFn, EngineError> {
    let mut g = Gen {
        ops: Vec::new(),
        base_i: f.n_i,
        base_f: f.n_f,
        next_i: f.n_i,
        next_f: f.n_f,
        max_i: f.n_i,
        max_f: f.n_f,
        ret: f.ret,
        loops: Vec::new(),
    };
    g.stmts(&f.stmts)?;
    g.default_ret()?;
    Ok(CodeFn {
        ops: g.ops,
        params: f.params.clone(),
        n_i: g.max_i,
        n_f: g.max_f,
    })
}

impl Gen {
    fn temp(&mut self, ty: ElemTy) -> Result<u16, EngineError> {
        let (next, max) = match ty {
            ElemTy::I => (&mut self.next_i, &mut self.max_i),
            ElemTy::F => (&mut self.next_f, &mut self.max_f),
        };
        let slot = *next;
        *next = next
            .checked_add(1)
            .ok_or_else(|| EngineError::Unsupported {
                what: "expression needs more than 65535 registers".into(),
            })?;
        *max = (*max).max(*next);
        Ok(slot)
    }

    fn reset_temps(&mut self) {
        self.next_i = self.base_i;
        self.next_f = self.base_f;
    }

    fn here(&self) -> u32 {
        self.ops.len() as u32
    }

    fn patch(&mut self, at: usize, target: u32) {
        match &mut self.ops[at] {
            Op::Jmp(t) | Op::Jz(_, t) | Op::Jnz(_, t) => *t = target,
            other => unreachable!("patching a non-jump op {other:?}"),
        }
    }

    fn stmts(&mut self, stmts: &[IStmt]) -> Result<(), EngineError> {
        for s in stmts {
            self.reset_temps();
            self.stmt(s)?;
        }
        Ok(())
    }

    fn stmt(&mut self, s: &IStmt) -> Result<(), EngineError> {
        match s {
            IStmt::SetLocal(slot, ty, value) => {
                let r = self.expr(value)?;
                if r != *slot {
                    self.ops.push(match ty {
                        ElemTy::I => Op::MovI(*slot, r),
                        ElemTy::F => Op::MovF(*slot, r),
                    });
                }
                Ok(())
            }
            IStmt::SetGlob(base, ty, value) => {
                let r = self.expr(value)?;
                self.ops.push(match ty {
                    ElemTy::I => Op::StGlobI(*base, r),
                    ElemTy::F => Op::StGlobF(*base, r),
                });
                Ok(())
            }
            IStmt::SetElem(arr, idx, value) => {
                let ridx = self.expr(idx)?;
                let rval = self.expr(value)?;
                self.ops.push(match value.ty() {
                    ElemTy::I => Op::StElemI(*arr, ridx, rval),
                    ElemTy::F => Op::StElemF(*arr, ridx, rval),
                });
                Ok(())
            }
            IStmt::Eval(e) => {
                self.expr(e)?;
                Ok(())
            }
            IStmt::If {
                cond,
                then_s,
                else_s,
            } => {
                let rc = self.expr(cond)?;
                let jz = self.ops.len();
                self.ops.push(Op::Jz(rc, 0));
                self.stmts(then_s)?;
                if else_s.is_empty() {
                    let end = self.here();
                    self.patch(jz, end);
                } else {
                    let jend = self.ops.len();
                    self.ops.push(Op::Jmp(0));
                    let else_at = self.here();
                    self.patch(jz, else_at);
                    self.stmts(else_s)?;
                    let end = self.here();
                    self.patch(jend, end);
                }
                Ok(())
            }
            IStmt::While { cond, body } => {
                let start = self.here();
                let rc = self.expr(cond)?;
                let jz = self.ops.len();
                self.ops.push(Op::Jz(rc, 0));
                self.loops.push(LoopCtx {
                    breaks: Vec::new(),
                    continues: Vec::new(),
                });
                self.stmts(body)?;
                self.ops.push(Op::Jmp(start));
                let end = self.here();
                self.patch(jz, end);
                let ctx = self.loops.pop().expect("loop context pushed above");
                for at in ctx.breaks {
                    self.patch(at, end);
                }
                for at in ctx.continues {
                    self.patch(at, start);
                }
                Ok(())
            }
            IStmt::DoWhile { body, cond } => {
                let start = self.here();
                self.loops.push(LoopCtx {
                    breaks: Vec::new(),
                    continues: Vec::new(),
                });
                self.stmts(body)?;
                let cond_at = self.here();
                self.reset_temps();
                let rc = self.expr(cond)?;
                self.ops.push(Op::Jnz(rc, start));
                let end = self.here();
                let ctx = self.loops.pop().expect("loop context pushed above");
                for at in ctx.breaks {
                    self.patch(at, end);
                }
                for at in ctx.continues {
                    self.patch(at, cond_at);
                }
                Ok(())
            }
            IStmt::For {
                init,
                cond,
                step,
                body,
            } => {
                self.stmts(init)?;
                let start = self.here();
                self.reset_temps();
                let jz = match cond {
                    Some(c) => {
                        let rc = self.expr(c)?;
                        let jz = self.ops.len();
                        self.ops.push(Op::Jz(rc, 0));
                        Some(jz)
                    }
                    None => None,
                };
                self.loops.push(LoopCtx {
                    breaks: Vec::new(),
                    continues: Vec::new(),
                });
                self.stmts(body)?;
                let step_at = self.here();
                self.stmts(step)?;
                self.ops.push(Op::Jmp(start));
                let end = self.here();
                if let Some(jz) = jz {
                    self.patch(jz, end);
                }
                let ctx = self.loops.pop().expect("loop context pushed above");
                for at in ctx.breaks {
                    self.patch(at, end);
                }
                for at in ctx.continues {
                    self.patch(at, step_at);
                }
                Ok(())
            }
            IStmt::Return(e) => {
                match (e, self.ret) {
                    (None, None) => self.ops.push(Op::RetV),
                    (None, Some(_)) => self.default_ret()?,
                    (Some(e), None) => {
                        // A `return expr;` in a void function still
                        // evaluates the expression for its effects.
                        self.expr(e)?;
                        self.ops.push(Op::RetV);
                    }
                    (Some(e), Some(rt)) => {
                        let mut r = self.expr(e)?;
                        if e.ty() != rt {
                            let t = self.temp(rt)?;
                            self.ops.push(match rt {
                                ElemTy::I => Op::CvtFI(t, r),
                                ElemTy::F => Op::CvtIF(t, r),
                            });
                            r = t;
                        }
                        self.ops.push(match rt {
                            ElemTy::I => Op::RetI(r),
                            ElemTy::F => Op::RetF(r),
                        });
                    }
                }
                Ok(())
            }
            // A break/continue outside any loop unwinds the whole call in
            // the interpreter (the function simply ends), so emit the
            // default return for parity.
            IStmt::Break => match self.loops.last_mut() {
                Some(ctx) => {
                    ctx.breaks.push(self.ops.len());
                    self.ops.push(Op::Jmp(0));
                    Ok(())
                }
                None => self.default_ret(),
            },
            IStmt::Continue => match self.loops.last_mut() {
                Some(ctx) => {
                    ctx.continues.push(self.ops.len());
                    self.ops.push(Op::Jmp(0));
                    Ok(())
                }
                None => self.default_ret(),
            },
        }
    }

    /// Emits the fall-off-the-end return: void returns void, non-void
    /// returns a zero of the return type (the interpreter's behavior for
    /// a missing `return`).
    fn default_ret(&mut self) -> Result<(), EngineError> {
        match self.ret {
            None => self.ops.push(Op::RetV),
            Some(ElemTy::I) => {
                let t = self.temp(ElemTy::I)?;
                self.ops.push(Op::LdcI(t, 0));
                self.ops.push(Op::RetI(t));
            }
            Some(ElemTy::F) => {
                let t = self.temp(ElemTy::F)?;
                self.ops.push(Op::LdcF(t, 0.0));
                self.ops.push(Op::RetF(t));
            }
        }
        Ok(())
    }

    /// Generates code for an expression, returning the register (in the
    /// file matching the node's type) holding the result.
    fn expr(&mut self, e: &IExpr) -> Result<u16, EngineError> {
        match e {
            IExpr::ConstI(v) => {
                let t = self.temp(ElemTy::I)?;
                self.ops.push(Op::LdcI(t, *v));
                Ok(t)
            }
            IExpr::ConstF(v) => {
                let t = self.temp(ElemTy::F)?;
                self.ops.push(Op::LdcF(t, *v));
                Ok(t)
            }
            // Symbolic constants exist only for the cost model; the
            // executable pipeline always lowers concretely.
            IExpr::SymConst(name) => Err(EngineError::Unsupported {
                what: format!("symbolic constant `{name}` in executable code"),
            }),
            IExpr::LocalI(s) | IExpr::LocalF(s) => Ok(*s),
            IExpr::GlobI(g) => {
                let t = self.temp(ElemTy::I)?;
                self.ops.push(Op::LdGlobI(t, *g));
                Ok(t)
            }
            IExpr::GlobF(g) => {
                let t = self.temp(ElemTy::F)?;
                self.ops.push(Op::LdGlobF(t, *g));
                Ok(t)
            }
            IExpr::LoadI(arr, idx) => {
                let ri = self.expr(idx)?;
                let t = self.temp(ElemTy::I)?;
                self.ops.push(Op::LdElemI(t, *arr, ri));
                Ok(t)
            }
            IExpr::LoadF(arr, idx) => {
                let ri = self.expr(idx)?;
                let t = self.temp(ElemTy::F)?;
                self.ops.push(Op::LdElemF(t, *arr, ri));
                Ok(t)
            }
            IExpr::BinI(op, a, b) => {
                let ra = self.expr(a)?;
                let rb = self.expr(b)?;
                let t = self.temp(ElemTy::I)?;
                self.ops.push(Op::AluI(*op, t, ra, rb));
                Ok(t)
            }
            IExpr::BinF(op, a, b) => {
                let ra = self.expr(a)?;
                let rb = self.expr(b)?;
                let t = self.temp(ElemTy::F)?;
                self.ops.push(Op::AluF(*op, t, ra, rb));
                Ok(t)
            }
            IExpr::CmpI(p, a, b) => {
                let ra = self.expr(a)?;
                let rb = self.expr(b)?;
                let t = self.temp(ElemTy::I)?;
                self.ops.push(Op::CmpI(*p, t, ra, rb));
                Ok(t)
            }
            IExpr::CmpF(p, a, b) => {
                let ra = self.expr(a)?;
                let rb = self.expr(b)?;
                let t = self.temp(ElemTy::I)?;
                self.ops.push(Op::CmpF(*p, t, ra, rb));
                Ok(t)
            }
            IExpr::NegI(s) => self.unary(s, ElemTy::I, Op::NegI),
            IExpr::NegF(s) => self.unary(s, ElemTy::F, Op::NegF),
            IExpr::NotI(s) => self.unary(s, ElemTy::I, Op::NotI),
            IExpr::BitNotI(s) => self.unary(s, ElemTy::I, Op::BitNotI),
            IExpr::TruthyF(s) => self.unary(s, ElemTy::I, Op::TruthyF),
            IExpr::I2F(s) => self.unary(s, ElemTy::F, Op::CvtIF),
            IExpr::F2I(s) => self.unary(s, ElemTy::I, Op::CvtFI),
            IExpr::Sqrt(s) => self.unary(s, ElemTy::F, Op::SqrtF),
            IExpr::LogAnd(a, b) => {
                let t = self.temp(ElemTy::I)?;
                let ra = self.expr(a)?;
                let jz = self.ops.len();
                self.ops.push(Op::Jz(ra, 0));
                let rb = self.expr(b)?;
                self.ops.push(Op::TruthyI(t, rb));
                let jend = self.ops.len();
                self.ops.push(Op::Jmp(0));
                let false_at = self.here();
                self.patch(jz, false_at);
                self.ops.push(Op::LdcI(t, 0));
                let end = self.here();
                self.patch(jend, end);
                Ok(t)
            }
            IExpr::LogOr(a, b) => {
                let t = self.temp(ElemTy::I)?;
                let ra = self.expr(a)?;
                let jnz = self.ops.len();
                self.ops.push(Op::Jnz(ra, 0));
                let rb = self.expr(b)?;
                self.ops.push(Op::TruthyI(t, rb));
                let jend = self.ops.len();
                self.ops.push(Op::Jmp(0));
                let true_at = self.here();
                self.patch(jnz, true_at);
                self.ops.push(Op::LdcI(t, 1));
                let end = self.here();
                self.patch(jend, end);
                Ok(t)
            }
            IExpr::Ternary {
                cond,
                then_e,
                else_e,
                ty,
            } => {
                let t = self.temp(*ty)?;
                let rc = self.expr(cond)?;
                let jz = self.ops.len();
                self.ops.push(Op::Jz(rc, 0));
                let rt = self.expr(then_e)?;
                if rt != t {
                    self.ops.push(match ty {
                        ElemTy::I => Op::MovI(t, rt),
                        ElemTy::F => Op::MovF(t, rt),
                    });
                }
                let jend = self.ops.len();
                self.ops.push(Op::Jmp(0));
                let else_at = self.here();
                self.patch(jz, else_at);
                let re = self.expr(else_e)?;
                if re != t {
                    self.ops.push(match ty {
                        ElemTy::I => Op::MovI(t, re),
                        ElemTy::F => Op::MovF(t, re),
                    });
                }
                let end = self.here();
                self.patch(jend, end);
                Ok(t)
            }
        }
    }

    fn unary(
        &mut self,
        s: &IExpr,
        out_ty: ElemTy,
        make: fn(u16, u16) -> Op,
    ) -> Result<u16, EngineError> {
        let rs = self.expr(s)?;
        let t = self.temp(out_ty)?;
        self.ops.push(make(t, rs));
        Ok(t)
    }
}
