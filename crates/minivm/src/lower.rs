//! Lowering: weaved mini-C AST → typed IR, with the spec baked in.
//!
//! The IR is fully typed (every node is statically `I` or `F`) and all
//! specialization constants — array dimensions, pragma parameters,
//! entry arguments — are folded into it. Constant folding is
//! *integer-only*: floating-point operations are never evaluated at
//! lowering time because every executed f64 op is a counted semantic
//! event the bytecode engine must report identically to the reference
//! interpreter. Integer work (loop bounds, index arithmetic, specialized
//! branches) is not counted, so folding it is where the compiled engine
//! earns its speedup without breaking bit-identity.
//!
//! Compound element assignments (`A[i][j] += e`) are rewritten here into
//! explicit temporaries — index once, load once, store once — so the
//! load/store/flop stream matches the interpreter's evaluation order
//! exactly.

use crate::layout::{scalar_elem, ElemTy, Layout, Value};
use crate::spec::SpecConfig;
use crate::EngineError;
use minic::{
    AssignOp, BinaryOp, Block, Decl, Expr, ForInit, Function, Init, PostfixOp, Stmt,
    TranslationUnit, Type, UnaryOp,
};

/// Integer ALU operations (64-bit wrapping semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum IAlu {
    Add,
    Sub,
    Mul,
    /// Traps on a zero divisor.
    Div,
    /// Traps on a zero divisor.
    Rem,
    And,
    Or,
    Xor,
    /// Self-masking shift (`wrapping_shl(b as u32)`).
    Shl,
    Shr,
}

/// Floating ALU operations; each execution counts one flop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FAlu {
    Add,
    Sub,
    Mul,
    Div,
    /// C `fmod` semantics (Rust `%` on f64).
    Rem,
}

/// Comparison predicates (shared by the int and float compare forms).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Pred {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// A typed IR expression. The suffix names the result type.
#[derive(Debug, Clone)]
pub(crate) enum IExpr {
    ConstI(i64),
    ConstF(f64),
    /// A named integer specialization constant, kept symbolic instead of
    /// folded. Only produced by [`lower_program_with`] in symbolic mode,
    /// only consumed by the cost model — the bytecode generator rejects
    /// it.
    SymConst(Box<str>),
    LocalI(u16),
    LocalF(u16),
    /// Scalar global read; the payload is the heap base offset.
    GlobI(u32),
    GlobF(u32),
    /// Array element read (counts a load).
    LoadI(u16, Box<IExpr>),
    LoadF(u16, Box<IExpr>),
    BinI(IAlu, Box<IExpr>, Box<IExpr>),
    /// Counts a flop.
    BinF(FAlu, Box<IExpr>, Box<IExpr>),
    CmpI(Pred, Box<IExpr>, Box<IExpr>),
    CmpF(Pred, Box<IExpr>, Box<IExpr>),
    NegI(Box<IExpr>),
    /// Counts a flop (float negation is an executed f64 op).
    NegF(Box<IExpr>),
    /// Logical not of a raw integer: `(x == 0) as i64`.
    NotI(Box<IExpr>),
    BitNotI(Box<IExpr>),
    /// `(x != 0.0) as i64` — float truthiness, uncounted.
    TruthyF(Box<IExpr>),
    I2F(Box<IExpr>),
    F2I(Box<IExpr>),
    /// Counts a flop.
    Sqrt(Box<IExpr>),
    /// Short-circuit; operands are raw integers, result is 0/1.
    LogAnd(Box<IExpr>, Box<IExpr>),
    LogOr(Box<IExpr>, Box<IExpr>),
    /// Only the taken branch is evaluated; both branches are pre-coerced
    /// to `ty`.
    Ternary {
        cond: Box<IExpr>,
        then_e: Box<IExpr>,
        else_e: Box<IExpr>,
        ty: ElemTy,
    },
}

impl IExpr {
    /// The static result type; total by construction.
    pub(crate) fn ty(&self) -> ElemTy {
        use IExpr::*;
        match self {
            ConstI(_) | SymConst(_) | LocalI(_) | GlobI(_) | LoadI(..) | BinI(..) | CmpI(..)
            | CmpF(..) | NegI(_) | NotI(_) | BitNotI(_) | TruthyF(_) | F2I(_) | LogAnd(..)
            | LogOr(..) => ElemTy::I,
            ConstF(_) | LocalF(_) | GlobF(_) | LoadF(..) | BinF(..) | NegF(_) | I2F(_)
            | Sqrt(_) => ElemTy::F,
            Ternary { ty, .. } => *ty,
        }
    }
}

/// A typed IR statement.
#[derive(Debug, Clone)]
pub(crate) enum IStmt {
    /// Writes a local slot; the value is pre-coerced to the slot type.
    SetLocal(u16, ElemTy, IExpr),
    /// Writes a scalar global at a heap base offset (uncounted).
    SetGlob(u32, ElemTy, IExpr),
    /// Writes an array element (counts a store). The index is evaluated
    /// before the value, matching the interpreter's order.
    SetElem(u16, IExpr, IExpr),
    /// Evaluates for side effects (loads still count) and discards.
    Eval(IExpr),
    If {
        cond: IExpr,
        then_s: Vec<IStmt>,
        else_s: Vec<IStmt>,
    },
    While {
        cond: IExpr,
        body: Vec<IStmt>,
    },
    DoWhile {
        body: Vec<IStmt>,
        cond: IExpr,
    },
    For {
        init: Vec<IStmt>,
        cond: Option<IExpr>,
        step: Vec<IStmt>,
        body: Vec<IStmt>,
    },
    Return(Option<IExpr>),
    Break,
    Continue,
}

/// An array referenced by the IR: element type plus heap extent.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ArrRef {
    pub(crate) base: u32,
    pub(crate) len: u32,
}

/// One lowered function body.
#[derive(Debug, Clone)]
pub(crate) struct LFunc {
    pub(crate) stmts: Vec<IStmt>,
    /// Parameter slots in call order (slot, type).
    pub(crate) params: Vec<(u16, ElemTy)>,
    /// Return type; `None` is void.
    pub(crate) ret: Option<ElemTy>,
    pub(crate) n_i: u16,
    pub(crate) n_f: u16,
}

/// A whole lowered program: layout, array table, `init_array` (when
/// present), the entry kernel, and the pre-coerced entry arguments.
#[derive(Debug, Clone)]
pub(crate) struct LProgram {
    pub(crate) layout: Layout,
    pub(crate) arrays: Vec<ArrRef>,
    pub(crate) init: Option<LFunc>,
    pub(crate) entry: LFunc,
    pub(crate) entry_args: Vec<Value>,
}

/// Lowers `init_array` + `entry` of `tu` under `spec`. Validation
/// (entry existence, arity, pragma bindings) has already happened in
/// [`crate::compile`].
pub(crate) fn lower_program(
    tu: &TranslationUnit,
    entry: &str,
    spec: &SpecConfig,
) -> Result<LProgram, EngineError> {
    lower_program_with(tu, entry, spec, false)
}

/// Like [`lower_program`], but with a `symbolic` switch: when set,
/// integer specialization constants lower to [`IExpr::SymConst`] nodes
/// instead of folding to literals, so the cost model can read loop
/// structure as polynomials in the spec names. The layout (array
/// extents, strides) stays concrete either way — it determines *where*
/// accesses land, not *how many* there are per iteration.
pub(crate) fn lower_program_with(
    tu: &TranslationUnit,
    entry: &str,
    spec: &SpecConfig,
    symbolic: bool,
) -> Result<LProgram, EngineError> {
    let layout = Layout::build(tu, spec)?;
    let mut arrays = Vec::new();
    let mut arr_of_global = vec![u16::MAX; layout.globals.len()];
    for (gi, g) in layout.globals.iter().enumerate() {
        if !g.is_scalar() {
            arr_of_global[gi] = arrays.len() as u16;
            arrays.push(ArrRef {
                base: g.base as u32,
                len: g.len as u32,
            });
        }
    }
    let init = match tu.function("init_array") {
        Some(f) => Some(lower_function(f, &layout, &arr_of_global, spec, symbolic)?),
        None => None,
    };
    let entry_f = tu
        .function(entry)
        .ok_or_else(|| EngineError::UnknownEntry {
            name: entry.to_string(),
        })?;
    let lowered = lower_function(entry_f, &layout, &arr_of_global, spec, symbolic)?;
    let mut entry_args = Vec::with_capacity(spec.args().len());
    for (&(_, ty), &arg) in lowered.params.iter().zip(spec.args()) {
        entry_args.push(Value::from(arg).coerce(ty));
    }
    Ok(LProgram {
        layout,
        arrays,
        init,
        entry: lowered,
        entry_args,
    })
}

fn lower_function(
    f: &Function,
    layout: &Layout,
    arr_of_global: &[u16],
    spec: &SpecConfig,
    symbolic: bool,
) -> Result<LFunc, EngineError> {
    let body = f.body.as_ref().ok_or_else(|| EngineError::Unsupported {
        what: format!("`{}` has no body", f.name),
    })?;
    let ret = match &f.ret {
        Type::Void => None,
        ty => Some(scalar_elem(ty).ok_or_else(|| EngineError::Unsupported {
            what: format!("return type of `{}`", f.name),
        })?),
    };
    let mut lw = Lowerer {
        layout,
        arr_of_global,
        spec,
        symbolic,
        scopes: vec![Vec::new()],
        n_i: 0,
        n_f: 0,
    };
    let mut params = Vec::with_capacity(f.params.len());
    for p in &f.params {
        let ty = scalar_elem(&p.ty).ok_or_else(|| EngineError::Unsupported {
            what: format!("non-scalar parameter `{}` of `{}`", p.name, f.name),
        })?;
        let slot = lw.alloc(ty)?;
        lw.scopes[0].push((p.name.clone(), slot, ty));
        params.push((slot, ty));
    }
    let mut stmts = Vec::new();
    lw.block_stmts(&body.stmts, &mut stmts)?;
    Ok(LFunc {
        stmts,
        params,
        ret,
        n_i: lw.n_i,
        n_f: lw.n_f,
    })
}

/// A resolved write target.
enum Target {
    Local(u16, ElemTy),
    Glob(u32, ElemTy),
}

struct Lowerer<'a> {
    layout: &'a Layout,
    arr_of_global: &'a [u16],
    spec: &'a SpecConfig,
    /// Keep integer spec constants as named [`IExpr::SymConst`] nodes.
    symbolic: bool,
    scopes: Vec<Vec<(String, u16, ElemTy)>>,
    n_i: u16,
    n_f: u16,
}

impl<'a> Lowerer<'a> {
    fn alloc(&mut self, ty: ElemTy) -> Result<u16, EngineError> {
        let n = match ty {
            ElemTy::I => &mut self.n_i,
            ElemTy::F => &mut self.n_f,
        };
        let slot = *n;
        *n = n.checked_add(1).ok_or_else(|| EngineError::Unsupported {
            what: "more than 65535 locals".into(),
        })?;
        Ok(slot)
    }

    fn block_stmts(&mut self, stmts: &[Stmt], out: &mut Vec<IStmt>) -> Result<(), EngineError> {
        for s in stmts {
            self.stmt(s, out)?;
        }
        Ok(())
    }

    fn scoped_block(&mut self, block: &Block) -> Result<Vec<IStmt>, EngineError> {
        self.scopes.push(Vec::new());
        let mut out = Vec::new();
        let r = self.block_stmts(&block.stmts, &mut out);
        self.scopes.pop();
        r?;
        Ok(out)
    }

    fn stmt(&mut self, stmt: &Stmt, out: &mut Vec<IStmt>) -> Result<(), EngineError> {
        match stmt {
            Stmt::Decl(decls) => {
                for d in decls {
                    self.declare(d, out)?;
                }
                Ok(())
            }
            Stmt::Expr(e) => self.stmt_expr(e, out),
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let c = self.cond(cond)?;
                // Dead-branch elimination: a spec-constant condition has
                // no side effects, so only the taken branch survives —
                // exactly what the interpreter executes.
                if let IExpr::ConstI(v) = c {
                    if v != 0 {
                        out.extend(self.scoped_block(then_branch)?);
                    } else if let Some(e) = else_branch {
                        out.extend(self.scoped_block(e)?);
                    }
                    return Ok(());
                }
                let then_s = self.scoped_block(then_branch)?;
                let else_s = match else_branch {
                    Some(e) => self.scoped_block(e)?,
                    None => Vec::new(),
                };
                out.push(IStmt::If {
                    cond: c,
                    then_s,
                    else_s,
                });
                Ok(())
            }
            Stmt::While { cond, body } => {
                let c = self.cond(cond)?;
                if matches!(c, IExpr::ConstI(0)) {
                    return Ok(());
                }
                let body = self.scoped_block(body)?;
                out.push(IStmt::While { cond: c, body });
                Ok(())
            }
            Stmt::DoWhile { body, cond } => {
                let body = self.scoped_block(body)?;
                let cond = self.cond(cond)?;
                out.push(IStmt::DoWhile { body, cond });
                Ok(())
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                self.scopes.push(Vec::new());
                let r = self.lower_for(init, cond, step, body, out);
                self.scopes.pop();
                r
            }
            Stmt::Return(e) => {
                let v = match e {
                    Some(e) => Some(self.expr(e)?),
                    None => None,
                };
                out.push(IStmt::Return(v));
                Ok(())
            }
            Stmt::Break => {
                out.push(IStmt::Break);
                Ok(())
            }
            Stmt::Continue => {
                out.push(IStmt::Continue);
                Ok(())
            }
            Stmt::Pragma(_) | Stmt::Empty => Ok(()),
            Stmt::Block(b) => {
                out.extend(self.scoped_block(b)?);
                Ok(())
            }
        }
    }

    fn lower_for(
        &mut self,
        init: &Option<ForInit>,
        cond: &Option<Expr>,
        step: &Option<Expr>,
        body: &Block,
        out: &mut Vec<IStmt>,
    ) -> Result<(), EngineError> {
        let mut init_s = Vec::new();
        match init {
            Some(ForInit::Decl(decls)) => {
                for d in decls {
                    self.declare(d, &mut init_s)?;
                }
            }
            Some(ForInit::Expr(e)) => self.stmt_expr(e, &mut init_s)?,
            None => {}
        }
        let c = match cond {
            Some(c) => Some(self.cond(c)?),
            None => None,
        };
        if let Some(IExpr::ConstI(0)) = c {
            // The loop body never runs; the init still does.
            out.extend(init_s);
            return Ok(());
        }
        let body_s = self.scoped_block(body)?;
        let mut step_s = Vec::new();
        if let Some(s) = step {
            self.stmt_expr(s, &mut step_s)?;
        }
        out.push(IStmt::For {
            init: init_s,
            cond: c,
            step: step_s,
            body: body_s,
        });
        Ok(())
    }

    fn declare(&mut self, d: &Decl, out: &mut Vec<IStmt>) -> Result<(), EngineError> {
        if d.is_static {
            return Err(EngineError::Unsupported {
                what: format!("static local `{}`", d.name),
            });
        }
        let ty = scalar_elem(&d.ty).ok_or_else(|| EngineError::Unsupported {
            what: format!("non-scalar local `{}`", d.name),
        })?;
        let value = match &d.init {
            None => match ty {
                ElemTy::I => IExpr::ConstI(0),
                ElemTy::F => IExpr::ConstF(0.0),
            },
            Some(Init::Expr(e)) => {
                let v = self.expr(e)?;
                coerce(v, ty)
            }
            Some(Init::List(_)) => {
                return Err(EngineError::Unsupported {
                    what: format!("list initializer on local `{}`", d.name),
                })
            }
        };
        let slot = self.alloc(ty)?;
        // The write precedes the name binding, so `int x = x;` reads any
        // outer `x` — same as the interpreter, which evaluates the
        // initializer before pushing the slot.
        out.push(IStmt::SetLocal(slot, ty, value));
        self.scopes
            .last_mut()
            .expect("a scope is always active")
            .push((d.name.clone(), slot, ty));
        Ok(())
    }

    /// Lowers an expression in statement position: assignments and
    /// inc/dec become stores, anything else is evaluated and discarded.
    fn stmt_expr(&mut self, e: &Expr, out: &mut Vec<IStmt>) -> Result<(), EngineError> {
        match e {
            Expr::Assign { op, lhs, rhs } => self.assign(*op, lhs, rhs, out),
            Expr::Unary {
                op: UnaryOp::PreInc,
                expr,
            }
            | Expr::Postfix {
                op: PostfixOp::Inc,
                expr,
            } => self.incdec(expr, 1, out),
            Expr::Unary {
                op: UnaryOp::PreDec,
                expr,
            }
            | Expr::Postfix {
                op: PostfixOp::Dec,
                expr,
            } => self.incdec(expr, -1, out),
            Expr::Comma(a, b) => {
                self.stmt_expr(a, out)?;
                self.stmt_expr(b, out)
            }
            other => {
                let v = self.expr(other)?;
                // A fully folded constant has no observable effects.
                if !matches!(v, IExpr::ConstI(_) | IExpr::ConstF(_)) {
                    out.push(IStmt::Eval(v));
                }
                Ok(())
            }
        }
    }

    fn assign(
        &mut self,
        op: AssignOp,
        lhs: &Expr,
        rhs: &Expr,
        out: &mut Vec<IStmt>,
    ) -> Result<(), EngineError> {
        match lhs {
            Expr::Ident(_) => {
                let target = self.write_target(lhs)?;
                let (ty, cur) = match &target {
                    Target::Local(slot, ty) => (*ty, local(*slot, *ty)),
                    Target::Glob(base, ty) => (*ty, glob(*base, *ty)),
                };
                let rhs_v = self.expr(rhs)?;
                let value = if op == AssignOp::Assign {
                    coerce(rhs_v, ty)
                } else {
                    coerce(compound(op, cur, rhs_v)?, ty)
                };
                out.push(match target {
                    Target::Local(slot, ty) => IStmt::SetLocal(slot, ty, value),
                    Target::Glob(base, ty) => IStmt::SetGlob(base, ty, value),
                });
                Ok(())
            }
            Expr::Index { .. } => {
                let (arr, elem, idx) = self.flat_index(lhs)?;
                if op == AssignOp::Assign {
                    // Index before value — the interpreter resolves the
                    // lvalue first.
                    let rhs_v = self.expr(rhs)?;
                    out.push(IStmt::SetElem(arr, idx, coerce(rhs_v, elem)));
                } else {
                    // Rewrite `A[i] op= e` as: idx once, load once (one
                    // counted load), combine, store once (one counted
                    // store) — the interpreter's exact event order.
                    let t_idx = self.alloc(ElemTy::I)?;
                    out.push(IStmt::SetLocal(t_idx, ElemTy::I, idx));
                    let t_cur = self.alloc(elem)?;
                    let load = match elem {
                        ElemTy::I => IExpr::LoadI(arr, Box::new(IExpr::LocalI(t_idx))),
                        ElemTy::F => IExpr::LoadF(arr, Box::new(IExpr::LocalI(t_idx))),
                    };
                    out.push(IStmt::SetLocal(t_cur, elem, load));
                    let rhs_v = self.expr(rhs)?;
                    let value = coerce(compound(op, local(t_cur, elem), rhs_v)?, elem);
                    out.push(IStmt::SetElem(arr, IExpr::LocalI(t_idx), value));
                }
                Ok(())
            }
            other => Err(EngineError::Unsupported {
                what: format!("assignment target {other:?}"),
            }),
        }
    }

    fn incdec(
        &mut self,
        target: &Expr,
        delta: i64,
        out: &mut Vec<IStmt>,
    ) -> Result<(), EngineError> {
        // `x++` in statement position is exactly `x += 1`.
        self.assign(AssignOp::Add, target, &Expr::IntLit(delta), out)
    }

    fn write_target(&mut self, e: &Expr) -> Result<Target, EngineError> {
        let Expr::Ident(n) = e else { unreachable!() };
        if let Some(&(_, slot, ty)) = self
            .scopes
            .iter()
            .rev()
            .flat_map(|s| s.iter().rev())
            .find(|(name, _, _)| name == n)
        {
            return Ok(Target::Local(slot, ty));
        }
        if self.spec.lookup(n).is_some() {
            return Err(EngineError::Unsupported {
                what: format!("assignment to specialization constant `{n}`"),
            });
        }
        match self.layout.global(n) {
            Some(g) if g.is_scalar() => Ok(Target::Glob(g.base as u32, g.elem)),
            Some(_) => Err(EngineError::Unsupported {
                what: format!("assignment to array `{n}`"),
            }),
            None => Err(EngineError::UnboundIdent { name: n.clone() }),
        }
    }

    /// Lowers an index chain `A[i]...[k]` to (array ref, element type,
    /// folded flat-offset expression).
    fn flat_index(&mut self, e: &Expr) -> Result<(u16, ElemTy, IExpr), EngineError> {
        let mut indices: Vec<&Expr> = Vec::new();
        let mut base = e;
        while let Expr::Index { base: b, index } = base {
            indices.push(index);
            base = b;
        }
        indices.reverse();
        let Expr::Ident(name) = base else {
            return Err(EngineError::Unsupported {
                what: format!("subscript of non-identifier {base:?}"),
            });
        };
        let Some(&gi) = self.layout.by_name.get(name) else {
            return Err(EngineError::UnboundIdent { name: name.clone() });
        };
        let g = &self.layout.globals[gi];
        if g.dims.len() != indices.len() {
            return Err(EngineError::Unsupported {
                what: format!(
                    "`{name}` subscripted with {} of {} dimensions",
                    indices.len(),
                    g.dims.len()
                ),
            });
        }
        let (elem, strides) = (g.elem, g.strides.clone());
        let arr = self.arr_of_global[gi];
        let mut flat: Option<IExpr> = None;
        for (idx, stride) in indices.iter().zip(&strides) {
            let iv = self.expr(idx)?;
            if iv.ty() != ElemTy::I {
                return Err(EngineError::Unsupported {
                    what: format!("non-integer subscript on `{name}`"),
                });
            }
            let term = fold_bini(IAlu::Mul, iv, IExpr::ConstI(*stride));
            flat = Some(match flat {
                None => term,
                Some(acc) => fold_bini(IAlu::Add, acc, term),
            });
        }
        Ok((arr, elem, flat.expect("arrays have at least one dimension")))
    }

    /// Lowers a branch/loop condition: float conditions get an uncounted
    /// truthiness test so every condition is a raw integer.
    fn cond(&mut self, e: &Expr) -> Result<IExpr, EngineError> {
        let v = self.expr(e)?;
        Ok(as_truth(v))
    }

    fn expr(&mut self, e: &Expr) -> Result<IExpr, EngineError> {
        match e {
            Expr::IntLit(v) => Ok(IExpr::ConstI(*v)),
            Expr::FloatLit(v) => Ok(IExpr::ConstF(*v)),
            Expr::StrLit(_) | Expr::CharLit(_) => Err(EngineError::Unsupported {
                what: "string/char literal in an executed expression".into(),
            }),
            Expr::Ident(n) => self.read_ident(n),
            Expr::Unary { op, expr } => match op {
                UnaryOp::Neg => {
                    let v = self.expr(expr)?;
                    Ok(match v.ty() {
                        ElemTy::I => fold_negi(v),
                        ElemTy::F => IExpr::NegF(Box::new(v)),
                    })
                }
                UnaryOp::Not => {
                    let v = self.expr(expr)?;
                    Ok(fold_noti(as_truth(v)))
                }
                UnaryOp::BitNot => {
                    let v = self.expr(expr)?;
                    if v.ty() != ElemTy::I {
                        return Err(EngineError::Unsupported {
                            what: "bitwise not on a float".into(),
                        });
                    }
                    Ok(match v {
                        IExpr::ConstI(x) => IExpr::ConstI(!x),
                        v => IExpr::BitNotI(Box::new(v)),
                    })
                }
                UnaryOp::PreInc | UnaryOp::PreDec => Err(EngineError::Unsupported {
                    what: "increment/decrement used as a value".into(),
                }),
                UnaryOp::Deref | UnaryOp::AddrOf => Err(EngineError::Unsupported {
                    what: format!("unary `{}`", op.as_str()),
                }),
            },
            Expr::Postfix { .. } => Err(EngineError::Unsupported {
                what: "increment/decrement used as a value".into(),
            }),
            Expr::Binary { op, lhs, rhs } => match op {
                BinaryOp::LogAnd | BinaryOp::LogOr => {
                    let a = as_truth(self.expr(lhs)?);
                    let b = as_truth(self.expr(rhs)?);
                    // Fold a constant left side: short-circuiting a
                    // constant drops no counted events.
                    if let IExpr::ConstI(av) = a {
                        let taken = (av != 0) == matches!(op, BinaryOp::LogAnd);
                        return Ok(if taken {
                            fold_truthy_norm(b)
                        } else {
                            IExpr::ConstI(i64::from(matches!(op, BinaryOp::LogOr)))
                        });
                    }
                    Ok(match op {
                        BinaryOp::LogAnd => IExpr::LogAnd(Box::new(a), Box::new(b)),
                        _ => IExpr::LogOr(Box::new(a), Box::new(b)),
                    })
                }
                _ => {
                    let a = self.expr(lhs)?;
                    let b = self.expr(rhs)?;
                    binary(*op, a, b)
                }
            },
            Expr::Assign { .. } => Err(EngineError::Unsupported {
                what: "assignment used as a value".into(),
            }),
            Expr::Ternary {
                cond,
                then_expr,
                else_expr,
            } => {
                let c = self.cond(cond)?;
                let t = self.expr(then_expr)?;
                let f = self.expr(else_expr)?;
                let ty = unify(t.ty(), f.ty());
                let (t, f) = (coerce(t, ty), coerce(f, ty));
                if let IExpr::ConstI(v) = c {
                    return Ok(if v != 0 { t } else { f });
                }
                Ok(IExpr::Ternary {
                    cond: Box::new(c),
                    then_e: Box::new(t),
                    else_e: Box::new(f),
                    ty,
                })
            }
            Expr::Call { callee, args } => match callee.as_str() {
                "sqrt" => {
                    if args.len() != 1 {
                        return Err(EngineError::Unsupported {
                            what: "sqrt arity".into(),
                        });
                    }
                    let v = self.expr(&args[0])?;
                    Ok(IExpr::Sqrt(Box::new(coerce(v, ElemTy::F))))
                }
                other => Err(EngineError::Unsupported {
                    what: format!("call to `{other}`"),
                }),
            },
            Expr::Index { .. } => {
                let (arr, elem, idx) = self.flat_index(e)?;
                Ok(match elem {
                    ElemTy::I => IExpr::LoadI(arr, Box::new(idx)),
                    ElemTy::F => IExpr::LoadF(arr, Box::new(idx)),
                })
            }
            Expr::Cast { ty, expr } => {
                let v = self.expr(expr)?;
                match scalar_elem(ty) {
                    Some(t) => Ok(coerce(v, t)),
                    None => Err(EngineError::Unsupported {
                        what: format!("cast to {ty:?}"),
                    }),
                }
            }
            Expr::Comma(..) => Err(EngineError::Unsupported {
                what: "comma expression used as a value".into(),
            }),
        }
    }

    /// Reads an identifier: locals, then spec constants (which therefore
    /// shadow globals and fold to literals), then scalar globals.
    fn read_ident(&mut self, n: &str) -> Result<IExpr, EngineError> {
        if let Some(&(_, slot, ty)) = self
            .scopes
            .iter()
            .rev()
            .flat_map(|s| s.iter().rev())
            .find(|(name, _, _)| name == n)
        {
            return Ok(local(slot, ty));
        }
        if let Some(v) = self.spec.lookup(n) {
            return Ok(match Value::from(v) {
                // Symbolic mode: the name survives so the cost model
                // sees trip counts as functions of the constant; its
                // concrete value stays reachable through the spec.
                Value::I(_) if self.symbolic => IExpr::SymConst(n.into()),
                Value::I(x) => IExpr::ConstI(x),
                Value::F(x) => IExpr::ConstF(x),
            });
        }
        match self.layout.global(n) {
            Some(g) if g.is_scalar() => Ok(glob(g.base as u32, g.elem)),
            Some(_) => Err(EngineError::Unsupported {
                what: format!("array `{n}` used as a value"),
            }),
            None => Err(EngineError::UnboundIdent {
                name: n.to_string(),
            }),
        }
    }
}

fn local(slot: u16, ty: ElemTy) -> IExpr {
    match ty {
        ElemTy::I => IExpr::LocalI(slot),
        ElemTy::F => IExpr::LocalF(slot),
    }
}

fn glob(base: u32, ty: ElemTy) -> IExpr {
    match ty {
        ElemTy::I => IExpr::GlobI(base),
        ElemTy::F => IExpr::GlobF(base),
    }
}

fn unify(a: ElemTy, b: ElemTy) -> ElemTy {
    if a == ElemTy::F || b == ElemTy::F {
        ElemTy::F
    } else {
        ElemTy::I
    }
}

/// Inserts a conversion node when the type differs. Int→float folds on
/// constants (the conversion itself is uncounted); float ops never fold.
fn coerce(e: IExpr, want: ElemTy) -> IExpr {
    match (e.ty(), want) {
        (ElemTy::I, ElemTy::F) => match e {
            IExpr::ConstI(v) => IExpr::ConstF(v as f64),
            e => IExpr::I2F(Box::new(e)),
        },
        (ElemTy::F, ElemTy::I) => match e {
            IExpr::ConstF(v) => IExpr::ConstI(v as i64),
            e => IExpr::F2I(Box::new(e)),
        },
        _ => e,
    }
}

/// Raw truthiness operand: integers pass through, floats get an
/// uncounted `!= 0.0` test (which folds only through `NotI` shapes, so a
/// `ConstF` condition stays a runtime test — it never occurs after
/// folding anyway, because float constants are never created by folding
/// float ops).
fn as_truth(e: IExpr) -> IExpr {
    match e.ty() {
        ElemTy::I => e,
        ElemTy::F => match e {
            IExpr::ConstF(v) => IExpr::ConstI(i64::from(v != 0.0)),
            e => IExpr::TruthyF(Box::new(e)),
        },
    }
}

/// Normalizes a raw-integer truth value to 0/1 without adding ops for
/// shapes that are already 0/1.
fn fold_truthy_norm(e: IExpr) -> IExpr {
    match e {
        IExpr::ConstI(v) => IExpr::ConstI(i64::from(v != 0)),
        IExpr::CmpI(..)
        | IExpr::CmpF(..)
        | IExpr::NotI(_)
        | IExpr::TruthyF(_)
        | IExpr::LogAnd(..)
        | IExpr::LogOr(..) => e,
        e => IExpr::NotI(Box::new(IExpr::NotI(Box::new(e)))),
    }
}

fn compound(op: AssignOp, cur: IExpr, rhs: IExpr) -> Result<IExpr, EngineError> {
    let bop = match op {
        AssignOp::Add => BinaryOp::Add,
        AssignOp::Sub => BinaryOp::Sub,
        AssignOp::Mul => BinaryOp::Mul,
        AssignOp::Div => BinaryOp::Div,
        AssignOp::Rem => BinaryOp::Rem,
        AssignOp::And => BinaryOp::BitAnd,
        AssignOp::Or => BinaryOp::BitOr,
        AssignOp::Xor => BinaryOp::BitXor,
        AssignOp::Shl => BinaryOp::Shl,
        AssignOp::Shr => BinaryOp::Shr,
        AssignOp::Assign => unreachable!("plain assignment handled by the caller"),
    };
    binary(bop, cur, rhs)
}

/// Applies the usual promotions and builds (or folds) the typed op node.
fn binary(op: BinaryOp, a: IExpr, b: IExpr) -> Result<IExpr, EngineError> {
    use BinaryOp::*;
    let float = a.ty() == ElemTy::F || b.ty() == ElemTy::F;
    match op {
        Add | Sub | Mul | Div | Rem => {
            if float {
                let fop = match op {
                    Add => FAlu::Add,
                    Sub => FAlu::Sub,
                    Mul => FAlu::Mul,
                    Div => FAlu::Div,
                    _ => FAlu::Rem,
                };
                Ok(IExpr::BinF(
                    fop,
                    Box::new(coerce(a, ElemTy::F)),
                    Box::new(coerce(b, ElemTy::F)),
                ))
            } else {
                let iop = match op {
                    Add => IAlu::Add,
                    Sub => IAlu::Sub,
                    Mul => IAlu::Mul,
                    Div => IAlu::Div,
                    _ => IAlu::Rem,
                };
                Ok(fold_bini(iop, a, b))
            }
        }
        Eq | Ne | Lt | Gt | Le | Ge => {
            let pred = match op {
                Eq => Pred::Eq,
                Ne => Pred::Ne,
                Lt => Pred::Lt,
                Gt => Pred::Gt,
                Le => Pred::Le,
                _ => Pred::Ge,
            };
            if float {
                Ok(IExpr::CmpF(
                    pred,
                    Box::new(coerce(a, ElemTy::F)),
                    Box::new(coerce(b, ElemTy::F)),
                ))
            } else if let (IExpr::ConstI(x), IExpr::ConstI(y)) = (&a, &b) {
                let r = match pred {
                    Pred::Eq => x == y,
                    Pred::Ne => x != y,
                    Pred::Lt => x < y,
                    Pred::Le => x <= y,
                    Pred::Gt => x > y,
                    Pred::Ge => x >= y,
                };
                Ok(IExpr::ConstI(i64::from(r)))
            } else {
                Ok(IExpr::CmpI(pred, Box::new(a), Box::new(b)))
            }
        }
        BitAnd | BitOr | BitXor | Shl | Shr => {
            if float {
                return Err(EngineError::Unsupported {
                    what: format!("`{}` on a float", op.as_str()),
                });
            }
            let iop = match op {
                BitAnd => IAlu::And,
                BitOr => IAlu::Or,
                BitXor => IAlu::Xor,
                Shl => IAlu::Shl,
                _ => IAlu::Shr,
            };
            Ok(fold_bini(iop, a, b))
        }
        LogAnd | LogOr => unreachable!("short-circuit ops handled by the caller"),
    }
}

/// Folds an integer ALU op. Both-constant operands evaluate with the
/// runtime's exact wrapping semantics (except a constant zero divisor,
/// which stays a runtime trap); identity operands that are themselves
/// constants (`x * 1`, `x + 0`) are dropped — dropping a constant never
/// drops a counted event.
fn fold_bini(op: IAlu, a: IExpr, b: IExpr) -> IExpr {
    if let (IExpr::ConstI(x), IExpr::ConstI(y)) = (&a, &b) {
        let (x, y) = (*x, *y);
        if !(matches!(op, IAlu::Div | IAlu::Rem) && y == 0) {
            return IExpr::ConstI(match op {
                IAlu::Add => x.wrapping_add(y),
                IAlu::Sub => x.wrapping_sub(y),
                IAlu::Mul => x.wrapping_mul(y),
                IAlu::Div => x.wrapping_div(y),
                IAlu::Rem => x.wrapping_rem(y),
                IAlu::And => x & y,
                IAlu::Or => x | y,
                IAlu::Xor => x ^ y,
                IAlu::Shl => x.wrapping_shl(y as u32),
                IAlu::Shr => x.wrapping_shr(y as u32),
            });
        }
    }
    match (op, &a, &b) {
        (IAlu::Mul, IExpr::ConstI(1), _) => b,
        (IAlu::Mul, _, IExpr::ConstI(1)) => a,
        (IAlu::Add, IExpr::ConstI(0), _) => b,
        (IAlu::Add, _, IExpr::ConstI(0))
        | (IAlu::Sub, _, IExpr::ConstI(0))
        | (IAlu::Shl, _, IExpr::ConstI(0))
        | (IAlu::Shr, _, IExpr::ConstI(0)) => a,
        _ => IExpr::BinI(op, Box::new(a), Box::new(b)),
    }
}

fn fold_negi(e: IExpr) -> IExpr {
    match e {
        IExpr::ConstI(v) => IExpr::ConstI(v.wrapping_neg()),
        e => IExpr::NegI(Box::new(e)),
    }
}

fn fold_noti(e: IExpr) -> IExpr {
    match e {
        IExpr::ConstI(v) => IExpr::ConstI(i64::from(v == 0)),
        e => IExpr::NotI(Box::new(e)),
    }
}
