//! The adversarial generator holds up its end of the differential
//! bargain: over a deterministic seed range it produces programs that
//! actually trip the checked VM at a healthy rate, every *definite*
//! armed fault really traps, every observed trap was anticipated by the
//! static analyzer (never `Safe`), and fault-free programs execute
//! bit-identically in checked and unchecked mode.

use minic::genprog::{generate_adversarial, FaultClass};
use minivm::{analyze, compile, SpecConfig, Verdict};

const SEEDS: u64 = 96;
/// Each seed runs under two bindings chosen to pull the conditional
/// faults both ways: `9` satisfies the `P > 5` out-of-bounds guards,
/// `-3` the `P < 0` zero-divisor guards.
const BINDINGS: [i64; 2] = [9, -3];
const MIN_TRAP_RATE: f64 = 0.40;

#[test]
fn adversarial_programs_trap_the_checked_vm_at_a_minimum_rate() {
    let mut runs = 0usize;
    let mut traps = 0usize;
    let mut seen = [false; 3]; // OOB, uninit, div-by-zero observed trapping

    for seed in 0..SEEDS {
        let p = generate_adversarial(seed);
        let tu = minic::parse(&p.source)
            .unwrap_or_else(|e| panic!("seed {seed}: parse failed: {e}\n{}", p.source));
        let definite = p.faults.iter().any(|f| f.definite);

        for &binding in &BINDINGS {
            let mut spec = SpecConfig::new();
            for name in &p.params {
                spec.set(name, binding);
            }
            let kernel = compile(&tu, &p.entry, &spec)
                .unwrap_or_else(|e| panic!("seed {seed}: compile failed: {e}\n{}", p.source));
            let checked = kernel.run_checked();
            runs += 1;

            match checked {
                Err(err) => {
                    traps += 1;
                    let msg = err.to_string();
                    if msg.contains("out of bounds") {
                        seen[0] = true;
                    } else if msg.contains("uninitialized read") {
                        seen[1] = true;
                    } else if msg.contains("zero") {
                        seen[2] = true;
                    }
                    // Soundness, contrapositive direction: a program the
                    // checked VM traps must never carry a `Safe` verdict.
                    let report = analyze(&tu, &p.entry, &spec).unwrap_or_else(|e| {
                        panic!("seed {seed}: analysis failed: {e}\n{}", p.source)
                    });
                    assert_ne!(
                        report.verdict,
                        Verdict::Safe,
                        "seed {seed} (P = {binding}) trapped ({msg}) but the analyzer \
                         called it safe:\n{}",
                        p.source
                    );
                }
                Ok(report) => {
                    assert!(
                        !definite,
                        "seed {seed} (P = {binding}) arms a definite fault \
                         ({:?}) but ran to completion:\n{}",
                        p.faults, p.source
                    );
                    if p.faults.is_empty() {
                        let unchecked = kernel.run().expect("clean program runs unchecked");
                        assert_eq!(
                            unchecked, report,
                            "seed {seed}: checked and unchecked reports must be bit-identical"
                        );
                    }
                }
            }
        }
    }

    let rate = traps as f64 / runs as f64;
    assert!(
        rate >= MIN_TRAP_RATE,
        "trap rate {rate:.2} ({traps}/{runs}) below the {MIN_TRAP_RATE} minimum"
    );
    assert!(
        seen.iter().all(|&s| s),
        "not every fault class manifested as a trap: \
         oob = {}, uninit = {}, div-by-zero = {}",
        seen[0],
        seen[1],
        seen[2]
    );
}

#[test]
fn conditional_faults_follow_the_parameter_binding() {
    // Find a seed whose *only* fault is conditional, then show the
    // binding decides: one side traps, the other completes.
    let (seed, p) = (0..512)
        .map(|s| (s, generate_adversarial(s)))
        .find(|(_, p)| {
            p.faults.len() == 1
                && !p.faults[0].definite
                && p.faults[0].class == FaultClass::OutOfBounds
        })
        .expect("a conditional-OOB-only seed exists in 0..512");
    let tu = minic::parse(&p.source).expect("program parses");

    let mut hot = SpecConfig::new();
    let mut cold = SpecConfig::new();
    for name in &p.params {
        hot.set(name, 9i64); // satisfies the `P > 5` guard
        cold.set(name, 1i64);
    }
    let trapped = compile(&tu, &p.entry, &hot)
        .expect("compiles")
        .run_checked();
    assert!(trapped.is_err(), "seed {seed}: guard satisfied, must trap");
    let clean = compile(&tu, &p.entry, &cold)
        .expect("compiles")
        .run_checked();
    assert!(
        clean.is_ok(),
        "seed {seed}: guard unsatisfied, must complete"
    );
}
