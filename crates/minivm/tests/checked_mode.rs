//! The checked ("sanitizer") VM mode and the static analyzer agree on
//! the three fault classes: programs the analyzer rejects as definitely
//! unsafe make the checked VM trap at runtime, and the trap the VM
//! reports matches the analyzer's diagnosis.

use minivm::{analyze, compile, FaultKind, SpecConfig, Verdict};

fn parse(src: &str) -> minic::TranslationUnit {
    minic::parse(src).expect("test program parses")
}

#[test]
fn uninit_read_is_rejected_statically_and_trapped_dynamically() {
    // init_array skips index 0, the kernel reads it.
    let tu = parse(
        "double A[8];
         void init_array() {
             for (int i = 1; i < 8; i++) { A[i] = 1.0; }
         }
         double kernel_gap() {
             double s = 0.0;
             for (int i = 0; i < 8; i++) { s = s + A[i]; }
             return s;
         }",
    );
    let spec = SpecConfig::new();

    let report = analyze(&tu, "kernel_gap", &spec).unwrap();
    assert_eq!(report.verdict, Verdict::Unsafe);
    assert!(!report.is_safe());
    let d = &report.diagnostics[0];
    assert_eq!(d.kind, FaultKind::UninitRead);
    assert!(d.definite, "concrete analysis must report a definite fault");
    assert_eq!(d.function, "kernel_gap");
    assert!(d.detail.contains("index 0"), "{}", d.detail);

    let kernel = compile(&tu, "kernel_gap", &spec).unwrap();
    // The unchecked VM reads the zero-filled cell and completes...
    let unchecked = kernel.run().expect("unchecked mode completes");
    assert_eq!(unchecked.flops, 8);
    // ...while checked mode traps with the same diagnosis.
    let err = kernel.run_checked().expect_err("checked mode must trap");
    let msg = err.to_string();
    assert!(
        msg.contains("uninitialized read of `A` at index 0"),
        "unexpected trap message: {msg}"
    );
}

#[test]
fn out_of_bounds_is_rejected_statically_and_trapped_dynamically() {
    let tu = parse(
        "double A[8];
         void init_array() {
             for (int i = 0; i < 8; i++) { A[i] = 2.0; }
         }
         double kernel_oob() {
             double s = 0.0;
             for (int i = 0; i <= 8; i++) { s = s + A[i]; }
             return s;
         }",
    );
    let spec = SpecConfig::new();

    let report = analyze(&tu, "kernel_oob", &spec).unwrap();
    assert_eq!(report.verdict, Verdict::Unsafe);
    let d = &report.diagnostics[0];
    assert_eq!(d.kind, FaultKind::OutOfBounds);
    assert!(d.definite);
    assert!(
        d.detail.contains("index 8 out of bounds (len 8)"),
        "{}",
        d.detail
    );
    // An aborted analysis must not claim exact counters.
    assert!(!report.counts_exact);

    let kernel = compile(&tu, "kernel_oob", &spec).unwrap();
    assert!(kernel.run().is_err(), "bounds are enforced unchecked too");
    assert!(kernel.run_checked().is_err());
}

#[test]
fn division_by_zero_is_rejected_statically_and_trapped_dynamically() {
    let tu = parse(
        "long d;
         double A[4];
         void init_array() {
             d = 0;
             for (int i = 0; i < 4; i++) { A[i] = 1.0; }
         }
         double kernel_div() {
             long x = 4 / d;
             return A[0] + x;
         }",
    );
    let spec = SpecConfig::new();

    let report = analyze(&tu, "kernel_div", &spec).unwrap();
    assert_eq!(report.verdict, Verdict::Unsafe);
    let d = &report.diagnostics[0];
    assert_eq!(d.kind, FaultKind::DivByZero);
    assert!(d.definite);

    let kernel = compile(&tu, "kernel_div", &spec).unwrap();
    assert!(kernel.run().is_err());
    assert!(kernel.run_checked().is_err());
}

#[test]
fn safe_programs_run_checked_bit_identically() {
    let tu = parse(
        "double A[6];
         double B[6];
         void init_array() {
             for (int i = 0; i < 6; i++) {
                 A[i] = 0.5 * i;
                 B[i] = 1.0 + i;
             }
         }
         double kernel_safe() {
             double s = 0.0;
             for (int i = 0; i < 6; i++) { s = s + A[i] * B[i]; }
             return s;
         }",
    );
    let spec = SpecConfig::new();

    let report = analyze(&tu, "kernel_safe", &spec).unwrap();
    assert_eq!(report.verdict, Verdict::Safe);
    assert!(report.diagnostics.is_empty());
    assert!(report.counts_exact);

    let kernel = compile(&tu, "kernel_safe", &spec).unwrap();
    let unchecked = kernel.run().unwrap();
    let checked = kernel.run_checked().unwrap();
    assert_eq!(unchecked, checked);
    assert_eq!(
        (report.flops, report.loads, report.stores),
        (checked.flops, checked.loads, checked.stores)
    );
}

#[test]
fn diagnostics_render_with_source_location() {
    let tu = parse(
        "double A[8];
         double kernel_bare() {
             return A[2];
         }",
    );
    let report = analyze(&tu, "kernel_bare", &SpecConfig::new()).unwrap();
    assert_eq!(report.verdict, Verdict::Unsafe);
    let rendered = report.render_diagnostics();
    assert!(
        rendered.contains("error[uninit-read]")
            && rendered.contains("`kernel_bare`")
            && rendered.contains("(line 2)"),
        "unexpected rendering: {rendered}"
    );
}
