//! Differential test: both engines execute all 12 Polybench kernels
//! bit-identically.
//!
//! The functional dimensions are the Mini dataset's, clamped to keep the
//! (deliberately slow) reference interpreter fast enough for debug-mode
//! test runs. Both engines receive the *same* spec, so the clamp cannot
//! perturb the equivalence being tested.

use minivm::{compile, interpret, SpecConfig, VmState};
use polybench::{App, Dataset, KernelArg};

/// Functional dimension cap for test-speed (applied identically to both
/// engines).
const DIM_CAP: usize = 20;

fn functional_spec(app: App) -> SpecConfig {
    let dims: Vec<(&str, usize)> = app
        .dims(Dataset::Mini)
        .into_iter()
        .map(|(n, v)| (n, v.min(DIM_CAP)))
        .collect();
    let mut spec = SpecConfig::new();
    for &(name, v) in &dims {
        spec.set(name, v);
    }
    for arg in app.kernel_args(&dims) {
        spec = match arg {
            KernelArg::Int(v) => spec.arg(v),
            KernelArg::Double(v) => spec.arg(v),
        };
    }
    spec
}

#[test]
fn all_twelve_apps_run_bit_identically_on_both_engines() {
    let mut vm = VmState::new();
    for app in App::ALL {
        let src = polybench::source(app, Dataset::Mini);
        let tu = minic::parse(&src).unwrap_or_else(|e| panic!("{}: parse failed: {e}", app.name()));
        let spec = functional_spec(app);
        let entry = app.kernel_name();
        let interpreted = interpret(&tu, &entry, &spec)
            .unwrap_or_else(|e| panic!("{}: interpreter failed: {e}", app.name()));
        let kernel = compile(&tu, &entry, &spec)
            .unwrap_or_else(|e| panic!("{}: compile failed: {e}", app.name()));
        let compiled = kernel
            .run_with(&mut vm)
            .unwrap_or_else(|e| panic!("{}: vm failed: {e}", app.name()));
        assert_eq!(
            interpreted,
            compiled,
            "{}: engine reports diverge",
            app.name()
        );
        // Nussinov is an integer dynamic program; everything else does
        // floating-point work. All kernels touch array elements.
        assert!(
            interpreted.flops > 0 || app == App::Nussinov,
            "{}: kernel executed no floating-point work",
            app.name()
        );
        assert!(
            interpreted.loads > 0,
            "{}: kernel loaded nothing",
            app.name()
        );
        assert!(
            interpreted.stores > 0,
            "{}: kernel stored nothing",
            app.name()
        );
    }
}

#[test]
fn compiled_kernels_are_deterministic_across_reruns() {
    let app = App::TwoMm;
    let src = polybench::source(app, Dataset::Mini);
    let tu = minic::parse(&src).unwrap();
    let spec = functional_spec(app);
    let kernel = compile(&tu, &app.kernel_name(), &spec).unwrap();
    let mut vm = VmState::new();
    let first = kernel.run_with(&mut vm).unwrap();
    for _ in 0..3 {
        assert_eq!(kernel.run_with(&mut vm).unwrap(), first);
    }
}

#[test]
fn spec_fingerprint_distinguishes_configurations() {
    let app = App::Syrk;
    let base = functional_spec(app);
    let threaded = base.clone().bind("__socrates_num_threads", 4i64);
    assert_ne!(base.fingerprint(), threaded.fingerprint());
}
