//! Validates the static analyzer against the VM on all 12 Polybench
//! kernels: every app must be proven safe with *exact* event counters
//! (the analysis degenerates to concrete re-execution on fully
//! specialized kernels), and the symbolic cost polynomials — where the
//! symbolic walker covers the whole program — must evaluate to the very
//! same numbers the VM reports.

use minivm::{analyze, compile, SpecConfig, Verdict, VmState};
use polybench::{App, Dataset, KernelArg};

/// Functional dimension cap for test-speed (identical to the
/// differential test's, so counters line up with the same spec).
const DIM_CAP: usize = 20;

fn functional_spec(app: App) -> SpecConfig {
    let dims: Vec<(&str, usize)> = app
        .dims(Dataset::Mini)
        .into_iter()
        .map(|(n, v)| (n, v.min(DIM_CAP)))
        .collect();
    let mut spec = SpecConfig::new();
    for &(name, v) in &dims {
        spec.set(name, v);
    }
    for arg in app.kernel_args(&dims) {
        spec = match arg {
            KernelArg::Int(v) => spec.arg(v),
            KernelArg::Double(v) => spec.arg(v),
        };
    }
    spec
}

/// Apps whose kernels contain data-dependent branches, where the
/// symbolic walker is expected to bail and the exact counters come from
/// the abstract interpreter alone.
const DATA_DEPENDENT: &[App] = &[App::Correlation, App::Nussinov];

#[test]
fn analyzer_proves_all_twelve_apps_safe_with_exact_counters() {
    let mut vm = VmState::new();
    for app in App::ALL {
        let src = polybench::source(app, Dataset::Mini);
        let tu = minic::parse(&src).unwrap_or_else(|e| panic!("{}: parse failed: {e}", app.name()));
        let spec = functional_spec(app);
        let entry = app.kernel_name();

        let report = analyze(&tu, &entry, &spec)
            .unwrap_or_else(|e| panic!("{}: analysis failed: {e}", app.name()));
        assert_eq!(
            report.verdict,
            Verdict::Safe,
            "{}: not proven safe: {}",
            app.name(),
            report.render_diagnostics()
        );
        assert!(
            report.diagnostics.is_empty(),
            "{}: Safe verdict must carry no diagnostics",
            app.name()
        );
        assert!(
            report.counts_exact,
            "{}: fully specialized kernel should analyze exactly",
            app.name()
        );

        let kernel = compile(&tu, &entry, &spec)
            .unwrap_or_else(|e| panic!("{}: compile failed: {e}", app.name()));
        let executed = kernel
            .run_with(&mut vm)
            .unwrap_or_else(|e| panic!("{}: vm failed: {e}", app.name()));
        assert_eq!(
            (report.flops, report.loads, report.stores),
            (executed.flops, executed.loads, executed.stores),
            "{}: static counters diverge from ExecutionReport",
            app.name()
        );

        // Analyzer-safe ⇒ checked mode completes and changes nothing.
        let checked = kernel
            .run_checked_with(&mut vm)
            .unwrap_or_else(|e| panic!("{}: checked VM trapped a safe kernel: {e}", app.name()));
        assert_eq!(
            checked,
            executed,
            "{}: checked report differs from unchecked",
            app.name()
        );
    }
}

#[test]
fn symbolic_cost_polynomials_match_execution_exactly() {
    for app in App::ALL {
        let src = polybench::source(app, Dataset::Mini);
        let tu = minic::parse(&src).unwrap();
        let spec = functional_spec(app);
        let report = analyze(&tu, &app.kernel_name(), &spec).unwrap();

        if DATA_DEPENDENT.contains(&app) {
            // The walker must *notice* it cannot be exact here, not
            // produce a wrong polynomial: either no model, or one the
            // cross-check demoted.
            assert!(
                report.cost.as_ref().is_none_or(|c| !c.exact),
                "{}: data-dependent kernel unexpectedly claims an exact model",
                app.name()
            );
            continue;
        }
        let cost = report
            .cost
            .unwrap_or_else(|| panic!("{}: no symbolic cost model derived", app.name()));
        assert!(cost.exact, "{}: model demoted by cross-check", app.name());
        assert_eq!(
            cost.eval_at(&spec),
            Some((report.flops, report.loads, report.stores)),
            "{}: polynomial disagrees with exact counters",
            app.name()
        );
        // The model is genuinely symbolic: some dimension constant
        // survives into the polynomials.
        assert!(
            !cost.flops.variables().is_empty() || !cost.loads.variables().is_empty(),
            "{}: cost model folded to constants",
            app.name()
        );
    }
}

#[test]
fn cost_polynomials_extrapolate_across_specs() {
    // Derive at one spec, evaluate at another: the polynomial must track
    // the VM without re-analysis. 2mm has a clean 4-deep loop nest.
    let app = App::TwoMm;
    let src = polybench::source(app, Dataset::Mini);
    let tu = minic::parse(&src).unwrap();
    let entry = app.kernel_name();

    let base = functional_spec(app);
    let cost = analyze(&tu, &entry, &base).unwrap().cost.unwrap();
    assert!(cost.exact);

    for cap in [7usize, 11, 13] {
        let dims: Vec<(&str, usize)> = app
            .dims(Dataset::Mini)
            .into_iter()
            .map(|(n, v)| (n, v.min(cap)))
            .collect();
        let mut other = SpecConfig::new();
        for &(name, v) in &dims {
            other.set(name, v);
        }
        for arg in app.kernel_args(&dims) {
            other = match arg {
                KernelArg::Int(v) => other.arg(v),
                KernelArg::Double(v) => other.arg(v),
            };
        }
        let executed = compile(&tu, &entry, &other).unwrap().run().unwrap();
        assert_eq!(
            cost.eval_at(&other),
            Some((executed.flops, executed.loads, executed.stores)),
            "cap {cap}: extrapolated polynomial diverges from execution"
        );
    }
}
