//! The Milepost-style static feature vector.
//!
//! Milepost GCC exports ~56 counters extracted from GIMPLE. We work one
//! level up, on the `minic` AST, and extract 36 analogous counters that
//! carry the same signal: loop structure, instruction mix, memory access
//! shape, control density and size metrics. COBAYN consumes these as
//! evidence for its Bayesian network.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Index;

/// Enumeration of the extracted static code features.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[allow(missing_docs)] // names are self-describing counters
pub enum FeatureKind {
    Statements,
    Loops,
    ForLoops,
    WhileLoops,
    MaxLoopDepth,
    TotalLoopDepth,
    TripleNests,
    LoopsWithConstantBounds,
    IfStatements,
    BranchesInLoops,
    StatementsInLoops,
    Assignments,
    CompoundAssignments,
    BinaryOps,
    AddSubOps,
    MulDivOps,
    RemOps,
    Comparisons,
    LogicalOps,
    BitwiseOps,
    UnaryOps,
    TernaryOps,
    ArrayAccesses,
    MaxIndexChain,
    ScalarRefs,
    IntLiterals,
    FloatLiterals,
    Calls,
    DistinctCallees,
    PointerDerefs,
    Returns,
    Parameters,
    LocalDecls,
    FloatDecls,
    IntDecls,
    CyclomaticComplexity,
}

impl FeatureKind {
    /// All features in a fixed canonical order (index = vector position).
    pub const ALL: [FeatureKind; 36] = [
        FeatureKind::Statements,
        FeatureKind::Loops,
        FeatureKind::ForLoops,
        FeatureKind::WhileLoops,
        FeatureKind::MaxLoopDepth,
        FeatureKind::TotalLoopDepth,
        FeatureKind::TripleNests,
        FeatureKind::LoopsWithConstantBounds,
        FeatureKind::IfStatements,
        FeatureKind::BranchesInLoops,
        FeatureKind::StatementsInLoops,
        FeatureKind::Assignments,
        FeatureKind::CompoundAssignments,
        FeatureKind::BinaryOps,
        FeatureKind::AddSubOps,
        FeatureKind::MulDivOps,
        FeatureKind::RemOps,
        FeatureKind::Comparisons,
        FeatureKind::LogicalOps,
        FeatureKind::BitwiseOps,
        FeatureKind::UnaryOps,
        FeatureKind::TernaryOps,
        FeatureKind::ArrayAccesses,
        FeatureKind::MaxIndexChain,
        FeatureKind::ScalarRefs,
        FeatureKind::IntLiterals,
        FeatureKind::FloatLiterals,
        FeatureKind::Calls,
        FeatureKind::DistinctCallees,
        FeatureKind::PointerDerefs,
        FeatureKind::Returns,
        FeatureKind::Parameters,
        FeatureKind::LocalDecls,
        FeatureKind::FloatDecls,
        FeatureKind::IntDecls,
        FeatureKind::CyclomaticComplexity,
    ];

    /// Number of features.
    pub const COUNT: usize = Self::ALL.len();

    /// Position of this feature in [`FeatureKind::ALL`].
    pub fn index(self) -> usize {
        Self::ALL
            .iter()
            .position(|f| *f == self)
            .expect("feature in ALL")
    }

    /// A short `ftNN-name` label in the Milepost spirit.
    pub fn label(self) -> String {
        format!("ft{:02}-{:?}", self.index() + 1, self)
    }
}

impl fmt::Display for FeatureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// A feature vector for one kernel function.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Features {
    values: Vec<f64>,
}

impl Features {
    /// Creates an all-zero vector.
    pub fn zeros() -> Self {
        Features {
            values: vec![0.0; FeatureKind::COUNT],
        }
    }

    /// Creates from raw values.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != FeatureKind::COUNT`.
    pub fn from_values(values: Vec<f64>) -> Self {
        assert_eq!(values.len(), FeatureKind::COUNT, "wrong feature count");
        Features { values }
    }

    /// The raw values in canonical order.
    pub fn as_slice(&self) -> &[f64] {
        &self.values
    }

    /// Mutable access used by the extractor.
    pub(crate) fn set(&mut self, kind: FeatureKind, v: f64) {
        self.values[kind.index()] = v;
    }

    /// Increments a counter feature.
    pub(crate) fn bump(&mut self, kind: FeatureKind, by: f64) {
        self.values[kind.index()] += by;
    }

    /// Euclidean distance to another vector (after caller normalisation).
    pub fn distance(&self, other: &Features) -> f64 {
        self.values
            .iter()
            .zip(&other.values)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }
}

impl Index<FeatureKind> for Features {
    type Output = f64;

    fn index(&self, kind: FeatureKind) -> &f64 {
        &self.values[kind.index()]
    }
}

impl Default for Features {
    fn default() -> Self {
        Self::zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_features_have_unique_indices() {
        let mut seen = std::collections::HashSet::new();
        for f in FeatureKind::ALL {
            assert!(seen.insert(f.index()));
        }
        assert_eq!(seen.len(), FeatureKind::COUNT);
    }

    #[test]
    fn labels_are_milepost_like() {
        assert_eq!(FeatureKind::Statements.label(), "ft01-Statements");
        assert!(FeatureKind::CyclomaticComplexity
            .label()
            .starts_with("ft36"));
    }

    #[test]
    fn zeros_vector_has_right_len() {
        assert_eq!(Features::zeros().as_slice().len(), FeatureKind::COUNT);
    }

    #[test]
    fn distance_is_metric_like() {
        let a = Features::zeros();
        let mut b = Features::zeros();
        b.set(FeatureKind::Loops, 3.0);
        b.set(FeatureKind::Calls, 4.0);
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!(b.distance(&a), 5.0);
        assert_eq!(a.distance(&a), 0.0);
    }

    #[test]
    #[should_panic(expected = "wrong feature count")]
    fn from_values_validates_length() {
        let _ = Features::from_values(vec![0.0; 3]);
    }

    #[test]
    fn indexing_by_kind() {
        let mut f = Features::zeros();
        f.bump(FeatureKind::MulDivOps, 2.0);
        f.bump(FeatureKind::MulDivOps, 1.0);
        assert_eq!(f[FeatureKind::MulDivOps], 3.0);
    }
}
