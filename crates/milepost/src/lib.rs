//! # milepost — static program features for compiler autotuning
//!
//! Reimplementation of the role GCC-Milepost plays in the SOCRATES
//! toolchain (DATE 2018): extract a static feature vector from every
//! kernel so COBAYN can predict promising compiler-flag combinations for
//! unseen code from combinations that worked on similar code.
//!
//! - [`extract_function`] walks a [`minic`] AST and fills the 36-counter
//!   [`Features`] vector (loop structure, instruction mix, memory access
//!   shape, control density);
//! - [`FeatureReducer`] mirrors COBAYN's factor-analysis step: z-score
//!   normalisation + PCA projection to a handful of components.
//!
//! ## Example
//!
//! ```
//! use milepost::{extract_function, FeatureKind};
//!
//! let tu = minic::parse(
//!     "void k(int n, double A[100]) {
//!          for (int i = 0; i < n; i++) { A[i] = A[i] * 2.0; }
//!      }",
//! ).unwrap();
//! let f = extract_function(&tu, "k").unwrap();
//! assert_eq!(f[FeatureKind::Loops], 1.0);
//! ```

#![warn(missing_docs)]

mod extract;
mod features;
mod reduce;

pub use extract::{extract_function, UnknownFunctionError};
pub use features::{FeatureKind, Features};
pub use reduce::{FeatureReducer, FitError};

#[cfg(test)]
mod integration_tests {
    use super::*;
    use polybench::{App, Dataset};

    fn kernel_features(app: App) -> Features {
        let src = polybench::source(app, Dataset::Large);
        let tu = minic::parse(&src).unwrap();
        extract_function(&tu, &app.kernel_name()).unwrap()
    }

    #[test]
    fn all_polybench_kernels_extract() {
        for app in App::ALL {
            let f = kernel_features(app);
            assert!(f[FeatureKind::Loops] >= 2.0, "{app}: too few loops");
            assert!(f[FeatureKind::Statements] > 0.0, "{app}");
        }
    }

    #[test]
    fn gemm_kernels_have_two_triple_nests() {
        let f = kernel_features(App::TwoMm);
        assert_eq!(f[FeatureKind::TripleNests], 2.0);
        let f3 = kernel_features(App::ThreeMm);
        assert_eq!(f3[FeatureKind::TripleNests], 3.0);
    }

    #[test]
    fn nussinov_is_the_branchiest_kernel() {
        let branchiness = |app: App| {
            let f = kernel_features(app);
            f[FeatureKind::IfStatements] / f[FeatureKind::Statements].max(1.0)
        };
        let nussinov = branchiness(App::Nussinov);
        for app in App::ALL {
            if app != App::Nussinov {
                assert!(branchiness(app) < nussinov, "{app} branchier than nussinov");
            }
        }
    }

    #[test]
    fn stencils_have_wide_access_fans() {
        // seidel reads 9 neighbours in one statement: far more array
        // accesses per statement-in-loop than gemm kernels.
        let density = |app: App| {
            let f = kernel_features(app);
            f[FeatureKind::ArrayAccesses] / f[FeatureKind::StatementsInLoops].max(1.0)
        };
        assert!(density(App::Seidel2d) > density(App::TwoMm));
    }

    #[test]
    fn feature_vectors_distinguish_all_apps() {
        let all: Vec<Features> = App::ALL.iter().map(|&a| kernel_features(a)).collect();
        for i in 0..all.len() {
            for j in (i + 1)..all.len() {
                assert!(
                    all[i].distance(&all[j]) > 1e-9,
                    "{} and {} have identical features",
                    App::ALL[i],
                    App::ALL[j]
                );
            }
        }
    }

    #[test]
    fn reducer_fits_on_polybench_corpus() {
        let corpus: Vec<Features> = App::ALL.iter().map(|&a| kernel_features(a)).collect();
        let r = FeatureReducer::fit(&corpus, 4).unwrap();
        // Projections stay finite and apps remain distinguishable.
        let proj: Vec<Vec<f64>> = corpus.iter().map(|f| r.project(f)).collect();
        for p in &proj {
            assert!(p.iter().all(|v| v.is_finite()));
        }
        let mut distinct = 0;
        for i in 0..proj.len() {
            for j in (i + 1)..proj.len() {
                let d: f64 = proj[i]
                    .iter()
                    .zip(&proj[j])
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>()
                    .sqrt();
                if d > 1e-6 {
                    distinct += 1;
                }
            }
        }
        assert_eq!(distinct, 66, "all pairs distinguishable after reduction");
    }
}
