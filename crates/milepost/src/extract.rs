//! The feature extractor: a single AST walk with loop-depth tracking.

use crate::features::{FeatureKind, Features};
use minic::ast::*;
use minic::TranslationUnit;
use std::collections::HashSet;
use std::fmt;

/// Extracts the Milepost-style feature vector of the function `name`
/// defined in `tu`.
///
/// # Errors
///
/// Returns [`UnknownFunctionError`] if no function definition named `name`
/// exists.
///
/// # Examples
///
/// ```
/// use milepost::{extract_function, FeatureKind};
///
/// let tu = minic::parse(
///     "void k(int n, double A[100]) {
///          for (int i = 0; i < n; i++) { A[i] = A[i] * 2.0; }
///      }",
/// ).unwrap();
/// let f = extract_function(&tu, "k").unwrap();
/// assert_eq!(f[FeatureKind::Loops], 1.0);
/// assert_eq!(f[FeatureKind::Parameters], 2.0);
/// ```
pub fn extract_function(
    tu: &TranslationUnit,
    name: &str,
) -> Result<Features, UnknownFunctionError> {
    let f = tu
        .function(name)
        .ok_or_else(|| UnknownFunctionError(name.to_string()))?;
    Ok(extract(f, tu))
}

/// Error returned when the requested kernel function does not exist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownFunctionError(pub String);

impl fmt::Display for UnknownFunctionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "no function definition named `{}`", self.0)
    }
}

impl std::error::Error for UnknownFunctionError {}

fn extract(f: &Function, tu: &TranslationUnit) -> Features {
    let mut x = Extractor {
        features: Features::zeros(),
        loop_depth: 0,
        max_depth: 0,
        callees: HashSet::new(),
        defines: collect_defines(tu),
    };
    x.features
        .set(FeatureKind::Parameters, f.params.len() as f64);
    if let Some(body) = &f.body {
        for s in &body.stmts {
            x.stmt(s);
        }
    }
    let loops = x.features[FeatureKind::Loops];
    let ifs = x.features[FeatureKind::IfStatements];
    let ternaries = x.features[FeatureKind::TernaryOps];
    x.features
        .set(FeatureKind::MaxLoopDepth, x.max_depth as f64);
    x.features.set(
        FeatureKind::CyclomaticComplexity,
        1.0 + loops + ifs + ternaries,
    );
    x.features
        .set(FeatureKind::DistinctCallees, x.callees.len() as f64);
    x.features
}

fn collect_defines(tu: &TranslationUnit) -> Vec<(String, i64)> {
    tu.items
        .iter()
        .filter_map(|it| match it {
            Item::Define(text) => {
                let mut parts = text.split_whitespace();
                let name = parts.next()?.to_string();
                let value: i64 = parts.next()?.parse().ok()?;
                Some((name, value))
            }
            _ => None,
        })
        .collect()
}

struct Extractor {
    features: Features,
    loop_depth: usize,
    max_depth: usize,
    callees: HashSet<String>,
    defines: Vec<(String, i64)>,
}

impl Extractor {
    fn lookup(&self, name: &str) -> Option<i64> {
        self.defines
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    fn in_loop(&self) -> bool {
        self.loop_depth > 0
    }

    fn enter_loop(&mut self) {
        self.loop_depth += 1;
        self.max_depth = self.max_depth.max(self.loop_depth);
        self.features
            .bump(FeatureKind::TotalLoopDepth, self.loop_depth as f64);
        if self.loop_depth >= 3 {
            self.features.bump(FeatureKind::TripleNests, 1.0);
        }
    }

    fn exit_loop(&mut self) {
        self.loop_depth -= 1;
    }

    fn count_stmt(&mut self) {
        self.features.bump(FeatureKind::Statements, 1.0);
        if self.in_loop() {
            self.features.bump(FeatureKind::StatementsInLoops, 1.0);
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Decl(decls) => {
                self.count_stmt();
                for d in decls {
                    self.decl(d);
                }
            }
            Stmt::Expr(e) => {
                self.count_stmt();
                self.expr(e);
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                self.count_stmt();
                self.features.bump(FeatureKind::IfStatements, 1.0);
                if self.in_loop() {
                    self.features.bump(FeatureKind::BranchesInLoops, 1.0);
                }
                self.expr(cond);
                for st in &then_branch.stmts {
                    self.stmt(st);
                }
                if let Some(eb) = else_branch {
                    for st in &eb.stmts {
                        self.stmt(st);
                    }
                }
            }
            Stmt::While { cond, body } => {
                self.count_stmt();
                self.features.bump(FeatureKind::Loops, 1.0);
                self.features.bump(FeatureKind::WhileLoops, 1.0);
                self.expr(cond);
                self.enter_loop();
                for st in &body.stmts {
                    self.stmt(st);
                }
                self.exit_loop();
            }
            Stmt::DoWhile { body, cond } => {
                self.count_stmt();
                self.features.bump(FeatureKind::Loops, 1.0);
                self.features.bump(FeatureKind::WhileLoops, 1.0);
                self.enter_loop();
                for st in &body.stmts {
                    self.stmt(st);
                }
                self.exit_loop();
                self.expr(cond);
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                self.count_stmt();
                self.features.bump(FeatureKind::Loops, 1.0);
                self.features.bump(FeatureKind::ForLoops, 1.0);
                if self.has_constant_bound(cond.as_ref()) {
                    self.features
                        .bump(FeatureKind::LoopsWithConstantBounds, 1.0);
                }
                match init {
                    Some(ForInit::Decl(decls)) => {
                        for d in decls {
                            self.decl(d);
                        }
                    }
                    Some(ForInit::Expr(e)) => self.expr(e),
                    None => {}
                }
                if let Some(c) = cond {
                    self.expr(c);
                }
                if let Some(st) = step {
                    self.expr(st);
                }
                self.enter_loop();
                for st in &body.stmts {
                    self.stmt(st);
                }
                self.exit_loop();
            }
            Stmt::Return(e) => {
                self.count_stmt();
                self.features.bump(FeatureKind::Returns, 1.0);
                if let Some(e) = e {
                    self.expr(e);
                }
            }
            Stmt::Break | Stmt::Continue | Stmt::Empty | Stmt::Pragma(_) => {
                self.count_stmt();
            }
            Stmt::Block(b) => {
                for st in &b.stmts {
                    self.stmt(st);
                }
            }
        }
    }

    fn decl(&mut self, d: &Decl) {
        self.features.bump(FeatureKind::LocalDecls, 1.0);
        match base_type(&d.ty) {
            Type::Float | Type::Double => self.features.bump(FeatureKind::FloatDecls, 1.0),
            Type::Int | Type::UInt | Type::Long | Type::Char => {
                self.features.bump(FeatureKind::IntDecls, 1.0)
            }
            _ => {}
        }
        if let Some(Init::Expr(e)) = &d.init {
            self.expr(e);
        }
    }

    fn has_constant_bound(&self, cond: Option<&Expr>) -> bool {
        let Some(Expr::Binary { rhs, .. }) = cond else {
            return false;
        };
        rhs.eval_int(&|n| self.lookup(n)).is_some()
    }

    fn expr(&mut self, e: &Expr) {
        match e {
            Expr::IntLit(_) => self.features.bump(FeatureKind::IntLiterals, 1.0),
            Expr::FloatLit(_) => self.features.bump(FeatureKind::FloatLiterals, 1.0),
            Expr::StrLit(_) | Expr::CharLit(_) => {}
            Expr::Ident(_) => self.features.bump(FeatureKind::ScalarRefs, 1.0),
            Expr::Unary { op, expr } => {
                self.features.bump(FeatureKind::UnaryOps, 1.0);
                if matches!(op, UnaryOp::Deref) {
                    self.features.bump(FeatureKind::PointerDerefs, 1.0);
                }
                self.expr(expr);
            }
            Expr::Postfix { expr, .. } => {
                self.features.bump(FeatureKind::UnaryOps, 1.0);
                self.expr(expr);
            }
            Expr::Binary { op, lhs, rhs } => {
                self.features.bump(FeatureKind::BinaryOps, 1.0);
                match op {
                    BinaryOp::Add | BinaryOp::Sub => {
                        self.features.bump(FeatureKind::AddSubOps, 1.0)
                    }
                    BinaryOp::Mul | BinaryOp::Div => {
                        self.features.bump(FeatureKind::MulDivOps, 1.0)
                    }
                    BinaryOp::Rem => self.features.bump(FeatureKind::RemOps, 1.0),
                    BinaryOp::Lt
                    | BinaryOp::Le
                    | BinaryOp::Gt
                    | BinaryOp::Ge
                    | BinaryOp::Eq
                    | BinaryOp::Ne => self.features.bump(FeatureKind::Comparisons, 1.0),
                    BinaryOp::LogAnd | BinaryOp::LogOr => {
                        self.features.bump(FeatureKind::LogicalOps, 1.0)
                    }
                    BinaryOp::BitAnd
                    | BinaryOp::BitOr
                    | BinaryOp::BitXor
                    | BinaryOp::Shl
                    | BinaryOp::Shr => self.features.bump(FeatureKind::BitwiseOps, 1.0),
                }
                self.expr(lhs);
                self.expr(rhs);
            }
            Expr::Assign { op, lhs, rhs } => {
                self.features.bump(FeatureKind::Assignments, 1.0);
                if !matches!(op, AssignOp::Assign) {
                    self.features.bump(FeatureKind::CompoundAssignments, 1.0);
                }
                self.expr(lhs);
                self.expr(rhs);
            }
            Expr::Ternary {
                cond,
                then_expr,
                else_expr,
            } => {
                self.features.bump(FeatureKind::TernaryOps, 1.0);
                self.expr(cond);
                self.expr(then_expr);
                self.expr(else_expr);
            }
            Expr::Call { callee, args } => {
                self.features.bump(FeatureKind::Calls, 1.0);
                self.callees.insert(callee.clone());
                for a in args {
                    self.expr(a);
                }
            }
            Expr::Index { base, index } => {
                // Count whole access chains once, with their depth.
                let mut depth = 1usize;
                let mut cur = base;
                while let Expr::Index { base: b, index: i } = cur.as_ref() {
                    depth += 1;
                    self.expr(i);
                    cur = b;
                }
                self.features.bump(FeatureKind::ArrayAccesses, 1.0);
                let prev = self.features[FeatureKind::MaxIndexChain];
                if (depth as f64) > prev {
                    self.features.set(FeatureKind::MaxIndexChain, depth as f64);
                }
                self.expr(cur); // the base identifier/expression
                self.expr(index);
            }
            Expr::Cast { expr, .. } => self.expr(expr),
            Expr::Comma(a, b) => {
                self.expr(a);
                self.expr(b);
            }
        }
    }
}

fn base_type(ty: &Type) -> &Type {
    match ty {
        Type::Ptr(t) | Type::Array(t, _) => base_type(t),
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::FeatureKind as F;

    fn features(src: &str, f: &str) -> Features {
        let tu = minic::parse(src).unwrap();
        extract_function(&tu, f).unwrap()
    }

    #[test]
    fn unknown_function_is_an_error() {
        let tu = minic::parse("void f() { }").unwrap();
        let err = extract_function(&tu, "g").unwrap_err();
        assert_eq!(err.0, "g");
    }

    #[test]
    fn counts_triple_nest() {
        let f = features(
            "#define N 10\n\
             void k(double A[10][10]) {\n\
               for (int i = 0; i < N; i++)\n\
                 for (int j = 0; j < N; j++)\n\
                   for (int l = 0; l < N; l++)\n\
                     A[i][j] += 1.0;\n\
             }",
            "k",
        );
        assert_eq!(f[F::Loops], 3.0);
        assert_eq!(f[F::ForLoops], 3.0);
        assert_eq!(f[F::MaxLoopDepth], 3.0);
        assert_eq!(f[F::TripleNests], 1.0);
        assert_eq!(f[F::LoopsWithConstantBounds], 3.0);
        assert_eq!(f[F::CompoundAssignments], 1.0);
    }

    #[test]
    fn counts_instruction_mix() {
        let f = features(
            "void k(int a, int b) {\n\
               int c = a * b + a / b - a % b;\n\
               int d = (a < b) && (a != b);\n\
               c = c << 2;\n\
               d = d | c;\n\
             }",
            "k",
        );
        assert_eq!(f[F::MulDivOps], 2.0);
        assert_eq!(f[F::RemOps], 1.0);
        assert_eq!(f[F::AddSubOps], 2.0);
        assert_eq!(f[F::Comparisons], 2.0);
        assert_eq!(f[F::LogicalOps], 1.0);
        assert_eq!(f[F::BitwiseOps], 2.0);
        assert_eq!(f[F::IntDecls], 2.0);
        assert_eq!(f[F::Assignments], 2.0);
    }

    #[test]
    fn array_chain_depth_counted_once() {
        let f = features(
            "void k(double A[4][5][6], int i) { A[i][i][i] = 1.0; }",
            "k",
        );
        assert_eq!(f[F::ArrayAccesses], 1.0);
        assert_eq!(f[F::MaxIndexChain], 3.0);
    }

    #[test]
    fn callees_are_deduplicated() {
        let f = features("void k(double x) { g(x); g(x + 1.0); h(x); }", "k");
        assert_eq!(f[F::Calls], 3.0);
        assert_eq!(f[F::DistinctCallees], 2.0);
    }

    #[test]
    fn cyclomatic_complexity_formula() {
        let f = features(
            "void k(int n) {\n\
               for (int i = 0; i < n; i++) {\n\
                 if (i % 2 == 0) { n--; }\n\
               }\n\
               int x = n > 0 ? 1 : 2;\n\
               x = x;\n\
             }",
            "k",
        );
        // 1 + loops(1) + ifs(1) + ternaries(1)
        assert_eq!(f[F::CyclomaticComplexity], 4.0);
        assert_eq!(f[F::BranchesInLoops], 1.0);
    }

    #[test]
    fn statements_in_loops_tracked() {
        let f = features(
            "void k(int n) {\n\
               int a = 0;\n\
               for (int i = 0; i < n; i++) { a += i; a -= 1; }\n\
             }",
            "k",
        );
        assert_eq!(f[F::StatementsInLoops], 2.0);
        assert_eq!(f[F::Statements], 4.0);
    }

    #[test]
    fn variable_bounds_not_marked_constant() {
        let f = features("void k(int n) { for (int i = 0; i < n; i++) { } }", "k");
        assert_eq!(f[F::LoopsWithConstantBounds], 0.0);
    }

    #[test]
    fn define_resolved_bounds_are_constant() {
        let f = features(
            "#define N 64\nvoid k() { for (int i = 0; i < N + 1; i++) { } }",
            "k",
        );
        assert_eq!(f[F::LoopsWithConstantBounds], 1.0);
    }

    #[test]
    fn float_and_int_literals_distinguished() {
        let f = features("void k(double x) { x = 1.5 + 2.5; int y = 3; y = y; }", "k");
        assert_eq!(f[F::FloatLiterals], 2.0);
        assert_eq!(f[F::IntLiterals], 1.0);
        assert_eq!(f[F::FloatDecls], 0.0); // x is a parameter
    }

    #[test]
    fn pointer_deref_counted() {
        let f = features("void k(double *p) { *p = *p + 1.0; }", "k");
        assert_eq!(f[F::PointerDerefs], 2.0);
    }
}
