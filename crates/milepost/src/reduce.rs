//! Feature normalisation and dimensionality reduction.
//!
//! COBAYN reduces the Milepost feature space with exploratory factor
//! analysis before feeding it to the Bayesian network. We implement the
//! same pipeline shape: z-score normalisation over a training corpus
//! followed by PCA (power iteration with deflation), keeping the top
//! components. Downstream code then discretises the projected values.

use crate::features::{FeatureKind, Features};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A fitted normalise-and-project transformation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureReducer {
    mean: Vec<f64>,
    std: Vec<f64>,
    components: Vec<Vec<f64>>,
}

/// Error fitting a reducer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FitError {
    /// Fewer than two training vectors were supplied.
    TooFewSamples,
    /// More components requested than features exist.
    TooManyComponents,
}

impl fmt::Display for FitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FitError::TooFewSamples => write!(f, "need at least two training samples"),
            FitError::TooManyComponents => {
                write!(f, "cannot extract more components than features")
            }
        }
    }
}

impl std::error::Error for FitError {}

impl FeatureReducer {
    /// Fits a reducer with `k` principal components on a training corpus.
    ///
    /// # Errors
    ///
    /// Returns [`FitError`] when the corpus is too small or `k` exceeds
    /// the feature count.
    pub fn fit(corpus: &[Features], k: usize) -> Result<Self, FitError> {
        let d = FeatureKind::COUNT;
        if corpus.len() < 2 {
            return Err(FitError::TooFewSamples);
        }
        if k > d {
            return Err(FitError::TooManyComponents);
        }
        let n = corpus.len() as f64;
        let mut mean = vec![0.0; d];
        for f in corpus {
            for (m, v) in mean.iter_mut().zip(f.as_slice()) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut std = vec![0.0; d];
        for f in corpus {
            for ((s, v), m) in std.iter_mut().zip(f.as_slice()).zip(&mean) {
                *s += (v - m) * (v - m);
            }
        }
        for s in &mut std {
            *s = (*s / n).sqrt();
            if *s < 1e-12 {
                *s = 1.0; // constant feature: harmless passthrough
            }
        }
        // Normalised data matrix.
        let data: Vec<Vec<f64>> = corpus
            .iter()
            .map(|f| {
                f.as_slice()
                    .iter()
                    .zip(&mean)
                    .zip(&std)
                    .map(|((v, m), s)| (v - m) / s)
                    .collect()
            })
            .collect();
        // Covariance (d × d). Index-based loops: the upper-triangle
        // access pattern does not map onto iterator adapters cleanly.
        #[allow(clippy::needless_range_loop)]
        let mut cov = vec![vec![0.0; d]; d];
        for row in &data {
            for i in 0..d {
                for j in i..d {
                    cov[i][j] += row[i] * row[j];
                }
            }
        }
        #[allow(clippy::needless_range_loop)] // mirrored triangle writes
        for i in 0..d {
            for j in i..d {
                cov[i][j] /= n;
                cov[j][i] = cov[i][j];
            }
        }
        let components = principal_components(cov, k);
        Ok(FeatureReducer {
            mean,
            std,
            components,
        })
    }

    /// Number of output dimensions.
    pub fn output_dim(&self) -> usize {
        self.components.len()
    }

    /// Projects a feature vector to the reduced space.
    pub fn project(&self, f: &Features) -> Vec<f64> {
        let z: Vec<f64> = f
            .as_slice()
            .iter()
            .zip(&self.mean)
            .zip(&self.std)
            .map(|((v, m), s)| (v - m) / s)
            .collect();
        self.components
            .iter()
            .map(|c| c.iter().zip(&z).map(|(a, b)| a * b).sum())
            .collect()
    }
}

/// Top-`k` eigenvectors of a symmetric matrix by power iteration with
/// deflation. Adequate for our ≤36-dimensional, well-separated spectra.
fn principal_components(mut cov: Vec<Vec<f64>>, k: usize) -> Vec<Vec<f64>> {
    let d = cov.len();
    let mut comps = Vec::with_capacity(k);
    for ci in 0..k {
        // Deterministic start vector that is unlikely to be orthogonal to
        // the dominant eigenvector.
        let mut v: Vec<f64> = (0..d)
            .map(|i| 1.0 + ((i * 31 + ci * 17) % 7) as f64 * 0.1)
            .collect();
        orthogonalize(&mut v, &comps);
        normalize(&mut v);
        let mut eigenvalue = 0.0;
        for _ in 0..300 {
            let mut w = vec![0.0; d];
            for i in 0..d {
                for j in 0..d {
                    w[i] += cov[i][j] * v[j];
                }
            }
            // Keep the iterate inside the orthogonal complement of the
            // components already found; without this, rounding noise in a
            // (near-)degenerate tail subspace drifts back towards them.
            orthogonalize(&mut w, &comps);
            let norm = normalize(&mut w);
            if norm < 1e-12 {
                // Deflated matrix is numerically zero: keep the current
                // orthonormal direction as an (arbitrary) basis vector.
                break;
            }
            let delta: f64 = w.iter().zip(&v).map(|(a, b)| (a - b).abs()).sum();
            v = w;
            eigenvalue = norm;
            if delta < 1e-12 {
                break;
            }
        }
        // Deflate: cov -= lambda v vᵀ.
        for i in 0..d {
            for j in 0..d {
                cov[i][j] -= eigenvalue * v[i] * v[j];
            }
        }
        comps.push(v);
    }
    comps
}

/// Removes the projections of `v` onto each vector of `basis`
/// (classical Gram-Schmidt; basis vectors are unit length).
fn orthogonalize(v: &mut [f64], basis: &[Vec<f64>]) {
    for b in basis {
        let dot: f64 = v.iter().zip(b).map(|(a, c)| a * c).sum();
        for (x, c) in v.iter_mut().zip(b) {
            *x -= dot * c;
        }
    }
}

fn normalize(v: &mut [f64]) -> f64 {
    let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm > 1e-300 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a corpus where feature 0 and 1 vary together (one strong
    /// direction) and feature 2 carries small independent noise.
    fn synthetic_corpus() -> Vec<Features> {
        (0..20)
            .map(|i| {
                let mut v = vec![0.0; FeatureKind::COUNT];
                let t = f64::from(i);
                v[0] = 3.0 * t;
                v[1] = -3.0 * t;
                v[2] = ((i * 7) % 5) as f64 * 0.1;
                Features::from_values(v)
            })
            .collect()
    }

    #[test]
    fn fit_requires_two_samples() {
        assert_eq!(
            FeatureReducer::fit(&[Features::zeros()], 2).unwrap_err(),
            FitError::TooFewSamples
        );
    }

    #[test]
    fn fit_rejects_too_many_components() {
        let corpus = synthetic_corpus();
        assert_eq!(
            FeatureReducer::fit(&corpus, FeatureKind::COUNT + 1).unwrap_err(),
            FitError::TooManyComponents
        );
    }

    #[test]
    fn first_component_captures_dominant_direction() {
        let corpus = synthetic_corpus();
        let r = FeatureReducer::fit(&corpus, 1).unwrap();
        // Projections must separate small-t from large-t samples linearly.
        let p0 = r.project(&corpus[0])[0];
        let p10 = r.project(&corpus[10])[0];
        let p19 = r.project(&corpus[19])[0];
        assert!((p10 - (p0 + p19) / 2.0).abs() < 0.2, "{p0} {p10} {p19}");
        assert!((p19 - p0).abs() > 1.0);
    }

    #[test]
    fn components_are_orthonormal() {
        let corpus = synthetic_corpus();
        let r = FeatureReducer::fit(&corpus, 3).unwrap();
        for (i, a) in r.components.iter().enumerate() {
            let norm: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
            assert!((norm - 1.0).abs() < 1e-6, "component {i} norm {norm}");
            for b in &r.components[..i] {
                let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
                assert!(dot.abs() < 1e-4, "components not orthogonal: {dot}");
            }
        }
    }

    #[test]
    fn projection_dimension_matches_k() {
        let corpus = synthetic_corpus();
        let r = FeatureReducer::fit(&corpus, 4).unwrap();
        assert_eq!(r.output_dim(), 4);
        assert_eq!(r.project(&corpus[3]).len(), 4);
    }

    #[test]
    fn constant_features_do_not_produce_nan() {
        let corpus: Vec<Features> = (0..5)
            .map(|i| {
                let mut v = vec![2.5; FeatureKind::COUNT]; // all constant
                v[0] = f64::from(i);
                Features::from_values(v)
            })
            .collect();
        let r = FeatureReducer::fit(&corpus, 2).unwrap();
        for f in &corpus {
            assert!(r.project(f).iter().all(|x| x.is_finite()));
        }
    }
}
