//! Functional execution engines for the weaved kernels.
//!
//! The analytic platform model ([`platform_sim`]) predicts *metrics*
//! (time, power); this module actually *runs* the weaved mini-C kernels
//! through the `minivm` crate to produce an
//! [`ExecutionReport`](minivm::ExecutionReport) — a bit-exact checksum
//! of the global state plus semantic flop/load/store counts. Two
//! engines implement the same contract:
//!
//! - [`ExecutionEngine::Ast`] — the reference AST interpreter, a direct
//!   walk over the `minic` tree;
//! - [`ExecutionEngine::Bytecode`] — the production path: the weaved
//!   program is lowered through a typed IR into compact register-based
//!   bytecode with every specialization constant (array dimensions,
//!   pragma parameters such as `__socrates_num_threads`, baked entry
//!   arguments) resolved at lowering time, then run by a tight
//!   dispatch loop with no per-step allocation.
//!
//! The two engines are bit-identical on every supported program —
//! `crates/minivm/tests/polybench_differential.rs` pins all twelve
//! Polybench apps and `tests/engine_equivalence.rs` property-tests
//! random generated programs — so [`ExecutionEngine::Bytecode`] is the
//! default everywhere and [`ExecutionEngine::Ast`] survives as the
//! cross-check oracle.
//!
//! [`compile_kernel`] is the single entry point: it lowers (or
//! interprets) one weaved clone under one [`SpecConfig`](minivm::SpecConfig)
//! and returns a [`CompiledKernel`] artifact carrying the report, the
//! lowering cost and (for the bytecode engine) the reusable compiled
//! code. The [`ArtifactStore`](crate::ArtifactStore) caches these per
//! `(app, dataset, config fingerprint)` so a fleet of N instances
//! sharing a configuration compiles once.

use crate::error::SocratesError;
use minic::TranslationUnit;
use minivm::{ExecutionReport, SpecConfig};
use platform_sim::KnobConfig;
use polybench::{App, Dataset, KernelArg};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::str::FromStr;
use std::sync::Arc;
use std::time::Instant;

/// Cap on the functional array dimensions (the analytic profile keeps
/// the paper's full dataset sizes; functional execution clamps each
/// axis to this bound so the reference interpreter stays fast enough
/// for debug-mode test runs). Both engines always receive the *same*
/// clamped spec, so the cap cannot perturb their equivalence.
pub const FUNCTIONAL_DIM_CAP: usize = 20;

/// Which implementation executes the weaved kernels functionally.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExecutionEngine {
    /// The reference AST interpreter (slow, obviously-correct oracle).
    Ast,
    /// Config-specialized register bytecode (the default, fast path).
    #[default]
    Bytecode,
}

impl ExecutionEngine {
    /// Both engines, reference first.
    pub const ALL: [ExecutionEngine; 2] = [ExecutionEngine::Ast, ExecutionEngine::Bytecode];

    /// Short lowercase label, as used in bench rows and CLI flags.
    pub fn label(self) -> &'static str {
        match self {
            ExecutionEngine::Ast => "ast",
            ExecutionEngine::Bytecode => "bytecode",
        }
    }
}

impl std::fmt::Display for ExecutionEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Parses the CLI form produced by [`ExecutionEngine::label`].
impl FromStr for ExecutionEngine {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "ast" => Ok(ExecutionEngine::Ast),
            "bytecode" => Ok(ExecutionEngine::Bytecode),
            other => Err(format!("unknown engine {other:?} (expected ast|bytecode)")),
        }
    }
}

/// The functional array dimensions for `app` on `ds`: the dataset's
/// dimensions clamped to [`FUNCTIONAL_DIM_CAP`].
pub fn functional_dims(app: App, ds: Dataset) -> Vec<(&'static str, usize)> {
    app.dims(ds)
        .into_iter()
        .map(|(n, v)| (n, v.min(FUNCTIONAL_DIM_CAP)))
        .collect()
}

/// Builds the execution configuration for `app` on `ds`: clamped
/// dimensions and the weaver's thread variable as specialization
/// constants, plus the kernel's baked entry arguments.
pub fn functional_spec(app: App, ds: Dataset, threads: u32) -> SpecConfig {
    let dims = functional_dims(app, ds);
    let mut spec = SpecConfig::new().bind(lara::THREADS_VAR, threads as i64);
    for &(name, v) in &dims {
        spec.set(name, v as i64);
    }
    for arg in app.kernel_args(&dims) {
        spec = match arg {
            KernelArg::Int(v) => spec.arg(v),
            KernelArg::Double(v) => spec.arg(v),
        };
    }
    spec
}

/// A lowered, config-specialized kernel: the typed artifact cached by
/// the [`ArtifactStore`](crate::ArtifactStore) and the fleet pools.
#[derive(Debug, Clone)]
pub struct CompiledKernel {
    /// The application the kernel belongs to.
    pub app: App,
    /// The engine the kernel was lowered for.
    pub engine: ExecutionEngine,
    /// The weaved clone that was executed (e.g. `kernel_2mm_v0`).
    pub entry: String,
    /// Fingerprint of the [`SpecConfig`](minivm::SpecConfig) the kernel
    /// was specialized against (cache key component).
    pub spec_fingerprint: u64,
    /// The execution result, computed once at build time. Both engines
    /// must produce bit-identical reports for the same spec.
    pub report: ExecutionReport,
    /// Wall-clock cost of lowering + the build-time reference run.
    pub compile_ns: u64,
    /// The reusable compiled code (`None` for the AST engine, which
    /// re-walks the tree on every run).
    pub code: Option<Arc<minivm::CompiledKernel>>,
}

impl CompiledKernel {
    /// Re-executes the kernel and returns the fresh report. For the
    /// bytecode engine this reuses the compiled code (scratch state is
    /// provided by the caller via [`minivm::VmState`]-free `run`); the
    /// AST engine re-interprets the stored translation unit through the
    /// caller. Cached consumers normally read [`CompiledKernel::report`]
    /// instead.
    pub fn run(&self) -> Result<ExecutionReport, SocratesError> {
        match &self.code {
            Some(code) => code.run().map_err(|e| lower_error(self.app, e)),
            None => Ok(self.report),
        }
    }
}

fn lower_error(app: App, source: minivm::EngineError) -> SocratesError {
    SocratesError::lower(app, source)
}

/// Statically analyzes one weaved clone of `app` under `spec`:
/// interval and initialization abstract interpretation over the typed
/// IR plus the symbolic cost model (see [`minivm::analyze`]).
///
/// This is a *query* — an unsafe kernel comes back as a report with a
/// non-[`Safe`](minivm::Verdict::Safe) verdict, not as an error. Use
/// [`ensure_safe`] to turn a rejection into the
/// [`StageId::Analyze`](crate::StageId::Analyze)-tagged pipeline error.
///
/// # Errors
///
/// Fails only where [`compile_kernel`] would: invalid programs and
/// unbound spec parameters, tagged as lowering errors.
pub fn analyze_kernel(
    tu: &TranslationUnit,
    entry: &str,
    app: App,
    spec: &SpecConfig,
) -> Result<minivm::AnalysisReport, SocratesError> {
    minivm::analyze(tu, entry, spec).map_err(|e| lower_error(app, e))
}

/// [`analyze_kernel`] over the canonical functional spec for
/// `(app, ds, threads)` — the spec under which the kernel would execute.
pub fn analyze_kernel_for(
    tu: &TranslationUnit,
    entry: &str,
    app: App,
    ds: Dataset,
    threads: u32,
) -> Result<minivm::AnalysisReport, SocratesError> {
    analyze_kernel(tu, entry, app, &functional_spec(app, ds, threads))
}

/// Gate: turns a non-safe [`minivm::AnalysisReport`] into the
/// [`StageId::Analyze`](crate::StageId::Analyze)-tagged rejection that
/// stops a kernel from reaching the VM.
///
/// # Errors
///
/// Fails iff the report's verdict is not [`minivm::Verdict::Safe`]; the
/// error carries the verdict and every rendered diagnostic.
pub fn ensure_safe(app: App, report: &minivm::AnalysisReport) -> Result<(), SocratesError> {
    if report.is_safe() {
        return Ok(());
    }
    Err(SocratesError::analyze(
        app,
        format!(
            "verdict {:?}\n{}",
            report.verdict,
            report.render_diagnostics().trim_end()
        ),
    ))
}

/// The *paper-scale* spec for `(app, ds, threads)`: identical to
/// [`functional_spec`] but with the dataset's real (unclamped) array
/// dimensions. Kernels are never executed at this scale — it exists so
/// the analyzer's symbolic cost polynomials can be *evaluated* at the
/// true deployment size ([`minivm::CostModel::eval_at`]), which is what
/// lets the static DSE pruning reason about the full-dataset workload
/// without paying a full-dataset run.
pub fn full_scale_spec(app: App, ds: Dataset, threads: u32) -> SpecConfig {
    let dims = app.dims(ds);
    let mut spec = SpecConfig::new().bind(lara::THREADS_VAR, i64::from(threads));
    for &(name, v) in &dims {
        spec.set(name, v as i64);
    }
    for arg in app.kernel_args(&dims) {
        spec = match arg {
            KernelArg::Int(v) => spec.arg(v),
            KernelArg::Double(v) => spec.arg(v),
        };
    }
    spec
}

/// Analysis-driven DSE pruning for an enhanced application: drops
/// configurations whose specialization the static analyzer rejects as
/// unsafe, and feasible points that are statically dominated on the
/// platform expectation over the analyzer-derived workload (see
/// [`dse::prune_space`]).
///
/// The static workload starts from the design profile and replaces its
/// compute/traffic totals with the analyzer's counters — extrapolated
/// to the real dataset scale through the symbolic cost polynomials
/// where the kernel admits them ([`full_scale_spec`]), falling back to
/// the exact functional-scale counters, and, if analysis fails
/// entirely, leaving the design profile untouched. Feasibility is
/// queried once per distinct thread count; an analysis *error* (as
/// opposed to an unsafe verdict) never prunes — such configurations
/// surface their failure through the normal compile path instead.
pub fn analysis_prune(
    enhanced: &crate::EnhancedApp,
    configs: Vec<KnobConfig>,
) -> dse::PruneReport<KnobConfig> {
    let entry = enhanced
        .multiversioned
        .version_functions
        .first()
        .cloned()
        .unwrap_or_else(|| enhanced.app.kernel_name());
    let (app, ds) = (enhanced.app, enhanced.dataset);
    let base = analyze_kernel_for(&enhanced.weaved, &entry, app, ds, 1).ok();
    let mut workload = enhanced.profile.clone();
    if let Some(r) = &base {
        let (flops, loads, stores) = r
            .cost
            .as_ref()
            .and_then(|c| c.eval_at(&full_scale_spec(app, ds, 1)))
            .unwrap_or((r.flops, r.loads, r.stores));
        let bytes = (loads + stores).saturating_mul(8);
        if flops > 0 || bytes > 0 {
            workload.name = format!("{}-static", app.name());
            workload.flops = flops as f64;
            workload.bytes = bytes as f64;
        }
    }
    let machine = enhanced.platform.machine(0);
    let mut safe_for: HashMap<u32, bool> = HashMap::new();
    if let Some(r) = &base {
        safe_for.insert(1, r.is_safe());
    }
    dse::prune_space(
        configs,
        |cfg| {
            *safe_for.entry(cfg.tn).or_insert_with(|| {
                analyze_kernel_for(&enhanced.weaved, &entry, app, ds, cfg.tn)
                    .map_or(true, |r| r.is_safe())
            })
        },
        |cfg| {
            let e = machine.expected(&workload, cfg);
            (e.time_s, e.power_w)
        },
    )
}

/// Lowers (or reference-interprets) one weaved clone of `app` under
/// `spec` and executes it once.
///
/// Every pragma parameter the kernel references must be bound in
/// `spec`; an unbound parameter is rejected here, at lowering time,
/// with a [`StageId::Lower`](crate::StageId::Lower)-tagged
/// [`SocratesError`] — never as a late lookup failure in the middle of
/// a profiling sweep.
pub fn compile_kernel(
    engine: ExecutionEngine,
    tu: &TranslationUnit,
    entry: &str,
    app: App,
    spec: &SpecConfig,
) -> Result<CompiledKernel, SocratesError> {
    let start = Instant::now();
    let (report, code) = match engine {
        ExecutionEngine::Ast => {
            let report = minivm::interpret(tu, entry, spec).map_err(|e| lower_error(app, e))?;
            (report, None)
        }
        ExecutionEngine::Bytecode => {
            let kernel = minivm::compile(tu, entry, spec).map_err(|e| lower_error(app, e))?;
            let report = kernel.run().map_err(|e| lower_error(app, e))?;
            (report, Some(Arc::new(kernel)))
        }
    };
    Ok(CompiledKernel {
        app,
        engine,
        entry: entry.to_string(),
        spec_fingerprint: spec.fingerprint(),
        report,
        compile_ns: start.elapsed().as_nanos() as u64,
        code,
    })
}

/// [`compile_kernel`] over the canonical functional spec for `(app,
/// ds, threads)` — the form the store, fleets and benches use.
pub fn compile_kernel_for(
    engine: ExecutionEngine,
    tu: &TranslationUnit,
    entry: &str,
    app: App,
    ds: Dataset,
    threads: u32,
) -> Result<CompiledKernel, SocratesError> {
    let spec = functional_spec(app, ds, threads);
    compile_kernel(engine, tu, entry, app, &spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::StageId;

    fn weaved_clone(app: App) -> (TranslationUnit, String) {
        let tu = minic::parse(&polybench::source(app, Dataset::Mini)).unwrap();
        let mut weaver = lara::Weaver::new(tu);
        let versions = [lara::StaticVersion::new(["O2"], "close")];
        let woven = lara::multiversioning(&mut weaver, &app.kernel_name(), &versions).unwrap();
        let (weaved, _) = weaver.finish();
        (weaved, woven.version_functions[0].clone())
    }

    #[test]
    fn labels_round_trip_through_parse() {
        for engine in ExecutionEngine::ALL {
            assert_eq!(engine.label().parse::<ExecutionEngine>().unwrap(), engine);
        }
        assert!("llvm".parse::<ExecutionEngine>().is_err());
        assert_eq!(ExecutionEngine::default(), ExecutionEngine::Bytecode);
    }

    #[test]
    fn functional_dims_are_clamped() {
        for app in App::ALL {
            for (_, v) in functional_dims(app, Dataset::Large) {
                assert!(v <= FUNCTIONAL_DIM_CAP);
            }
        }
    }

    #[test]
    fn both_engines_agree_on_a_weaved_clone() {
        let app = App::TwoMm;
        let (tu, entry) = weaved_clone(app);
        let ast =
            compile_kernel_for(ExecutionEngine::Ast, &tu, &entry, app, Dataset::Mini, 4).unwrap();
        let byte = compile_kernel_for(
            ExecutionEngine::Bytecode,
            &tu,
            &entry,
            app,
            Dataset::Mini,
            4,
        )
        .unwrap();
        assert_eq!(ast.report, byte.report);
        assert!(ast.code.is_none());
        let code = byte.code.as_ref().expect("bytecode keeps compiled code");
        assert!(code.op_count() > 0);
        // Re-running the cached code reproduces the build-time report.
        assert_eq!(byte.run().unwrap(), byte.report);
    }

    #[test]
    fn thread_count_is_configuration_not_data() {
        let app = App::Atax;
        let (tu, entry) = weaved_clone(app);
        let a = compile_kernel_for(
            ExecutionEngine::Bytecode,
            &tu,
            &entry,
            app,
            Dataset::Mini,
            1,
        )
        .unwrap();
        let b = compile_kernel_for(
            ExecutionEngine::Bytecode,
            &tu,
            &entry,
            app,
            Dataset::Mini,
            16,
        )
        .unwrap();
        assert_eq!(a.report, b.report);
        // …but the specialized artifacts are distinct cache entries.
        assert_ne!(a.spec_fingerprint, b.spec_fingerprint);
    }

    #[test]
    fn unbound_pragma_parameters_fail_at_lowering_time() {
        let app = App::Syrk;
        let (tu, entry) = weaved_clone(app);
        // Dimensions and args bound, the thread variable deliberately not.
        let mut spec = SpecConfig::new();
        for (name, v) in functional_dims(app, Dataset::Mini) {
            spec.set(name, v as i64);
        }
        for arg in app.kernel_args(&functional_dims(app, Dataset::Mini)) {
            spec = match arg {
                KernelArg::Int(v) => spec.arg(v),
                KernelArg::Double(v) => spec.arg(v),
            };
        }
        for engine in ExecutionEngine::ALL {
            let err = compile_kernel(engine, &tu, &entry, app, &spec).unwrap_err();
            assert_eq!(err.stage(), StageId::Lower);
            let text = err.to_string();
            assert!(text.starts_with("[lower] syrk:"), "got: {text}");
            assert!(text.contains(lara::THREADS_VAR), "got: {text}");
        }
    }

    #[test]
    fn cost_polynomials_extrapolate_to_the_full_dataset_scale() {
        let app = App::Mvt;
        let (weaved, entry) = weaved_clone(app);
        let report = analyze_kernel_for(&weaved, &entry, app, Dataset::Large, 1).unwrap();
        assert!(report.is_safe());
        assert!(report.counts_exact);
        let cost = report.cost.as_ref().expect("mvt admits a cost model");
        assert!(cost.exact);
        // The polynomials reproduce the functional-scale counters…
        assert_eq!(
            cost.eval_at(&functional_spec(app, Dataset::Large, 1)),
            Some((report.flops, report.loads, report.stores))
        );
        // …and evaluate at the real (unclamped) dataset dimensions the
        // kernel is never actually executed at.
        let (flops, loads, stores) = cost
            .eval_at(&full_scale_spec(app, Dataset::Large, 1))
            .expect("full-scale evaluation");
        assert!(
            flops > report.flops && loads > report.loads && stores > report.stores,
            "Large dims exceed the functional cap, so every counter must grow"
        );
    }
}
