//! The unified, stage-tagged error type of the SOCRATES toolchain.
//!
//! Every failure anywhere in the staged pipeline — parsing, feature
//! extraction, COBAYN training, weaving, knowledge persistence or
//! version dispatch — is a [`SocratesError`]. Each error knows which
//! [`StageId`] it originated from and carries human-readable context
//! (the application name, the file path, …), so a batch run over many
//! applications produces attributable diagnostics.
//!
//! The pre-pipeline names [`ToolchainError`] and [`KnowledgeIoError`]
//! remain as *name-level* aliases of [`SocratesError`]: code that only
//! names the error type keeps compiling, but the variant set changed
//! (context-carrying struct variants, `Cobayn` → `Train`) and the old
//! blanket `From` impls are gone — construct errors through the
//! [`SocratesError`] constructors instead.

use polybench::App;
use std::fmt;
use std::path::PathBuf;

/// The pipeline stage an error originated from (see the stage graph in
/// [`crate::socrates_pipeline`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StageId {
    /// Source parsing (`minic`).
    Parse,
    /// Milepost feature extraction.
    Features,
    /// COBAYN corpus construction, training and flag prediction.
    Predict,
    /// LARA weaving (multiversioning + autotuner).
    Weave,
    /// Static kernel analysis (safety verification over the typed IR).
    Analyze,
    /// Kernel lowering/compilation (minivm typed IR → bytecode).
    Lower,
    /// DSE profiling on the platform model.
    Profile,
    /// Artifact persistence (knowledge save/load).
    Persist,
    /// Runtime version dispatch (config → clone lookup).
    Dispatch,
    /// Deployment runtime (fleet orchestration, shared knowledge).
    Runtime,
    /// Distributed knowledge exchange (simulated links, broker
    /// reconciliation, drain).
    Transport,
}

impl StageId {
    /// Short lowercase stage label, as used in error messages.
    pub fn as_str(self) -> &'static str {
        match self {
            StageId::Parse => "parse",
            StageId::Features => "features",
            StageId::Predict => "predict",
            StageId::Weave => "weave",
            StageId::Analyze => "analyze",
            StageId::Lower => "lower",
            StageId::Profile => "profile",
            StageId::Persist => "persist",
            StageId::Dispatch => "dispatch",
            StageId::Runtime => "runtime",
            StageId::Transport => "transport",
        }
    }
}

impl fmt::Display for StageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Anything that can go wrong in the SOCRATES pipeline, from source
/// parsing to knowledge persistence.
#[derive(Debug)]
pub enum SocratesError {
    /// The benchmark source failed to parse.
    Parse {
        /// Application whose source failed.
        app: String,
        /// Underlying parser diagnostic.
        source: minic::ParseError,
    },
    /// Feature extraction failed (kernel not found).
    Features {
        /// Application whose kernel was missing.
        app: String,
        /// Underlying extractor diagnostic.
        source: milepost::UnknownFunctionError,
    },
    /// COBAYN training failed.
    Train {
        /// Target application the model was being trained for.
        app: String,
        /// Underlying trainer diagnostic.
        source: cobayn::TrainError,
    },
    /// A weaving strategy failed.
    Weave {
        /// Application being weaved.
        app: String,
        /// Underlying weaver diagnostic.
        source: lara::WeaveError,
    },
    /// The static analyzer refused to certify a kernel as safe for the
    /// requested configuration: it found a definite fault (or could not
    /// prove the absence of one), so the kernel never reaches the VM.
    Analyze {
        /// Application whose kernel was rejected.
        app: String,
        /// The analyzer's verdict and rendered diagnostics.
        what: String,
    },
    /// Lowering a weaved kernel to the execution engine failed (e.g. a
    /// pragma parameter referenced by the kernel is not bound in the
    /// configuration, or the program leaves the executable dialect).
    Lower {
        /// Application whose kernel failed to lower.
        app: String,
        /// Underlying engine diagnostic.
        source: minivm::EngineError,
    },
    /// Filesystem error while persisting or loading an artifact.
    Io {
        /// File involved.
        path: PathBuf,
        /// Underlying I/O error.
        source: std::io::Error,
    },
    /// Malformed or unserialisable artifact JSON.
    Format {
        /// What was being (de)serialised.
        context: String,
        /// Underlying serde diagnostic.
        source: serde_json::Error,
    },
    /// A knob configuration has no compiled clone version.
    UnknownVersion {
        /// Application whose version table was consulted.
        app: String,
        /// Display form of the offending configuration.
        config: String,
    },
    /// A runtime configuration (e.g. [`crate::FleetConfig`]) is
    /// invalid; rejected at construction instead of panicking deep
    /// inside the runtime.
    InvalidConfig {
        /// What is wrong and how to fix it.
        reason: String,
    },
    /// The distributed knowledge exchange failed (e.g. a drain that
    /// did not converge within its round budget).
    Transport {
        /// What went wrong on the wire or during reconciliation.
        reason: String,
    },
}

/// Pre-pipeline name of [`SocratesError`] (name-level alias; the
/// variant set is the unified, stage-tagged one).
pub type ToolchainError = SocratesError;

/// Pre-pipeline name of [`SocratesError`] (name-level alias; the
/// variant set is the unified, stage-tagged one).
pub type KnowledgeIoError = SocratesError;

impl SocratesError {
    /// The pipeline stage this error originated from.
    pub fn stage(&self) -> StageId {
        match self {
            SocratesError::Parse { .. } => StageId::Parse,
            SocratesError::Features { .. } => StageId::Features,
            SocratesError::Train { .. } => StageId::Predict,
            SocratesError::Weave { .. } => StageId::Weave,
            SocratesError::Analyze { .. } => StageId::Analyze,
            SocratesError::Lower { .. } => StageId::Lower,
            SocratesError::Io { .. } | SocratesError::Format { .. } => StageId::Persist,
            SocratesError::UnknownVersion { .. } => StageId::Dispatch,
            SocratesError::InvalidConfig { .. } => StageId::Runtime,
            SocratesError::Transport { .. } => StageId::Transport,
        }
    }

    /// Builds a parse-stage error for `app`.
    pub fn parse(app: App, source: minic::ParseError) -> Self {
        SocratesError::Parse {
            app: app.name().to_string(),
            source,
        }
    }

    /// Builds a feature-extraction error for `app`.
    pub fn features(app: App, source: milepost::UnknownFunctionError) -> Self {
        SocratesError::Features {
            app: app.name().to_string(),
            source,
        }
    }

    /// Builds a COBAYN-training error for target `app`.
    pub fn train(app: App, source: cobayn::TrainError) -> Self {
        SocratesError::Train {
            app: app.name().to_string(),
            source,
        }
    }

    /// Builds a weaving error for `app`.
    pub fn weave(app: App, source: lara::WeaveError) -> Self {
        SocratesError::Weave {
            app: app.name().to_string(),
            source,
        }
    }

    /// Builds an analysis-stage rejection for `app`; `what` carries the
    /// verdict and rendered diagnostics.
    pub fn analyze(app: App, what: impl Into<String>) -> Self {
        SocratesError::Analyze {
            app: app.name().to_string(),
            what: what.into(),
        }
    }

    /// Builds a lowering error for `app`.
    pub fn lower(app: App, source: minivm::EngineError) -> Self {
        SocratesError::Lower {
            app: app.name().to_string(),
            source,
        }
    }

    /// Builds a persistence I/O error for `path`.
    pub fn io(path: impl Into<PathBuf>, source: std::io::Error) -> Self {
        SocratesError::Io {
            path: path.into(),
            source,
        }
    }

    /// Builds a persistence format error; `context` names the artifact.
    pub fn format(context: impl Into<String>, source: serde_json::Error) -> Self {
        SocratesError::Format {
            context: context.into(),
            source,
        }
    }

    /// Builds a dispatch error: `config` has no compiled version in
    /// `app`'s version table.
    pub fn unknown_version(app: App, config: impl fmt::Display) -> Self {
        SocratesError::UnknownVersion {
            app: app.name().to_string(),
            config: config.to_string(),
        }
    }

    /// Builds a runtime-configuration error; `reason` says what is
    /// wrong and how to fix it.
    pub fn invalid_config(reason: impl Into<String>) -> Self {
        SocratesError::InvalidConfig {
            reason: reason.into(),
        }
    }

    /// Builds a transport-stage error; `reason` names the exchange or
    /// reconciliation step that failed.
    pub fn transport(reason: impl Into<String>) -> Self {
        SocratesError::Transport {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for SocratesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] ", self.stage())?;
        match self {
            SocratesError::Parse { app, source } => {
                write!(f, "{app}: source parsing failed: {source}")
            }
            SocratesError::Features { app, source } => {
                write!(f, "{app}: feature extraction failed: {source}")
            }
            SocratesError::Train { app, source } => {
                write!(f, "{app}: COBAYN training failed: {source}")
            }
            SocratesError::Weave { app, source } => {
                write!(f, "{app}: weaving failed: {source}")
            }
            SocratesError::Analyze { app, what } => {
                write!(f, "{app}: static analysis rejected kernel: {what}")
            }
            SocratesError::Lower { app, source } => {
                write!(f, "{app}: kernel lowering failed: {source}")
            }
            SocratesError::Io { path, source } => {
                write!(f, "{}: knowledge file I/O failed: {source}", path.display())
            }
            SocratesError::Format { context, source } => {
                write!(f, "{context}: knowledge file malformed: {source}")
            }
            SocratesError::UnknownVersion { app, config } => {
                write!(f, "{app}: configuration {config} has no compiled version")
            }
            SocratesError::InvalidConfig { reason } => {
                write!(f, "invalid runtime configuration: {reason}")
            }
            SocratesError::Transport { reason } => {
                write!(f, "knowledge exchange failed: {reason}")
            }
        }
    }
}

impl std::error::Error for SocratesError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SocratesError::Parse { source, .. } => Some(source),
            SocratesError::Features { source, .. } => Some(source),
            SocratesError::Train { source, .. } => Some(source),
            SocratesError::Weave { source, .. } => Some(source),
            SocratesError::Lower { source, .. } => Some(source),
            SocratesError::Io { source, .. } => Some(source),
            SocratesError::Format { source, .. } => Some(source),
            SocratesError::Analyze { .. }
            | SocratesError::UnknownVersion { .. }
            | SocratesError::InvalidConfig { .. }
            | SocratesError::Transport { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_carry_stage_and_context() {
        let e = SocratesError::weave(App::TwoMm, lara::WeaveError("kernel missing".into()));
        assert_eq!(e.stage(), StageId::Weave);
        assert!(e.to_string().starts_with("[weave] 2mm:"));
        assert!(e.to_string().contains("weaving failed"));
        assert!(e.to_string().contains("kernel missing"));
    }

    #[test]
    fn sources_are_chained() {
        use std::error::Error;
        let e = SocratesError::features(App::Mvt, milepost::UnknownFunctionError("k".into()));
        assert!(e.source().is_some());
        assert_eq!(e.stage(), StageId::Features);
    }

    #[test]
    fn dispatch_errors_name_the_config() {
        let e = SocratesError::unknown_version(App::Atax, "cfg-label");
        assert_eq!(e.stage(), StageId::Dispatch);
        assert!(e.to_string().contains("cfg-label"));
        assert!(e.to_string().contains("no compiled version"));
    }

    #[test]
    fn legacy_aliases_refer_to_the_unified_type() {
        let e: ToolchainError = SocratesError::parse(
            App::Syrk,
            minic::parse("int main( {").expect_err("invalid source"),
        );
        assert!(matches!(e, KnowledgeIoError::Parse { .. }));
        assert_eq!(e.stage(), StageId::Parse);
    }

    #[test]
    fn lower_errors_carry_stage_and_chain_the_engine_diagnostic() {
        use std::error::Error;
        let e = SocratesError::lower(
            App::Syrk,
            minivm::EngineError::UnboundPragmaParam {
                function: "kernel_syrk_v0".into(),
                param: "__socrates_num_threads".into(),
            },
        );
        assert_eq!(e.stage(), StageId::Lower);
        assert!(e.to_string().starts_with("[lower] syrk:"));
        assert!(e.to_string().contains("__socrates_num_threads"));
        assert!(e.source().is_some());
    }

    #[test]
    fn analyze_rejections_carry_the_diagnostics() {
        let e = SocratesError::analyze(
            App::Doitgen,
            "Unsafe\nerror[out-of-bounds]: index 8 out of bounds (len 8)",
        );
        assert_eq!(e.stage(), StageId::Analyze);
        assert!(e.to_string().starts_with("[analyze] doitgen:"));
        assert!(e.to_string().contains("out-of-bounds"));
    }

    #[test]
    fn every_stage_has_a_distinct_label() {
        let stages = [
            StageId::Parse,
            StageId::Features,
            StageId::Predict,
            StageId::Weave,
            StageId::Analyze,
            StageId::Lower,
            StageId::Profile,
            StageId::Persist,
            StageId::Dispatch,
            StageId::Runtime,
            StageId::Transport,
        ];
        let set: std::collections::HashSet<_> = stages.iter().map(|s| s.as_str()).collect();
        assert_eq!(set.len(), stages.len());
    }
}
