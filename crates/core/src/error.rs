//! Error type of the SOCRATES toolchain.

use std::fmt;

/// Anything that can go wrong while enhancing an application.
#[derive(Debug)]
pub enum ToolchainError {
    /// The benchmark source failed to parse (a bug in `polybench`).
    Parse(minic::ParseError),
    /// Feature extraction failed (kernel not found).
    Features(milepost::UnknownFunctionError),
    /// COBAYN training failed.
    Cobayn(cobayn::TrainError),
    /// A weaving strategy failed.
    Weave(lara::WeaveError),
}

impl fmt::Display for ToolchainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ToolchainError::Parse(e) => write!(f, "source parsing failed: {e}"),
            ToolchainError::Features(e) => write!(f, "feature extraction failed: {e}"),
            ToolchainError::Cobayn(e) => write!(f, "COBAYN training failed: {e}"),
            ToolchainError::Weave(e) => write!(f, "weaving failed: {e}"),
        }
    }
}

impl std::error::Error for ToolchainError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ToolchainError::Parse(e) => Some(e),
            ToolchainError::Features(e) => Some(e),
            ToolchainError::Cobayn(e) => Some(e),
            ToolchainError::Weave(e) => Some(e),
        }
    }
}

impl From<minic::ParseError> for ToolchainError {
    fn from(e: minic::ParseError) -> Self {
        ToolchainError::Parse(e)
    }
}

impl From<milepost::UnknownFunctionError> for ToolchainError {
    fn from(e: milepost::UnknownFunctionError) -> Self {
        ToolchainError::Features(e)
    }
}

impl From<cobayn::TrainError> for ToolchainError {
    fn from(e: cobayn::TrainError) -> Self {
        ToolchainError::Cobayn(e)
    }
}

impl From<lara::WeaveError> for ToolchainError {
    fn from(e: lara::WeaveError) -> Self {
        ToolchainError::Weave(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_carry_context() {
        let e: ToolchainError = lara::WeaveError("kernel missing".into()).into();
        assert!(e.to_string().contains("weaving failed"));
        assert!(e.to_string().contains("kernel missing"));
    }

    #[test]
    fn sources_are_chained() {
        use std::error::Error;
        let e: ToolchainError = milepost::UnknownFunctionError("k".into()).into();
        assert!(e.source().is_some());
    }
}
