//! The sparse discrete-event fleet runtime
//! ([`Schedule::EventDriven`]).
//!
//! The lockstep [`crate::Fleet`] forces every instance through a
//! synchronized round with a sequential merge barrier — faithful to
//! the paper's online loop, but the barrier is what caps the scaling
//! benchmarks at a few thousand instances. Real crowdsourced
//! deployments are not synchronized at all: instances with different
//! kernel runtimes arrive, step, publish and retire on their own
//! schedules. [`EventFleet`] models exactly that as a discrete-event
//! simulation on the virtual clock:
//!
//! - Each instance is a **sparse pool entry** — a generational slot
//!   holding a pool index, a noise-stream id, a step counter and its
//!   own virtual clock. No [`crate::AdaptiveApplication`], no
//!   per-instance [`Knowledge`] clone, no per-instance RNG: noise is
//!   derived statelessly per event
//!   ([`Machine::noise_factors_at`]).
//! - The scheduler is a binary heap of `(virtual time, sequence)`
//!   events. An instance's next step is an event keyed by its own
//!   kernel runtime, so fast instances naturally step more often —
//!   the behaviour `run_for` approximated with per-instance deadlines.
//! - Knowledge merges happen **per publish event**
//!   ([`margot::SharedKnowledge::publish_into`]): the observation
//!   folds into the columnar arena and the changed point patches the
//!   pool's effective cache under one shard lock, instead of a
//!   barrier-time drain sweep. The cooperative sweep claims
//!   configurations at publish time too
//!   ([`dse::ExplorationSchedule::claim`]).
//! - Arrivals and retirements are events themselves, so a seeded
//!   workload trace ([`WorkloadTrace`] — diurnal curves, flash
//!   crowds) drives fleet churn deterministically.
//!
//! Per-event cost is independent of the total instance count (heap
//! operations are logarithmic; everything else is O(1) amortized per
//! event), which is what lets `fleet_events_bench` hold ≥1M concurrent
//! sparse instances in one process.
//!
//! The event runtime models the *adaptation* layer (timing/power
//! model, knowledge sharing, cooperative exploration, power
//! arbitration). Two lockstep features are out of scope by design:
//! per-instance monitor feedback (the AS-RTM adjustment loop) and
//! functional kernel lowering — planned selection evaluates the
//! shared effective knowledge directly, one selection per pool.

use crate::error::SocratesError;
use crate::events::{EventObserver, FleetEvent, FleetRuntime, InstanceId};
use crate::fleet::{warm_validation_queue, FleetConfig, Schedule, FLEET_POWER_PRIORITY};
use crate::toolchain::EnhancedApp;
use dse::ExplorationSchedule;
use margot::{Cmp, Constraint, Knowledge, Metric, MetricValues, Rank, SharedKnowledge};
use platform_sim::{Execution, KnobConfig, Machine, WorkloadProfile};
use polybench::App;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

/// What a queued scheduler event does when it fires.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Action {
    /// One kernel invocation of a live instance (dropped silently when
    /// the handle went stale — the instance retired first).
    Step(InstanceId),
    /// A workload-trace arrival into `pool`; spawns an instance and,
    /// when `lifetime_s` is finite, schedules its retirement.
    Arrive { pool: u32, lifetime_s: f64 },
    /// An orderly retirement (no-op on a stale handle).
    Retire(InstanceId),
}

/// A scheduled event: ordered by virtual time, ties broken by the
/// monotone issue sequence — the heap order is total and
/// deterministic, so a run is bit-replayable from its inputs.
#[derive(Debug, Clone, Copy)]
struct QueuedEvent {
    t_s: f64,
    seq: u64,
    action: Action,
}

impl PartialEq for QueuedEvent {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for QueuedEvent {}
impl PartialOrd for QueuedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueuedEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.t_s
            .total_cmp(&other.t_s)
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

/// One sparse instance: everything the scheduler needs between two of
/// its events, ~48 bytes — no application object, no knowledge clone,
/// no RNG state.
#[derive(Debug, Clone, Copy)]
struct SparseInstance {
    pool: u32,
    /// Noise-stream id ([`Machine::noise_factors_at`]); globally
    /// unique, never reused.
    stream: u64,
    steps: u64,
    /// The instance's own virtual clock: arrival time plus its
    /// executed kernel time so far.
    clock_s: f64,
    energy_j: f64,
}

/// A generational slot of the sparse pool: freed slots are reused
/// (memory stays bounded by the peak live count under churn) at the
/// next generation, so handles are never reused.
#[derive(Debug, Clone, Copy)]
struct Slot {
    generation: u32,
    live: bool,
    inst: SparseInstance,
}

/// The pool-level planned selection: one cached `best` per pool,
/// maintained incrementally as publishes patch single points. The
/// rules are the planned-selection subset of [`margot::AsRtm::best`]
/// with unit adjustment factors (the event runtime has no monitor
/// feedback loop) and at most the fleet's power constraint: feasible
/// points compete on rank value; with an empty feasible region the
/// minimum-violation point wins, rank breaking ties.
#[derive(Debug, Clone, Copy)]
struct Selection {
    valid: bool,
    pos: usize,
    value: f64,
    /// Whether the selection came from a non-empty feasible region. In
    /// the infeasible-fallback regime any patch can reorder the
    /// violations, so incremental maintenance gives up and rescans.
    feasible: bool,
    /// The power share the selection was computed under.
    share_w: Option<f64>,
}

impl Selection {
    fn invalid() -> Self {
        Selection {
            valid: false,
            pos: 0,
            value: 0.0,
            feasible: false,
            share_w: None,
        }
    }
}

fn share_constraint(share_w: Option<f64>) -> Option<Constraint> {
    share_w.map(|w| Constraint::new(Metric::power(), Cmp::LessOrEqual, w, FLEET_POWER_PRIORITY))
}

/// One shared-knowledge pool of the event runtime: all instances of
/// the same enhanced application publish into and select from it.
struct EventPool {
    app: App,
    design: Knowledge<KnobConfig>,
    shared: SharedKnowledge<KnobConfig>,
    schedule: ExplorationSchedule<KnobConfig>,
    /// Warm-boot re-validation queue as design positions.
    burst: VecDeque<usize>,
    rank: Rank,
    /// The pool's base machine: the timing/power model every instance
    /// shares, and the seed all noise streams derive from.
    machine: Machine,
    profile: WorkloadProfile,
    /// Design configurations in shared-knowledge position order.
    configs: Vec<KnobConfig>,
    pos_index: HashMap<KnobConfig, usize>,
    /// Effective knowledge, patched in place on every accepted publish
    /// ([`SharedKnowledge::publish_into`]). Sole owner: nothing clones
    /// it, so the copy-on-write patch never deep-copies.
    cache: Knowledge<KnobConfig>,
    /// Expected (noise-free) execution per design position, filled on
    /// first use: per-event execution is a cached expectation times two
    /// stateless noise factors.
    exec: Vec<Option<Execution>>,
    selection: Selection,
    live: usize,
    pruned_infeasible: u64,
    pruned_dominated: u64,
}

impl EventPool {
    /// The planned design position under `share_w`, rescanning only
    /// when the cached selection is stale.
    fn select(&mut self, share_w: Option<f64>) -> usize {
        if !self.selection.valid || self.selection.share_w != share_w {
            self.rescan(share_w);
        }
        self.selection.pos
    }

    fn rescan(&mut self, share_w: Option<f64>) {
        let constraint = share_constraint(share_w);
        let pts = self.cache.points();
        let mut best: Option<(usize, f64)> = None;
        for (i, p) in pts.iter().enumerate() {
            if let Some(c) = &constraint {
                if !c.satisfied_with(|m| p.metric(m)) {
                    continue;
                }
            }
            let Some(v) = self.rank.value_with(|m| p.metric(m)) else {
                continue;
            };
            if !v.is_finite() {
                continue;
            }
            match best {
                Some((_, bv)) if !self.rank.better(v, bv) => {}
                _ => best = Some((i, v)),
            }
        }
        self.selection = match best {
            Some((pos, value)) => Selection {
                valid: true,
                pos,
                value,
                feasible: true,
                share_w,
            },
            None => {
                let c = constraint
                    .as_ref()
                    .expect("knowledge must hold at least one point the rank can score");
                // Empty feasible region: the least-violating point
                // wins, rank value breaking exact ties — the planned
                // analogue of the AS-RTM's constraint-relaxation path.
                let mut fallback: Option<(usize, f64, Option<f64>)> = None;
                for (i, p) in pts.iter().enumerate() {
                    let violation = c.violation_with(|m| p.metric(m));
                    let value = self
                        .rank
                        .value_with(|m| p.metric(m))
                        .filter(|v| v.is_finite());
                    let wins = match &fallback {
                        None => true,
                        Some((_, bviol, bvalue)) => {
                            violation < *bviol
                                || (violation == *bviol
                                    && match (value, bvalue) {
                                        (Some(v), Some(b)) => self.rank.better(v, *b),
                                        (Some(_), None) => true,
                                        _ => false,
                                    })
                        }
                    };
                    if wins {
                        fallback = Some((i, violation, value));
                    }
                }
                let (pos, _, value) = fallback.expect("effective knowledge is never empty");
                Selection {
                    valid: true,
                    pos,
                    value: value.unwrap_or(f64::NEG_INFINITY),
                    feasible: false,
                    share_w,
                }
            }
        };
    }

    /// Incremental selection maintenance after a publish patched
    /// design position `pos`: O(1) unless the patch can demote the
    /// current winner (it *is* the winner, or the selection sits in
    /// the infeasible-fallback regime), in which case the cached
    /// selection is invalidated and the next select rescans.
    fn on_patch(&mut self, pos: usize) {
        if !self.selection.valid {
            return;
        }
        if !self.selection.feasible || pos == self.selection.pos {
            self.selection.valid = false;
            return;
        }
        let p = &self.cache.points()[pos];
        if let Some(c) = share_constraint(self.selection.share_w) {
            if !c.satisfied_with(|m| p.metric(m)) {
                return;
            }
        }
        let Some(v) = self.rank.value_with(|m| p.metric(m)) else {
            return;
        };
        if v.is_finite() && self.rank.better(v, self.selection.value) {
            self.selection.pos = pos;
            self.selection.value = v;
        }
    }
}

/// Membership, churn and scheduler counters (see [`EventFleet::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventFleetStats {
    /// Instances ever admitted (spawned or workload-trace arrivals).
    pub spawned: u64,
    /// Instances currently live.
    pub active: usize,
    /// Instances retired so far.
    pub retired: u64,
    /// Sparse-pool slots allocated — bounded by the **peak** live
    /// count, not the admission count, because retired slots are
    /// reused at the next generation.
    pub slots: usize,
    /// Scheduler events processed.
    pub events: u64,
    /// Step events dropped because their handle had gone stale (the
    /// instance retired between scheduling and firing).
    pub stale_dropped: u64,
}

/// The in-process event-driven fleet runtime: sparse instances on a
/// discrete-event scheduler (the module-level docs in
/// `crates/core/src/fleet_events.rs` describe the design and its
/// scope).
///
/// # Examples
///
/// ```no_run
/// use socrates::{EventFleet, FleetConfig, FleetRuntime, Schedule, Toolchain};
/// use margot::Rank;
/// use polybench::App;
///
/// let enhanced = Toolchain::default().enhance(App::TwoMm).unwrap();
/// let config = FleetConfig::builder()
///     .schedule(Schedule::EventDriven)
///     .build()
///     .unwrap();
/// let mut fleet = EventFleet::new(config).unwrap();
/// fleet.spawn(&enhanced, &Rank::throughput_per_watt2(), 42, 100_000);
/// fleet.run_until(30.0); // 30 virtual seconds, however many events
/// ```
pub struct EventFleet {
    config: FleetConfig,
    pools: Vec<EventPool>,
    slots: Vec<Slot>,
    /// Freed slot indices, reused LIFO.
    free: Vec<u32>,
    heap: BinaryHeap<Reverse<QueuedEvent>>,
    /// Monotone event-issue sequence (the deterministic tie-break).
    seq: u64,
    /// Noise streams ever handed out == instances ever admitted.
    spawned: u64,
    live_count: usize,
    retired: u64,
    now_s: f64,
    events: u64,
    stale_dropped: u64,
    /// Order-sensitive FNV-1a fold of every processed event — the
    /// replayability fingerprint ([`EventFleet::event_digest`]).
    digest: u64,
    observers: Vec<EventObserver>,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_fold(digest: u64, word: u64) -> u64 {
    let mut d = digest;
    for byte in word.to_le_bytes() {
        d = (d ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
    }
    d
}

impl EventFleet {
    /// An empty event-driven fleet with the given policy.
    ///
    /// # Errors
    ///
    /// Returns a runtime-stage [`SocratesError`] if the policy is
    /// invalid ([`FleetConfig::validate`]) or does not select
    /// [`Schedule::EventDriven`] — lockstep configurations boot
    /// through [`crate::Fleet::new`], distributed ones through
    /// [`crate::DistributedFleet::new`].
    pub fn new(config: FleetConfig) -> Result<Self, SocratesError> {
        config.validate()?;
        if config.schedule != Schedule::EventDriven {
            return Err(SocratesError::invalid_config(
                "this configuration selects the lockstep schedule (schedule = Lockstep): \
                 boot it through Fleet::new (or DistributedFleet::new when distributed = \
                 Some); EventFleet runs only the sparse discrete-event scheduler",
            ));
        }
        Ok(EventFleet {
            config,
            pools: Vec::new(),
            slots: Vec::new(),
            free: Vec::new(),
            heap: BinaryHeap::new(),
            seq: 0,
            spawned: 0,
            live_count: 0,
            retired: 0,
            now_s: 0.0,
            events: 0,
            stale_dropped: 0,
            digest: FNV_OFFSET,
            observers: Vec::new(),
        })
    }

    /// The fleet policy.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Boots `count` instances of one enhanced app; returns their
    /// handles. The pool's base machine comes from the app's own
    /// platform seeded with `base_seed`; every instance gets a fresh,
    /// never-reused noise stream of it.
    pub fn spawn(
        &mut self,
        enhanced: &EnhancedApp,
        rank: &Rank,
        base_seed: u64,
        count: usize,
    ) -> Vec<InstanceId> {
        let base = enhanced.platform.machine(base_seed);
        self.spawn_on(enhanced, rank, &base, count)
    }

    /// Boots `count` instances on an explicit base machine (e.g. a
    /// drifted [`crate::Platform::hotter`] deployment). The first
    /// spawn into a pool fixes its base machine and rank; later
    /// joiners of the same pool share them and only draw fresh noise
    /// streams.
    pub fn spawn_on(
        &mut self,
        enhanced: &EnhancedApp,
        rank: &Rank,
        base: &Machine,
        count: usize,
    ) -> Vec<InstanceId> {
        let pool = self.pool_for(enhanced, rank, base);
        (0..count).map(|_| self.admit(pool, self.now_s)).collect()
    }

    /// Schedules a seeded workload trace into the scheduler: every
    /// arrival becomes an `Arrive` event (offset from the current
    /// virtual time) that admits an instance and — for finite
    /// lifetimes — schedules its retirement. Returns the number of
    /// arrivals scheduled.
    ///
    /// The pool's base machine is the app's platform seeded with the
    /// trace seed (first creation only — see
    /// [`spawn_on`](Self::spawn_on)).
    ///
    /// # Errors
    ///
    /// Returns a runtime-stage [`SocratesError`] when the trace is
    /// invalid ([`WorkloadTrace::validate`]).
    pub fn drive(
        &mut self,
        trace: &WorkloadTrace,
        enhanced: &EnhancedApp,
        rank: &Rank,
    ) -> Result<usize, SocratesError> {
        trace.validate()?;
        let base = enhanced.platform.machine(trace.seed);
        let pool = self.pool_for(enhanced, rank, &base);
        let pool = u32::try_from(pool).expect("pool count fits in u32");
        let now = self.now_s;
        let arrivals = trace.arrivals();
        for a in &arrivals {
            self.push(
                now + a.t_s,
                Action::Arrive {
                    pool,
                    lifetime_s: a.lifetime_s,
                },
            );
        }
        Ok(arrivals.len())
    }

    /// Retires a live instance at the current virtual time; returns
    /// `false` for a stale handle (already retired — never a panic,
    /// because handles are never reused).
    pub fn retire(&mut self, id: InstanceId) -> bool {
        if !self.is_live(id) {
            return false;
        }
        self.retire_at(id, self.now_s);
        true
    }

    /// Sets (or clears) the global power budget, re-split across live
    /// instances as churn events fire.
    ///
    /// # Panics
    ///
    /// Panics if the budget is not positive and finite.
    pub fn set_power_budget(&mut self, budget_w: Option<f64>) {
        if let Some(w) = budget_w {
            assert!(
                w.is_finite() && w > 0.0,
                "power budget {w} W must be positive"
            );
        }
        self.config.power_budget_w = budget_w;
    }

    /// Each live instance's current power allocation, watts.
    pub fn power_share_w(&self) -> Option<f64> {
        match self.config.power_budget_w {
            Some(w) if self.live_count > 0 => Some(w / self.live_count as f64),
            _ => None,
        }
    }

    /// Whether `id` is a live instance (stale handles return `false`
    /// forever; they never alias a successor).
    pub fn is_live(&self, id: InstanceId) -> bool {
        self.slots
            .get(id.slot() as usize)
            .is_some_and(|s| s.live && s.generation == id.generation())
    }

    /// Instance `id`'s own virtual clock, or `None` for stale handles.
    pub fn clock_s(&self, id: InstanceId) -> Option<f64> {
        self.live_slot(id).map(|s| s.inst.clock_s)
    }

    /// Total energy drawn by instance `id`, joules.
    pub fn energy_j(&self, id: InstanceId) -> Option<f64> {
        self.live_slot(id).map(|s| s.inst.energy_j)
    }

    /// Kernel invocations instance `id` has executed.
    pub fn steps(&self, id: InstanceId) -> Option<u64> {
        self.live_slot(id).map(|s| s.inst.steps)
    }

    /// Scheduler events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events
    }

    /// Events still queued in the scheduler.
    pub fn queued_events(&self) -> usize {
        self.heap.len()
    }

    /// The order-sensitive digest of every event processed so far: two
    /// runs built from the same seeds fold to the same digest — the
    /// bit-replayability fingerprint the property tests pin.
    pub fn event_digest(&self) -> u64 {
        self.digest
    }

    /// Membership, churn and scheduler counters in one read.
    pub fn stats(&self) -> EventFleetStats {
        EventFleetStats {
            spawned: self.spawned,
            active: self.live_count,
            retired: self.retired,
            slots: self.slots.len(),
            events: self.events,
            stale_dropped: self.stale_dropped,
        }
    }

    /// The current merged (online) knowledge for `app`, or `None` if
    /// no instance of it was ever admitted.
    pub fn learned_knowledge(&self, app: App) -> Option<Knowledge<KnobConfig>> {
        self.pools
            .iter()
            .find(|p| p.app == app)
            .map(|p| p.shared.knowledge())
    }

    /// The shared-knowledge epoch for `app`, or `None` if unknown.
    pub fn knowledge_epoch(&self, app: App) -> Option<u64> {
        self.pools
            .iter()
            .find(|p| p.app == app)
            .map(|p| p.shared.epoch())
    }

    /// Online design-space coverage for `app`: `(covered, total)`.
    pub fn exploration_coverage(&self, app: App) -> Option<(usize, usize)> {
        self.pools.iter().find(|p| p.app == app).map(|p| {
            (
                p.schedule.total() - p.schedule.remaining(),
                p.schedule.total(),
            )
        })
    }

    /// Configurations the static analyzer pruned from the exploration
    /// schedules: `(infeasible, dominated)` — 0 unless
    /// [`FleetConfig::analysis_prune`].
    pub fn schedule_pruned(&self) -> (u64, u64) {
        self.pools.iter().fold((0, 0), |(i, d), p| {
            (i + p.pruned_infeasible, d + p.pruned_dominated)
        })
    }

    fn live_slot(&self, id: InstanceId) -> Option<&Slot> {
        self.slots
            .get(id.slot() as usize)
            .filter(|s| s.live && s.generation == id.generation())
    }

    /// Finds (or creates) the pool for an enhanced app — keyed by
    /// application *and* design knowledge, like the lockstep runtime.
    fn pool_for(&mut self, enhanced: &EnhancedApp, rank: &Rank, base: &Machine) -> usize {
        if let Some(i) = self
            .pools
            .iter()
            .position(|p| p.app == enhanced.app && p.design == enhanced.knowledge)
        {
            return i;
        }
        let mut sweep: Vec<KnobConfig> = enhanced
            .knowledge
            .points()
            .iter()
            .map(|p| p.config.clone())
            .collect();
        let configs = sweep.clone();
        let (mut pruned_infeasible, mut pruned_dominated) = (0u64, 0u64);
        if self.config.analysis_prune {
            let pruned = crate::engine::analysis_prune(enhanced, sweep);
            pruned_infeasible = pruned.infeasible as u64;
            pruned_dominated = pruned.dominated as u64;
            sweep = pruned.kept;
        }
        let pos_index: HashMap<KnobConfig, usize> = configs
            .iter()
            .enumerate()
            .map(|(i, c)| (c.clone(), i))
            .collect();
        let seeded = match &self.config.warm_start {
            Some(snapshot) => snapshot.apply_to_design(&enhanced.knowledge),
            None => enhanced.knowledge.clone(),
        };
        let shared = SharedKnowledge::new(seeded.clone(), self.config.knowledge_window)
            .with_min_observations(self.config.min_observations)
            .with_shards(self.config.knowledge_shards);
        let mut burst = VecDeque::new();
        if let Some(snapshot) = &self.config.warm_start {
            let copies = self.config.warm_seed_copies_for(enhanced.app);
            if copies > 0 {
                shared.seed_observations(&snapshot.knowledge, copies);
            }
            // Same head re-validation queue as the lockstep boot, as
            // design positions; configurations foreign to this design
            // space cannot be executed and are skipped.
            burst = warm_validation_queue(
                snapshot,
                rank,
                self.config
                    .knowledge_window
                    .min(crate::fleet::WARM_HEAD_PASSES),
            )
            .into_iter()
            .filter_map(|cfg| pos_index.get(&cfg).copied())
            .collect();
        }
        let exec = vec![None; configs.len()];
        self.pools.push(EventPool {
            app: enhanced.app,
            design: enhanced.knowledge.clone(),
            shared,
            schedule: ExplorationSchedule::new(sweep),
            burst,
            rank: rank.clone(),
            machine: base.clone(),
            profile: enhanced.profile.clone(),
            configs,
            pos_index,
            cache: seeded,
            exec,
            selection: Selection::invalid(),
            live: 0,
            pruned_infeasible,
            pruned_dominated,
        });
        self.pools.len() - 1
    }

    /// Admits one instance into `pool` at virtual time `t_s`,
    /// scheduling its first step immediately.
    fn admit(&mut self, pool: usize, t_s: f64) -> InstanceId {
        let stream = self.spawned;
        self.spawned += 1;
        let inst = SparseInstance {
            pool: u32::try_from(pool).expect("pool count fits in u32"),
            stream,
            steps: 0,
            clock_s: t_s,
            energy_j: 0.0,
        };
        let id = match self.free.pop() {
            Some(slot) => {
                let s = &mut self.slots[slot as usize];
                s.generation = s.generation.wrapping_add(1);
                s.live = true;
                s.inst = inst;
                InstanceId::new(slot, s.generation)
            }
            None => {
                let slot = u32::try_from(self.slots.len())
                    .expect("sparse pool holds at most u32::MAX slots");
                self.slots.push(Slot {
                    generation: 0,
                    live: true,
                    inst,
                });
                InstanceId::new(slot, 0)
            }
        };
        self.live_count += 1;
        self.pools[pool].live += 1;
        // The per-instance power share changed; every pool re-selects
        // lazily at its next step.
        self.invalidate_selections();
        self.push(t_s, Action::Step(id));
        self.emit(FleetEvent::Arrived { id, t_s });
        id
    }

    fn retire_at(&mut self, id: InstanceId, t_s: f64) {
        let slot = id.slot() as usize;
        let pool = self.slots[slot].inst.pool as usize;
        self.slots[slot].live = false;
        self.free.push(id.slot());
        self.live_count -= 1;
        self.pools[pool].live -= 1;
        self.retired += 1;
        self.invalidate_selections();
        self.emit(FleetEvent::Retired { id, t_s });
    }

    fn invalidate_selections(&mut self) {
        // Lazy: select() compares the recorded share, so only pools
        // that actually step again pay the rescan.
        if self.config.power_budget_w.is_some() {
            for pool in &mut self.pools {
                pool.selection.valid = false;
            }
        }
    }

    fn push(&mut self, t_s: f64, action: Action) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(QueuedEvent { t_s, seq, action }));
    }

    fn emit(&mut self, event: FleetEvent) {
        for observer in &mut self.observers {
            observer(&event);
        }
    }

    /// Processes the next queued event; returns `false` on an empty
    /// scheduler.
    fn process_one(&mut self) -> bool {
        let Some(Reverse(ev)) = self.heap.pop() else {
            return false;
        };
        // Heap order is (time, seq): the clock never goes backwards.
        self.now_s = ev.t_s;
        self.events += 1;
        match ev.action {
            Action::Arrive { pool, lifetime_s } => {
                self.digest = fnv_fold(fnv_fold(self.digest, 1), ev.t_s.to_bits());
                let id = self.admit(pool as usize, ev.t_s);
                self.digest = fnv_fold(self.digest, id.raw());
                if lifetime_s.is_finite() {
                    self.push(ev.t_s + lifetime_s, Action::Retire(id));
                }
            }
            Action::Retire(id) => {
                if self.is_live(id) {
                    self.digest = fnv_fold(fnv_fold(self.digest, 2), id.raw());
                    self.retire_at(id, ev.t_s);
                } else {
                    self.stale_dropped += 1;
                }
            }
            Action::Step(id) => {
                if self.is_live(id) {
                    self.step_instance(id, ev.t_s);
                } else {
                    // The instance retired between scheduling and
                    // firing: its pending step dies with it.
                    self.stale_dropped += 1;
                }
            }
        }
        true
    }

    /// One kernel invocation of a live instance — the hot path. O(1)
    /// amortized in the total instance count: a cached expectation,
    /// two stateless noise draws, one shard-locked merge patching one
    /// point, and one heap push.
    fn step_instance(&mut self, id: InstanceId, t_s: f64) {
        let slot = id.slot() as usize;
        let (pool_idx, stream, steps) = {
            let inst = &self.slots[slot].inst;
            (inst.pool as usize, inst.stream, inst.steps)
        };
        let share_w = self.power_share_w();
        let interval = self.config.exploration_interval;
        let share_knowledge = self.config.share_knowledge;
        let pool = &mut self.pools[pool_idx];
        // Configuration choice: warm-boot validation outranks the
        // cooperative sweep outranks planned selection — the lockstep
        // assignment policy, keyed to this instance's step counter.
        let (pos, forced) = if let Some(pos) = pool.burst.pop_front() {
            (pos, true)
        } else if share_knowledge && interval > 0 && steps % interval == interval - 1 {
            match pool.schedule.peek_unexplored() {
                // Peek, don't claim: the claim lands at publish below,
                // so a step that never publishes leaves no hole.
                Some(cfg) => (
                    *pool
                        .pos_index
                        .get(cfg)
                        .expect("sweep configs are design points"),
                    true,
                ),
                None => (pool.select(share_w), false),
            }
        } else {
            (pool.select(share_w), false)
        };
        if pool.exec[pos].is_none() {
            pool.exec[pos] = Some(pool.machine.expected(&pool.profile, &pool.configs[pos]));
        }
        let expected = pool.exec[pos].as_ref().expect("just filled");
        let (tf, pf) = pool.machine.noise_factors_at(stream, steps);
        let time_s = expected.time_s * tf;
        let power_w = expected.power_w * pf;
        let epoch = if share_knowledge {
            let observed = MetricValues::from_execution(time_s, power_w);
            let published =
                pool.shared
                    .publish_into(&pool.configs[pos], &observed, &mut pool.cache);
            let (ppos, changed) = published.expect("design configs are known points");
            debug_assert_eq!(ppos, pos, "pool configs are in shared position order");
            if changed {
                pool.on_patch(pos);
            }
            // Publish-time claim: forced sweep assignments and organic
            // selections both count as coverage only once observed.
            pool.schedule.claim(&pool.configs[pos]);
            Some(pool.shared.epoch())
        } else {
            None
        };
        {
            let inst = &mut self.slots[slot].inst;
            inst.steps += 1;
            inst.clock_s = t_s + time_s;
            inst.energy_j += time_s * power_w;
        }
        self.digest = fnv_fold(fnv_fold(self.digest, 3), id.raw());
        self.digest = fnv_fold(self.digest, time_s.to_bits());
        self.digest = fnv_fold(self.digest, power_w.to_bits());
        if !self.observers.is_empty() {
            self.emit(FleetEvent::Stepped {
                id,
                t_start_s: t_s,
                time_s,
                power_w,
                forced,
            });
            if let Some(epoch) = epoch {
                self.emit(FleetEvent::Published {
                    id,
                    t_s: t_s + time_s,
                    epoch,
                });
            }
        }
        // The instance's next step, keyed by its own kernel runtime.
        self.push(t_s + time_s, Action::Step(id));
    }
}

impl FleetRuntime for EventFleet {
    /// Processes every event scheduled at or before `t_s` and advances
    /// the virtual clock to `t_s`; returns the events processed.
    fn run_until(&mut self, t_s: f64) -> u64 {
        let mut n = 0;
        while let Some(Reverse(ev)) = self.heap.peek() {
            if ev.t_s > t_s {
                break;
            }
            self.process_one();
            n += 1;
        }
        self.now_s = self.now_s.max(t_s);
        n
    }

    fn run_events(&mut self, n: u64) -> u64 {
        for done in 0..n {
            if !self.process_one() {
                return done;
            }
        }
        n
    }

    fn observe(&mut self, observer: EventObserver) {
        self.observers.push(observer);
    }

    fn virtual_now_s(&self) -> f64 {
        self.now_s
    }

    fn active_count(&self) -> usize {
        self.live_count
    }
}

/// The shape of a [`WorkloadTrace`]'s arrival-rate curve over time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WorkloadCurve {
    /// A constant arrival rate.
    Constant,
    /// A diurnal load curve:
    /// `rate(t) = base · (1 + amplitude · sin(2πt / period))`,
    /// clamped at zero.
    Diurnal {
        /// Period of one day, virtual seconds.
        period_s: f64,
        /// Relative swing in `[0, 1]`.
        amplitude: f64,
    },
    /// A flash crowd: the base rate multiplied by `multiplier` inside
    /// the burst window, unchanged outside it.
    FlashCrowd {
        /// Burst start, virtual seconds.
        at_s: f64,
        /// Burst length, virtual seconds.
        duration_s: f64,
        /// Rate multiplier (≥ 1) inside the burst.
        multiplier: f64,
    },
}

/// One arrival a [`WorkloadTrace`] generated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Arrival {
    /// Arrival time, virtual seconds from the trace start.
    pub t_s: f64,
    /// How long the instance stays before retiring, virtual seconds.
    pub lifetime_s: f64,
}

/// A seeded workload-trace driver: a non-homogeneous Poisson arrival
/// process (thinning over the [`WorkloadCurve`]) with exponential
/// per-instance lifetimes. Fully deterministic — the same trace always
/// generates the same arrivals, which is what makes an event run
/// replayable bit-identically from its seed
/// ([`EventFleet::event_digest`]).
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadTrace {
    /// RNG seed for the arrival and lifetime draws.
    pub seed: u64,
    /// Trace horizon: arrivals are generated in `[0, horizon_s)`.
    pub horizon_s: f64,
    /// Base arrival rate, instances per virtual second.
    pub base_rate_hz: f64,
    /// Mean exponential lifetime of one instance, virtual seconds.
    pub mean_lifetime_s: f64,
    /// The rate curve over the horizon.
    pub curve: WorkloadCurve,
}

impl WorkloadTrace {
    /// Validity check — all rates and durations must be positive and
    /// finite, the diurnal amplitude within `[0, 1]`, the flash-crowd
    /// multiplier at least 1.
    ///
    /// # Errors
    ///
    /// Returns a runtime-stage [`SocratesError`] naming the offending
    /// field.
    pub fn validate(&self) -> Result<(), SocratesError> {
        let positive = |name: &str, v: f64| -> Result<(), SocratesError> {
            if !(v.is_finite() && v > 0.0) {
                return Err(SocratesError::invalid_config(format!(
                    "workload trace {name} = {v} must be positive and finite"
                )));
            }
            Ok(())
        };
        positive("horizon_s", self.horizon_s)?;
        positive("base_rate_hz", self.base_rate_hz)?;
        positive("mean_lifetime_s", self.mean_lifetime_s)?;
        match self.curve {
            WorkloadCurve::Constant => {}
            WorkloadCurve::Diurnal {
                period_s,
                amplitude,
            } => {
                positive("diurnal period_s", period_s)?;
                if !(0.0..=1.0).contains(&amplitude) {
                    return Err(SocratesError::invalid_config(format!(
                        "diurnal amplitude = {amplitude} must lie in [0, 1] (the rate cannot \
                         swing negative)"
                    )));
                }
            }
            WorkloadCurve::FlashCrowd {
                at_s,
                duration_s,
                multiplier,
            } => {
                if !(at_s.is_finite() && at_s >= 0.0) {
                    return Err(SocratesError::invalid_config(format!(
                        "flash-crowd at_s = {at_s} must be non-negative and finite"
                    )));
                }
                positive("flash-crowd duration_s", duration_s)?;
                if !(multiplier.is_finite() && multiplier >= 1.0) {
                    return Err(SocratesError::invalid_config(format!(
                        "flash-crowd multiplier = {multiplier} must be >= 1 (a crowd does \
                         not shrink the base load)"
                    )));
                }
            }
        }
        Ok(())
    }

    /// The instantaneous arrival rate at `t_s`, instances per second.
    pub fn rate_at(&self, t_s: f64) -> f64 {
        match self.curve {
            WorkloadCurve::Constant => self.base_rate_hz,
            WorkloadCurve::Diurnal {
                period_s,
                amplitude,
            } => {
                let phase = std::f64::consts::TAU * t_s / period_s;
                (self.base_rate_hz * (1.0 + amplitude * phase.sin())).max(0.0)
            }
            WorkloadCurve::FlashCrowd {
                at_s,
                duration_s,
                multiplier,
            } => {
                if t_s >= at_s && t_s < at_s + duration_s {
                    self.base_rate_hz * multiplier
                } else {
                    self.base_rate_hz
                }
            }
        }
    }

    /// The curve's peak rate — the thinning envelope.
    fn peak_rate(&self) -> f64 {
        match self.curve {
            WorkloadCurve::Constant => self.base_rate_hz,
            WorkloadCurve::Diurnal { amplitude, .. } => self.base_rate_hz * (1.0 + amplitude),
            WorkloadCurve::FlashCrowd { multiplier, .. } => self.base_rate_hz * multiplier.max(1.0),
        }
    }

    /// Generates the trace's arrivals, in time order. Deterministic in
    /// the trace (call it twice, get the same vector). Call
    /// [`validate`](Self::validate) first — an invalid trace may
    /// produce a nonsensical (but still deterministic) schedule.
    pub fn arrivals(&self) -> Vec<Arrival> {
        let peak = self.peak_rate();
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let mut out = Vec::new();
        let mut t = 0.0_f64;
        loop {
            // Exponential gap at the envelope rate; `1 - u` keeps the
            // draw in (0, 1] so ln never sees zero.
            let u: f64 = 1.0 - rng.gen_range(0.0..1.0);
            t += -u.ln() / peak;
            // NaN-safe horizon check (an unvalidated trace can drive t
            // to NaN; the loop must still terminate).
            if !t.is_finite() || t >= self.horizon_s {
                break;
            }
            let accept: f64 = rng.gen_range(0.0..1.0);
            if accept * peak <= self.rate_at(t) {
                let ul: f64 = 1.0 - rng.gen_range(0.0..1.0);
                out.push(Arrival {
                    t_s: t,
                    lifetime_s: -ul.ln() * self.mean_lifetime_s,
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toolchain::Toolchain;
    use polybench::Dataset;

    fn quick_enhanced(app: App) -> EnhancedApp {
        Toolchain {
            dataset: Dataset::Medium,
            dse_repetitions: 1,
            ..Toolchain::default()
        }
        .enhance(app)
        .unwrap()
    }

    fn rank() -> Rank {
        Rank::throughput_per_watt2()
    }

    fn event_config() -> FleetConfig {
        FleetConfig {
            schedule: Schedule::EventDriven,
            ..FleetConfig::default()
        }
    }

    #[test]
    fn construction_enforces_the_schedule_split() {
        let err = EventFleet::new(FleetConfig::default())
            .err()
            .expect("lockstep configs must boot through Fleet::new");
        assert!(err.to_string().contains("Fleet::new"), "{err}");
        let err = crate::fleet::Fleet::new(event_config())
            .err()
            .expect("event configs must boot through EventFleet::new");
        assert!(err.to_string().contains("EventFleet::new"), "{err}");
        // EventDriven + distributed is contradictory wherever it lands.
        let contradictory = FleetConfig {
            distributed: Some(crate::transport::DistributedConfig::default()),
            exploration_interval: 0,
            power_budget_w: None,
            ..event_config()
        };
        let err = contradictory.validate().expect_err("cross-field rule");
        assert!(err.to_string().contains("EventDriven"), "{err}");
    }

    #[test]
    fn instances_step_on_their_own_clocks() {
        let enhanced = quick_enhanced(App::TwoMm);
        let mut fleet = EventFleet::new(event_config()).unwrap();
        let ids = fleet.spawn(&enhanced, &rank(), 42, 3);
        assert_eq!(fleet.active_count(), 3);
        let events = fleet.run_until(5.0);
        assert!(events > 0, "instances must have stepped");
        assert_eq!(fleet.virtual_now_s(), 5.0);
        for &id in &ids {
            let clock = fleet.clock_s(id).expect("live");
            assert!(clock > 0.0, "instance {id} never stepped");
            assert!(fleet.steps(id).unwrap() > 0);
            assert!(fleet.energy_j(id).unwrap() > 0.0);
        }
        // Different noise streams: clocks drift apart.
        assert_ne!(fleet.clock_s(ids[0]), fleet.clock_s(ids[1]));
        // Knowledge merged on publish events, no barrier in sight.
        assert!(fleet.knowledge_epoch(App::TwoMm).unwrap() > 0);
        let learned = fleet.learned_knowledge(App::TwoMm).unwrap();
        assert_ne!(learned, enhanced.knowledge);
    }

    #[test]
    fn per_publish_merge_equals_the_cache() {
        // The pool cache patched per publish must equal a fresh
        // effective snapshot at any point — merge-on-publish is the
        // barrier drain, amortized.
        let enhanced = quick_enhanced(App::TwoMm);
        let mut fleet = EventFleet::new(event_config()).unwrap();
        fleet.spawn(&enhanced, &rank(), 7, 4);
        fleet.run_events(200);
        let pool = &fleet.pools[0];
        assert_eq!(pool.cache, pool.shared.knowledge());
    }

    #[test]
    fn cooperative_sweep_claims_on_publish() {
        let enhanced = quick_enhanced(App::TwoMm);
        let mut fleet = EventFleet::new(FleetConfig {
            exploration_interval: 1,
            ..event_config()
        })
        .unwrap();
        fleet.spawn(&enhanced, &rank(), 11, 8);
        let (covered_0, total) = fleet.exploration_coverage(App::TwoMm).unwrap();
        assert_eq!(covered_0, 0);
        fleet.run_events(400);
        let (covered, _) = fleet.exploration_coverage(App::TwoMm).unwrap();
        assert!(
            covered > total / 4,
            "sweep must make progress: {covered}/{total}"
        );
        // Distinct configurations were actually executed (the sweep is
        // cooperative, not everyone re-measuring the same point).
        let distinct: std::collections::HashSet<u32> = fleet.pools[0]
            .exec
            .iter()
            .enumerate()
            .filter(|(_, e)| e.is_some())
            .map(|(i, _)| i as u32)
            .collect();
        assert!(distinct.len() > 8);
    }

    #[test]
    fn power_budget_steers_selection() {
        let enhanced = quick_enhanced(App::TwoMm);
        // Same calibration as the lockstep budget test: under a pure
        // exec-time rank the unconstrained pick draws >100 W, so a
        // 70 W/instance share must steer to a cooler configuration.
        let boot = |budget: Option<f64>| {
            let mut fleet = EventFleet::new(FleetConfig {
                exploration_interval: 0, // pure planned selection
                ..event_config()
            })
            .unwrap();
            fleet.set_power_budget(budget);
            let ids = fleet.spawn(&enhanced, &Rank::minimize(Metric::exec_time()), 5, 2);
            fleet.run_until(3.0);
            let e: f64 = ids.iter().map(|&id| fleet.energy_j(id).unwrap()).sum();
            let t: f64 = ids
                .iter()
                .map(|&id| fleet.clock_s(id).unwrap())
                .sum::<f64>();
            e / t // fleet-mean power
        };
        let unconstrained = boot(None);
        let tight = boot(Some(140.0));
        assert!(
            tight < unconstrained,
            "a 70 W/instance cap must pick cooler configs: {tight} vs {unconstrained}"
        );
        assert!(
            tight < 70.0 * 1.2,
            "mean power {tight} W must respect the 70 W share"
        );
    }

    #[test]
    fn handles_are_never_reused_but_slots_are() {
        let enhanced = quick_enhanced(App::TwoMm);
        let mut fleet = EventFleet::new(event_config()).unwrap();
        let first = fleet.spawn(&enhanced, &rank(), 1, 4);
        fleet.run_events(40);
        for &id in &first {
            assert!(fleet.retire(id));
            assert!(!fleet.retire(id), "stale retire is a no-op");
        }
        let second = fleet.spawn(&enhanced, &rank(), 1, 4);
        for &id in &second {
            // Slots reused, generations bumped: no handle aliasing.
            assert!(first.iter().all(|&old| old != id));
            assert!(first.iter().any(|&old| old.slot() == id.slot()));
        }
        let stats = fleet.stats();
        assert_eq!(stats.spawned, 8);
        assert_eq!(stats.slots, 4, "memory bounded by peak live count");
        assert_eq!(stats.active, 4);
        assert_eq!(stats.retired, 4);
        // Old handles answer None/false forever.
        assert!(!fleet.is_live(first[0]));
        assert_eq!(fleet.clock_s(first[0]), None);
        // Their queued step events drop as stale instead of stepping
        // the slot's new occupant.
        fleet.run_events(50);
        assert!(fleet.stats().stale_dropped > 0);
    }

    #[test]
    fn a_workload_trace_drives_churn_as_events() {
        let enhanced = quick_enhanced(App::TwoMm);
        let trace = WorkloadTrace {
            seed: 2018,
            horizon_s: 30.0,
            base_rate_hz: 1.0,
            mean_lifetime_s: 6.0,
            curve: WorkloadCurve::Diurnal {
                period_s: 20.0,
                amplitude: 0.8,
            },
        };
        let mut fleet = EventFleet::new(event_config()).unwrap();
        let scheduled = fleet.drive(&trace, &enhanced, &rank()).unwrap();
        assert!(scheduled > 10, "{scheduled} arrivals over 30 s at ~1 Hz");
        assert_eq!(fleet.active_count(), 0, "arrivals are events, not spawns");
        fleet.run_until(60.0);
        let stats = fleet.stats();
        assert_eq!(stats.spawned, scheduled as u64);
        assert!(stats.retired > 0, "lifetimes must have expired");
        assert!(
            stats.slots < scheduled,
            "churned slots must be reused ({} slots for {scheduled} arrivals)",
            stats.slots
        );
        assert!(fleet.knowledge_epoch(App::TwoMm).unwrap() > 0);
    }

    #[test]
    fn event_runs_replay_bit_identically_from_their_seeds() {
        let enhanced = quick_enhanced(App::TwoMm);
        let trace = WorkloadTrace {
            seed: 7,
            horizon_s: 15.0,
            base_rate_hz: 1.5,
            mean_lifetime_s: 4.0,
            curve: WorkloadCurve::FlashCrowd {
                at_s: 5.0,
                duration_s: 3.0,
                multiplier: 4.0,
            },
        };
        let run = || {
            let mut fleet = EventFleet::new(event_config()).unwrap();
            fleet.spawn(&enhanced, &rank(), 3, 2);
            fleet.drive(&trace, &enhanced, &rank()).unwrap();
            fleet.run_until(25.0);
            (
                fleet.event_digest(),
                fleet.events_processed(),
                fleet.knowledge_epoch(App::TwoMm).unwrap(),
                fleet.stats(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn observers_see_the_event_stream_without_perturbing_it() {
        use std::sync::{Arc, Mutex};
        let enhanced = quick_enhanced(App::TwoMm);
        let trace = WorkloadTrace {
            seed: 9,
            horizon_s: 8.0,
            base_rate_hz: 1.0,
            mean_lifetime_s: 3.0,
            curve: WorkloadCurve::Constant,
        };
        let run = |observe: bool| {
            let mut fleet = EventFleet::new(event_config()).unwrap();
            let seen = Arc::new(Mutex::new(Vec::new()));
            if observe {
                let sink = Arc::clone(&seen);
                fleet.observe(Box::new(move |e: &FleetEvent| {
                    sink.lock().unwrap().push(e.clone());
                }));
            }
            fleet.drive(&trace, &enhanced, &rank()).unwrap();
            fleet.run_until(15.0);
            let digest = fleet.event_digest();
            drop(fleet); // releases the observer's clone of `seen`
            let events = Arc::try_unwrap(seen).unwrap().into_inner().unwrap();
            (digest, events)
        };
        let (digest_plain, none) = run(false);
        let (digest_observed, events) = run(true);
        assert!(none.is_empty());
        assert_eq!(digest_plain, digest_observed, "observers are pure");
        assert!(events
            .iter()
            .any(|e| matches!(e, FleetEvent::Arrived { .. })));
        assert!(events
            .iter()
            .any(|e| matches!(e, FleetEvent::Stepped { .. })));
        assert!(events
            .iter()
            .any(|e| matches!(e, FleetEvent::Published { .. })));
        assert!(events
            .iter()
            .any(|e| matches!(e, FleetEvent::Retired { .. })));
        // Scheduler time is monotone — the heap never runs backwards.
        // (Published events carry the invocation's *completion* time,
        // which legitimately outruns the next event's start.)
        let fired: Vec<f64> = events
            .iter()
            .filter(|e| !matches!(e, FleetEvent::Published { .. }))
            .map(FleetEvent::t_s)
            .collect();
        for pair in fired.windows(2) {
            assert!(pair[0] <= pair[1] + 1e-12, "{pair:?}");
        }
    }

    #[test]
    fn workload_traces_are_deterministic_and_curve_shaped() {
        let diurnal = WorkloadTrace {
            seed: 5,
            horizon_s: 200.0,
            base_rate_hz: 2.0,
            mean_lifetime_s: 10.0,
            curve: WorkloadCurve::Diurnal {
                period_s: 100.0,
                amplitude: 1.0,
            },
        };
        diurnal.validate().unwrap();
        let a = diurnal.arrivals();
        assert_eq!(a, diurnal.arrivals(), "same trace, same arrivals");
        assert!(a.windows(2).all(|w| w[0].t_s <= w[1].t_s), "time ordered");
        // The rising half-period must out-arrive the falling one.
        let peak_half = a.iter().filter(|x| x.t_s % 100.0 < 50.0).count();
        let trough_half = a.len() - peak_half;
        assert!(
            peak_half > trough_half,
            "diurnal shape: {peak_half} vs {trough_half}"
        );

        let flash = WorkloadTrace {
            seed: 5,
            horizon_s: 100.0,
            base_rate_hz: 1.0,
            mean_lifetime_s: 10.0,
            curve: WorkloadCurve::FlashCrowd {
                at_s: 40.0,
                duration_s: 10.0,
                multiplier: 10.0,
            },
        };
        flash.validate().unwrap();
        let f = flash.arrivals();
        let burst = f.iter().filter(|x| (40.0..50.0).contains(&x.t_s)).count() as f64;
        let outside = (f.len() as f64 - burst) / 9.0; // per-10 s baseline
        assert!(
            burst > 3.0 * outside,
            "flash crowd must dominate its window: {burst} vs {outside} per 10 s"
        );

        // Validation rejects the nonsense.
        for bad in [
            WorkloadTrace {
                horizon_s: 0.0,
                ..diurnal.clone()
            },
            WorkloadTrace {
                base_rate_hz: f64::NAN,
                ..diurnal.clone()
            },
            WorkloadTrace {
                curve: WorkloadCurve::Diurnal {
                    period_s: 100.0,
                    amplitude: 1.5,
                },
                ..diurnal.clone()
            },
            WorkloadTrace {
                curve: WorkloadCurve::FlashCrowd {
                    at_s: 0.0,
                    duration_s: 5.0,
                    multiplier: 0.5,
                },
                ..diurnal.clone()
            },
        ] {
            assert!(bad.validate().is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn warm_start_seeds_event_pools() {
        use crate::snapshot::{KnowledgeSnapshot, SnapshotFingerprint};
        let toolchain = Toolchain {
            dataset: Dataset::Medium,
            dse_repetitions: 1,
            ..Toolchain::default()
        };
        let enhanced = toolchain.enhance(App::TwoMm).unwrap();
        // Learn something in one fleet, snapshot it, warm-boot another.
        let mut teacher = EventFleet::new(event_config()).unwrap();
        teacher.spawn(&enhanced, &rank(), 13, 4);
        teacher.run_until(20.0);
        let learned = teacher.learned_knowledge(App::TwoMm).unwrap();
        let snapshot = KnowledgeSnapshot {
            fingerprint: SnapshotFingerprint::of(&toolchain, App::TwoMm),
            epoch: teacher.knowledge_epoch(App::TwoMm).unwrap(),
            shard_epochs: Vec::new(),
            knowledge: learned.clone(),
        };
        let mut warm = EventFleet::new(FleetConfig {
            warm_start: Some(snapshot),
            ..event_config()
        })
        .unwrap();
        warm.spawn(&enhanced, &rank(), 14, 2);
        // The pool booted from the learned state, not the design state.
        let boot = warm.learned_knowledge(App::TwoMm).unwrap();
        assert_ne!(boot, enhanced.knowledge);
        // The head re-validation burst is queued at boot and drains as
        // the warm instances step.
        let queued = warm.pools[0].burst.len();
        assert!(queued > 0, "warm boot must queue a validation burst");
        warm.run_until(5.0);
        assert!(warm.pools[0].burst.len() < queued, "burst must drain");
    }
}
