//! The SOCRATES toolchain (paper Fig. 1): from the original application
//! source to the adaptive application, with zero manual intervention.
//!
//! Pipeline stages, in order:
//!
//! 1. parse the original C source (`minic`);
//! 2. extract static kernel features (`milepost` ≙ GCC-Milepost);
//! 3. train COBAYN on the *other* applications (leave-one-out iterative
//!    compilation) and predict the most promising flag combinations;
//! 4. weave the `Multiversioning` strategy (clones per CO × BP, OpenMP
//!    pragmas, dispatch wrapper) and the `Autotuner` strategy (mARGOt
//!    glue) with `lara`;
//! 5. profile the full-factorial design space on the (simulated)
//!    platform to build the mARGOt application knowledge (`dse`).

use crate::error::ToolchainError;
use cobayn::{iterative_compilation, Cobayn, CobaynConfig, TrainingApp};
use lara::{autotuner, multiversioning, Multiversioned, StaticVersion, Weaver, WeavingMetrics};
use margot::Knowledge;
use milepost::{extract_function, Features};
use minic::TranslationUnit;
use platform_sim::{
    BindingPolicy, CompilerOptions, KnobConfig, Machine, OptLevel, Topology, WorkloadProfile,
};
use polybench::{App, Dataset};
use serde::{Deserialize, Serialize};

/// Toolchain configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Toolchain {
    /// Dataset size used for profiling and at runtime.
    pub dataset: Dataset,
    /// RNG seed for the profiling machine.
    pub seed: u64,
    /// Noisy profiling repetitions per configuration during the DSE.
    pub dse_repetitions: u32,
    /// Number of COBAYN-predicted flag combinations (the paper uses 4).
    pub cobayn_predictions: usize,
    /// Fraction of the flag space kept as "good" during the iterative
    /// compilation that generates COBAYN training data.
    pub training_top_fraction: f64,
}

impl Default for Toolchain {
    fn default() -> Self {
        Toolchain {
            dataset: Dataset::Large,
            seed: 42,
            dse_repetitions: 3,
            cobayn_predictions: 4,
            training_top_fraction: 0.15,
        }
    }
}

/// The product of the toolchain: everything the adaptive binary embeds.
#[derive(Debug, Clone)]
pub struct EnhancedApp {
    /// Which benchmark this is.
    pub app: App,
    /// The original (pure functional) program.
    pub original: TranslationUnit,
    /// The weaved, adaptive program.
    pub weaved: TranslationUnit,
    /// Table I metrics for this application.
    pub metrics: WeavingMetrics,
    /// Multiversioning artefacts (clone names, wrapper, control vars).
    pub multiversioned: Multiversioned,
    /// Version table: index = `__socrates_version` value.
    pub versions: Vec<(CompilerOptions, BindingPolicy)>,
    /// The kernel's static feature vector.
    pub features: Features,
    /// The COBAYN-predicted flag combinations (CF1..CF4).
    pub cobayn_flags: Vec<CompilerOptions>,
    /// The design-time knowledge from the DSE.
    pub knowledge: Knowledge<KnobConfig>,
    /// The kernel workload profile driving the platform model.
    pub profile: WorkloadProfile,
}

impl EnhancedApp {
    /// Maps a knob configuration to its clone version index.
    ///
    /// # Panics
    ///
    /// Panics if the configuration's (CO, BP) pair is not in the version
    /// table — the knowledge and the table are built from the same space,
    /// so this indicates toolchain corruption.
    pub fn version_of(&self, config: &KnobConfig) -> usize {
        self.versions
            .iter()
            .position(|(co, bp)| *co == config.co && *bp == config.bp)
            .unwrap_or_else(|| panic!("configuration {config} has no compiled version"))
    }
}

impl Toolchain {
    /// Runs the full pipeline on one benchmark.
    ///
    /// # Errors
    ///
    /// Returns [`ToolchainError`] if any stage fails; with the bundled
    /// Polybench sources every stage succeeds.
    pub fn enhance(&self, app: App) -> Result<EnhancedApp, ToolchainError> {
        // 1. Parse the original application.
        let source = polybench::source(app, self.dataset);
        let original = minic::parse(&source)?;
        let kernel = app.kernel_name();

        // 2. Milepost feature extraction.
        let features = extract_function(&original, &kernel)?;

        // 3. COBAYN: leave-one-out training, then prediction.
        let cobayn_flags = self.predict_flags(app, &features)?;

        // 4. LARA weaving: Multiversioning then Autotuner.
        let versions = self.version_table(&cobayn_flags);
        let static_versions: Vec<StaticVersion> = versions
            .iter()
            .map(|(co, bp)| StaticVersion::new(co.pragma_flags(), bp.as_str()))
            .collect();
        let mut weaver = Weaver::new(original.clone());
        let multiversioned = multiversioning(&mut weaver, &kernel, &static_versions)?;
        autotuner(&mut weaver, &multiversioned, "main")?;
        let (weaved, metrics) = weaver.finish();

        // 5. DSE profiling on the platform.
        let profile = app.profile(self.dataset);
        let space = dse::DesignSpace::socrates(cobayn_flags.clone(), &self.topology());
        let mut machine = Machine::xeon_e5_2630_v3(self.seed ^ fnv(app.name()));
        let knowledge = dse::profile(
            &mut machine,
            &profile,
            &space.full_factorial(),
            self.dse_repetitions,
        );

        Ok(EnhancedApp {
            app,
            original,
            weaved,
            metrics,
            multiversioned,
            versions,
            features,
            cobayn_flags,
            knowledge,
            profile,
        })
    }

    /// The target platform topology.
    pub fn topology(&self) -> Topology {
        Topology::xeon_e5_2630_v3()
    }

    /// The static version table: (4 standard levels + predictions) × BP,
    /// in a deterministic order (CO-major, close before spread).
    pub fn version_table(
        &self,
        cobayn_flags: &[CompilerOptions],
    ) -> Vec<(CompilerOptions, BindingPolicy)> {
        let mut cos: Vec<CompilerOptions> = OptLevel::ALL
            .into_iter()
            .map(CompilerOptions::level)
            .collect();
        for co in cobayn_flags {
            if !cos.contains(co) {
                cos.push(co.clone());
            }
        }
        let mut table = Vec::with_capacity(cos.len() * 2);
        for co in cos {
            for bp in BindingPolicy::ALL {
                table.push((co.clone(), bp));
            }
        }
        table
    }

    /// COBAYN leave-one-out: trains on every app except `target` and
    /// predicts the most promising flag combinations for it.
    fn predict_flags(
        &self,
        target: App,
        target_features: &Features,
    ) -> Result<Vec<CompilerOptions>, ToolchainError> {
        let machine = Machine::xeon_e5_2630_v3(self.seed).noiseless();
        let mut corpus = Vec::new();
        for other in App::ALL {
            if other == target {
                continue;
            }
            let src = polybench::source(other, self.dataset);
            let tu = minic::parse(&src)?;
            let features = extract_function(&tu, &other.kernel_name())?;
            let profile = other.profile(self.dataset);
            // Iterative compilation: single-thread close binding isolates
            // the compiler effect, exactly like COBAYN's setup.
            let good = iterative_compilation(
                |co| {
                    let cfg = KnobConfig::new(co.clone(), 1, BindingPolicy::Close);
                    1.0 / machine.expected(&profile, &cfg).time_s
                },
                self.training_top_fraction,
            );
            corpus.push(TrainingApp { features, good });
        }
        let model = Cobayn::train(&corpus, CobaynConfig::default())?;
        Ok(model.predict(target_features, self.cobayn_predictions))
    }
}

fn fnv(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_toolchain() -> Toolchain {
        Toolchain {
            dataset: Dataset::Medium,
            dse_repetitions: 1,
            ..Toolchain::default()
        }
    }

    #[test]
    fn enhance_2mm_produces_complete_artifacts() {
        let e = quick_toolchain().enhance(App::TwoMm).unwrap();
        // 16 static versions: 8 CO × 2 BP (4 std + 4 predicted, if all
        // distinct; at minimum 4 std × 2).
        assert!(
            e.versions.len() >= 8 && e.versions.len() <= 16,
            "{}",
            e.versions.len()
        );
        assert_eq!(e.multiversioned.version_functions.len(), e.versions.len());
        assert_eq!(e.cobayn_flags.len(), 4);
        // Knowledge covers the full-factorial space.
        assert_eq!(e.knowledge.len(), e.versions.len() / 2 * 32 * 2);
    }

    #[test]
    fn weaved_program_is_valid_and_instrumented() {
        let e = quick_toolchain().enhance(App::TwoMm).unwrap();
        let printed = minic::print(&e.weaved);
        let reparsed = minic::parse(&printed).expect("weaved program parses");
        assert_eq!(reparsed, e.weaved);
        assert!(printed.contains("margot_init()"));
        assert!(printed.contains("margot_update(&__socrates_version, &__socrates_num_threads)"));
        assert!(printed.contains("#pragma GCC optimize"));
        assert!(printed.contains("num_threads(__socrates_num_threads)"));
    }

    #[test]
    fn table_one_shape_for_2mm() {
        // Paper: W-LOC is about an order of magnitude above O-LOC.
        let e = quick_toolchain().enhance(App::TwoMm).unwrap();
        let m = e.metrics;
        assert!(m.weaved_loc > m.original_loc * 5, "{m}");
        assert!(m.attributes > 100, "{m}");
        assert!(m.actions > 50, "{m}");
        assert!(m.bloat() > 1.0, "{m}");
    }

    #[test]
    fn every_knowledge_config_has_a_version() {
        let e = quick_toolchain().enhance(App::Mvt).unwrap();
        for op in e.knowledge.points() {
            let v = e.version_of(&op.config);
            assert!(v < e.versions.len());
        }
    }

    #[test]
    fn version_table_is_deterministic_and_unique() {
        let t = quick_toolchain();
        let flags = vec![CompilerOptions::level(OptLevel::O2)]; // duplicate of std
        let table = t.version_table(&flags);
        assert_eq!(table.len(), 8); // dedup: 4 std × 2 BP
        let set: std::collections::HashSet<_> = table.iter().collect();
        assert_eq!(set.len(), table.len());
    }

    #[test]
    fn enhancement_is_reproducible() {
        let t = quick_toolchain();
        let a = t.enhance(App::Atax).unwrap();
        let b = t.enhance(App::Atax).unwrap();
        assert_eq!(a.cobayn_flags, b.cobayn_flags);
        assert_eq!(a.knowledge, b.knowledge);
        assert_eq!(a.weaved, b.weaved);
    }

    #[test]
    fn different_apps_get_different_predictions() {
        // The whole premise: flag preferences are app-dependent.
        let t = quick_toolchain();
        let gemm = t.enhance(App::TwoMm).unwrap();
        let branchy = t.enhance(App::Nussinov).unwrap();
        assert_ne!(gemm.cobayn_flags, branchy.cobayn_flags);
    }
}
