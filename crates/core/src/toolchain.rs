//! The SOCRATES toolchain (paper Fig. 1): from the original application
//! source to the adaptive application, with zero manual intervention.
//!
//! Pipeline stages, in order (see [`crate::pipeline`] for the
//! composable stage API this is a shim over):
//!
//! 1. parse the original C source (`minic`);
//! 2. extract static kernel features (`milepost` ≙ GCC-Milepost);
//! 3. train COBAYN on the *other* applications (leave-one-out over the
//!    shared training corpus) and predict the most promising flags;
//! 4. weave the `Multiversioning` strategy (clones per CO × BP, OpenMP
//!    pragmas, dispatch wrapper) and the `Autotuner` strategy (mARGOt
//!    glue) with `lara`;
//! 5. profile the full-factorial design space on the (simulated)
//!    platform to build the mARGOt application knowledge (`dse`).
//!
//! [`Toolchain::enhance`] runs the pipeline for one application;
//! [`Toolchain::enhance_all`] fans a whole benchmark suite out over
//! rayon with one shared [`ArtifactStore`], so the COBAYN corpus is
//! built once instead of once per target — bit-identical to the serial
//! per-app path at any thread count.

use crate::artifact::ArtifactStore;
use crate::engine::ExecutionEngine;
use crate::error::SocratesError;
use crate::pipeline::{socrates_pipeline, StageContext};
use crate::platform::Platform;
use lara::{Multiversioned, WeavingMetrics};
use margot::Knowledge;
use milepost::Features;
use minic::TranslationUnit;
use platform_sim::{
    BindingPolicy, CompilerOptions, KnobConfig, OptLevel, Topology, WorkloadProfile,
};
use polybench::{App, Dataset};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Toolchain configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Toolchain {
    /// Dataset size used for profiling and at runtime.
    pub dataset: Dataset,
    /// RNG seed for the profiling machine.
    pub seed: u64,
    /// Noisy profiling repetitions per configuration during the DSE.
    pub dse_repetitions: u32,
    /// Number of COBAYN-predicted flag combinations (the paper uses 4).
    pub cobayn_predictions: usize,
    /// Fraction of the flag space kept as "good" during the iterative
    /// compilation that generates COBAYN training data.
    pub training_top_fraction: f64,
    /// The deployment target the DSE profiles against (topology plus
    /// timing/power/noise models and the seed-to-machine factory).
    pub platform: Platform,
    /// Which engine executes the weaved kernels functionally during
    /// profiling (config-specialized bytecode by default; the AST
    /// interpreter is the bit-identical reference). Part of the
    /// fingerprint, so the engines never share artifact cache entries.
    pub engine: ExecutionEngine,
}

impl Default for Toolchain {
    fn default() -> Self {
        Toolchain {
            dataset: Dataset::Large,
            seed: 42,
            dse_repetitions: 3,
            cobayn_predictions: 4,
            training_top_fraction: 0.15,
            platform: Platform::xeon_e5_2630_v3(),
            engine: ExecutionEngine::default(),
        }
    }
}

/// The product of the toolchain: everything the adaptive binary embeds.
#[derive(Debug, Clone, PartialEq)]
pub struct EnhancedApp {
    /// Which benchmark this is.
    pub app: App,
    /// The dataset the app was profiled on (functional kernel specs are
    /// derived from its dimensions, clamped to
    /// [`crate::FUNCTIONAL_DIM_CAP`]).
    pub dataset: Dataset,
    /// The original (pure functional) program.
    pub original: TranslationUnit,
    /// The weaved, adaptive program.
    pub weaved: TranslationUnit,
    /// Table I metrics for this application.
    pub metrics: WeavingMetrics,
    /// Multiversioning artefacts (clone names, wrapper, control vars).
    pub multiversioned: Multiversioned,
    /// Version table: index = `__socrates_version` value.
    pub versions: Vec<(CompilerOptions, BindingPolicy)>,
    /// The kernel's static feature vector.
    pub features: Features,
    /// The COBAYN-predicted flag combinations (CF1..CF4).
    pub cobayn_flags: Vec<CompilerOptions>,
    /// The design-time knowledge from the DSE.
    pub knowledge: Knowledge<KnobConfig>,
    /// The kernel workload profile driving the platform model.
    pub profile: WorkloadProfile,
    /// The platform this app was profiled for (the runtime boots its
    /// machine from this).
    pub platform: Platform,
}

impl EnhancedApp {
    /// Maps a knob configuration to its clone version index.
    ///
    /// # Errors
    ///
    /// Returns a dispatch-stage [`SocratesError`] if the configuration's
    /// (CO, BP) pair is not in the version table — the knowledge and the
    /// table are built from the same space, so this indicates toolchain
    /// corruption.
    pub fn try_version_of(&self, config: &KnobConfig) -> Result<usize, SocratesError> {
        self.versions
            .iter()
            .position(|(co, bp)| *co == config.co && *bp == config.bp)
            .ok_or_else(|| SocratesError::unknown_version(self.app, config))
    }

    /// Maps a knob configuration to its clone version index.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has no compiled version; prefer
    /// [`EnhancedApp::try_version_of`] where a recoverable error is
    /// wanted.
    pub fn version_of(&self, config: &KnobConfig) -> usize {
        self.try_version_of(config)
            .unwrap_or_else(|e| panic!("{e}"))
    }
}

impl Toolchain {
    /// Runs the full pipeline on one benchmark with a private, throwaway
    /// artifact store.
    ///
    /// # Errors
    ///
    /// Returns a stage-tagged [`SocratesError`] if any stage fails; with
    /// the bundled Polybench sources every stage succeeds.
    pub fn enhance(&self, app: App) -> Result<EnhancedApp, SocratesError> {
        self.enhance_with_store(app, &ArtifactStore::new())
    }

    /// Runs the full pipeline on one benchmark against a caller-owned
    /// [`ArtifactStore`] — repeated calls (and calls for sibling apps)
    /// reuse every cached artifact.
    ///
    /// # Errors
    ///
    /// Returns a stage-tagged [`SocratesError`] if any stage fails.
    pub fn enhance_with_store(
        &self,
        app: App,
        store: &ArtifactStore,
    ) -> Result<EnhancedApp, SocratesError> {
        let ctx = StageContext::new(self, store, app);
        socrates_pipeline().run(&ctx, ())
    }

    /// Enhances a batch of applications with one shared artifact store,
    /// fanning targets out over rayon.
    ///
    /// The COBAYN training corpus (parse + features + iterative
    /// compilation per application) is built **once** and shared by
    /// every leave-one-out model, so a 12-app sweep is O(n) corpus
    /// work instead of the O(n²) of calling [`Toolchain::enhance`] in a
    /// loop. Per-app DSE machine seeds are derived deterministically
    /// from the app name, so the result is **bit-identical** to the
    /// serial per-app path at any thread count, in input order.
    ///
    /// # Errors
    ///
    /// Returns the first (in `apps` order) failing target's error.
    pub fn enhance_all(&self, apps: &[App]) -> Result<Vec<EnhancedApp>, SocratesError> {
        self.enhance_all_with_store(apps, &ArtifactStore::new())
    }

    /// [`Toolchain::enhance_all`] against a caller-owned store (e.g. one
    /// with a persistence directory).
    ///
    /// # Errors
    ///
    /// Returns the first (in `apps` order) failing target's error.
    pub fn enhance_all_with_store(
        &self,
        apps: &[App],
        store: &ArtifactStore,
    ) -> Result<Vec<EnhancedApp>, SocratesError> {
        if apps.is_empty() {
            return Ok(Vec::new());
        }
        // Deduplicate the targets so repeated entries neither race to
        // build the same per-target artifacts nor run them twice; the
        // output is re-expanded to the caller's order below.
        let mut unique: Vec<App> = Vec::new();
        for &app in apps {
            if !unique.contains(&app) {
                unique.push(app);
            }
        }
        // Warm the shared artifacts first (race-free, in parallel):
        // every leave-one-out model draws on the same corpus entries.
        // The union of the targets' sibling sets is App::ALL as soon as
        // two distinct targets are batched; a single-target batch only
        // needs the target's siblings.
        let universe: Vec<App> = if unique.len() > 1 {
            App::ALL.to_vec()
        } else {
            App::ALL
                .iter()
                .copied()
                .filter(|&a| a != unique[0])
                .collect()
        };
        store.warm_corpus(self, &universe)?;
        let enhanced = unique
            .par_iter()
            .map(|&app| self.enhance_with_store(app, store))
            .collect::<Vec<Result<EnhancedApp, SocratesError>>>()
            .into_iter()
            .collect::<Result<Vec<EnhancedApp>, SocratesError>>()?;
        if unique.len() == apps.len() {
            // Duplicate-free (the common case): move, don't clone.
            return Ok(enhanced);
        }
        Ok(apps
            .iter()
            .map(|a| {
                let i = unique
                    .iter()
                    .position(|u| u == a)
                    .expect("deduped from apps");
                enhanced[i].clone()
            })
            .collect())
    }

    /// The target platform topology (shorthand for
    /// `self.platform.topology`).
    pub fn topology(&self) -> Topology {
        self.platform.topology
    }

    /// A stable fingerprint over the whole configuration (dataset,
    /// seeds, hyper-parameters, platform); part of every artifact cache
    /// key.
    ///
    /// # Panics
    ///
    /// Panics if the configuration cannot be serialised (never happens:
    /// every field is plain data).
    pub fn fingerprint(&self) -> u64 {
        let json = serde_json::to_string(self).expect("toolchain config serialises");
        fnv(&json)
    }

    /// The static version table: (4 standard levels + predictions) × BP,
    /// in a deterministic order (CO-major, close before spread).
    pub fn version_table(
        &self,
        cobayn_flags: &[CompilerOptions],
    ) -> Vec<(CompilerOptions, BindingPolicy)> {
        let mut cos: Vec<CompilerOptions> = OptLevel::ALL
            .into_iter()
            .map(CompilerOptions::level)
            .collect();
        for co in cobayn_flags {
            if !cos.contains(co) {
                cos.push(co.clone());
            }
        }
        let mut table = Vec::with_capacity(cos.len() * 2);
        for co in cos {
            for bp in BindingPolicy::ALL {
                table.push((co.clone(), bp));
            }
        }
        table
    }
}

/// FNV-1a hash, used for per-app machine-seed derivation and config
/// fingerprints.
pub(crate) fn fnv(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_toolchain() -> Toolchain {
        Toolchain {
            dataset: Dataset::Medium,
            dse_repetitions: 1,
            ..Toolchain::default()
        }
    }

    #[test]
    fn enhance_2mm_produces_complete_artifacts() {
        let e = quick_toolchain().enhance(App::TwoMm).unwrap();
        // 16 static versions: 8 CO × 2 BP (4 std + 4 predicted, if all
        // distinct; at minimum 4 std × 2).
        assert!(
            e.versions.len() >= 8 && e.versions.len() <= 16,
            "{}",
            e.versions.len()
        );
        assert_eq!(e.multiversioned.version_functions.len(), e.versions.len());
        assert_eq!(e.cobayn_flags.len(), 4);
        // Knowledge covers the full-factorial space.
        assert_eq!(e.knowledge.len(), e.versions.len() / 2 * 32 * 2);
    }

    #[test]
    fn weaved_program_is_valid_and_instrumented() {
        let e = quick_toolchain().enhance(App::TwoMm).unwrap();
        let printed = minic::print(&e.weaved);
        let reparsed = minic::parse(&printed).expect("weaved program parses");
        assert_eq!(reparsed, e.weaved);
        assert!(printed.contains("margot_init()"));
        assert!(printed.contains("margot_update(&__socrates_version, &__socrates_num_threads)"));
        assert!(printed.contains("#pragma GCC optimize"));
        assert!(printed.contains("num_threads(__socrates_num_threads)"));
    }

    #[test]
    fn table_one_shape_for_2mm() {
        // Paper: W-LOC is about an order of magnitude above O-LOC.
        let e = quick_toolchain().enhance(App::TwoMm).unwrap();
        let m = e.metrics;
        assert!(m.weaved_loc > m.original_loc * 5, "{m}");
        assert!(m.attributes > 100, "{m}");
        assert!(m.actions > 50, "{m}");
        assert!(m.bloat() > 1.0, "{m}");
    }

    #[test]
    fn every_knowledge_config_has_a_version() {
        let e = quick_toolchain().enhance(App::Mvt).unwrap();
        for op in e.knowledge.points() {
            let v = e.version_of(&op.config);
            assert!(v < e.versions.len());
        }
    }

    #[test]
    fn try_version_of_reports_unknown_configs() {
        let e = quick_toolchain().enhance(App::Mvt).unwrap();
        // A CO that is certainly not in the table: O1 plus every flag.
        let alien = CompilerOptions::with_flags(OptLevel::O1, platform_sim::CompilerFlag::ALL);
        let cfg = KnobConfig::new(alien, 1, BindingPolicy::Close);
        let err = e.try_version_of(&cfg).unwrap_err();
        assert_eq!(err.stage(), crate::error::StageId::Dispatch);
        assert!(err.to_string().contains("no compiled version"));
    }

    #[test]
    fn version_table_is_deterministic_and_unique() {
        let t = quick_toolchain();
        let flags = vec![CompilerOptions::level(OptLevel::O2)]; // duplicate of std
        let table = t.version_table(&flags);
        assert_eq!(table.len(), 8); // dedup: 4 std × 2 BP
        let set: std::collections::HashSet<_> = table.iter().collect();
        assert_eq!(set.len(), table.len());
    }

    #[test]
    fn enhancement_is_reproducible() {
        let t = quick_toolchain();
        let a = t.enhance(App::Atax).unwrap();
        let b = t.enhance(App::Atax).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_apps_get_different_predictions() {
        // The whole premise: flag preferences are app-dependent.
        let t = quick_toolchain();
        let store = ArtifactStore::new();
        let gemm = t.enhance_with_store(App::TwoMm, &store).unwrap();
        let branchy = t.enhance_with_store(App::Nussinov, &store).unwrap();
        assert_ne!(gemm.cobayn_flags, branchy.cobayn_flags);
    }

    #[test]
    fn fingerprint_tracks_config_changes() {
        let base = quick_toolchain();
        assert_eq!(base.fingerprint(), quick_toolchain().fingerprint());
        let other_seed = Toolchain {
            seed: base.seed + 1,
            ..base.clone()
        };
        assert_ne!(base.fingerprint(), other_seed.fingerprint());
        let other_engine = Toolchain {
            engine: ExecutionEngine::Ast,
            ..base.clone()
        };
        assert_ne!(
            base.fingerprint(),
            other_engine.fingerprint(),
            "engine choice must partition the artifact cache"
        );
        let other_platform = Toolchain {
            platform: Platform::with_topology(
                "mini",
                Topology {
                    sockets: 1,
                    cores_per_socket: 2,
                    smt: 1,
                },
            ),
            ..base.clone()
        };
        assert_ne!(base.fingerprint(), other_platform.fingerprint());
    }
}
