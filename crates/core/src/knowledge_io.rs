//! Knowledge persistence — the analogue of mARGOt's operating-point list
//! files: the DSE writes the application knowledge once at design time;
//! the deployed adaptive binary loads it at `margot_init()` time.

use margot::Knowledge;
use platform_sim::KnobConfig;
use std::fmt;
use std::path::Path;

/// Error loading or saving a knowledge file.
#[derive(Debug)]
pub enum KnowledgeIoError {
    /// Filesystem error.
    Io(std::io::Error),
    /// Malformed JSON.
    Format(serde_json::Error),
}

impl fmt::Display for KnowledgeIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KnowledgeIoError::Io(e) => write!(f, "knowledge file I/O failed: {e}"),
            KnowledgeIoError::Format(e) => write!(f, "knowledge file malformed: {e}"),
        }
    }
}

impl std::error::Error for KnowledgeIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            KnowledgeIoError::Io(e) => Some(e),
            KnowledgeIoError::Format(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for KnowledgeIoError {
    fn from(e: std::io::Error) -> Self {
        KnowledgeIoError::Io(e)
    }
}

impl From<serde_json::Error> for KnowledgeIoError {
    fn from(e: serde_json::Error) -> Self {
        KnowledgeIoError::Format(e)
    }
}

/// Serialises a knowledge base to a JSON string.
///
/// # Errors
///
/// Returns [`KnowledgeIoError::Format`] on serialisation failure (never
/// happens for well-formed knowledge).
pub fn knowledge_to_json(knowledge: &Knowledge<KnobConfig>) -> Result<String, KnowledgeIoError> {
    Ok(serde_json::to_string_pretty(knowledge)?)
}

/// Parses a knowledge base from a JSON string.
///
/// # Errors
///
/// Returns [`KnowledgeIoError::Format`] on malformed input.
pub fn knowledge_from_json(json: &str) -> Result<Knowledge<KnobConfig>, KnowledgeIoError> {
    Ok(serde_json::from_str(json)?)
}

/// Writes a knowledge base to a file.
///
/// # Errors
///
/// Returns [`KnowledgeIoError`] on I/O or serialisation failure.
pub fn save_knowledge(
    knowledge: &Knowledge<KnobConfig>,
    path: impl AsRef<Path>,
) -> Result<(), KnowledgeIoError> {
    std::fs::write(path, knowledge_to_json(knowledge)?)?;
    Ok(())
}

/// Reads a knowledge base from a file.
///
/// # Errors
///
/// Returns [`KnowledgeIoError`] on I/O failure or malformed content.
pub fn load_knowledge(path: impl AsRef<Path>) -> Result<Knowledge<KnobConfig>, KnowledgeIoError> {
    knowledge_from_json(&std::fs::read_to_string(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use margot::{Metric, MetricValues, OperatingPoint};
    use platform_sim::{BindingPolicy, CompilerFlag, CompilerOptions, OptLevel};

    fn sample_knowledge() -> Knowledge<KnobConfig> {
        let mut k = Knowledge::new();
        for (i, tn) in [1u32, 8, 32].iter().enumerate() {
            let co = if i == 0 {
                CompilerOptions::level(OptLevel::O2)
            } else {
                CompilerOptions::with_flags(OptLevel::O3, [CompilerFlag::UnrollAllLoops])
            };
            k.add(OperatingPoint::new(
                KnobConfig::new(co, *tn, BindingPolicy::Close),
                MetricValues::new()
                    .with(Metric::exec_time(), 1.0 / f64::from(*tn))
                    .with(Metric::power(), 50.0 + f64::from(*tn)),
            ));
        }
        k
    }

    #[test]
    fn json_roundtrip_preserves_knowledge() {
        let k = sample_knowledge();
        let json = knowledge_to_json(&k).unwrap();
        let back = knowledge_from_json(&json).unwrap();
        assert_eq!(k, back);
    }

    #[test]
    fn file_roundtrip() {
        let k = sample_knowledge();
        let dir = std::env::temp_dir().join("socrates-knowledge-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("kb.json");
        save_knowledge(&k, &path).unwrap();
        let back = load_knowledge(&path).unwrap();
        assert_eq!(k, back);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn malformed_json_is_a_format_error() {
        let err = knowledge_from_json("{not json").unwrap_err();
        assert!(matches!(err, KnowledgeIoError::Format(_)));
        assert!(err.to_string().contains("malformed"));
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let err = load_knowledge("/nonexistent/kb.json").unwrap_err();
        assert!(matches!(err, KnowledgeIoError::Io(_)));
    }
}
