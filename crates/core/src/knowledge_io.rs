//! Knowledge persistence — the analogue of mARGOt's operating-point list
//! files: the DSE writes the application knowledge once at design time;
//! the deployed adaptive binary loads it at `margot_init()` time.
//!
//! The [`crate::ArtifactStore`] builds on these functions to persist
//! [`crate::ProfiledKnowledge`] artifacts transparently (see
//! [`crate::ArtifactStore::with_persist_dir`]); they remain available
//! for direct use.
//!
//! All failures are persist-stage [`SocratesError`]s carrying the file
//! path or artifact context.

use crate::error::SocratesError;
use crate::transport::{Observation, WireMessage};
use margot::{Knowledge, KnowledgeDelta, MetricValues, OperatingPoint};
use platform_sim::{BindingPolicy, CompilerOptions, KnobConfig, OptLevel};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide sequence number distinguishing concurrent temp files
/// aimed at the same destination (the pid distinguishes processes).
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// A temp-file path next to `path` that no other writer — thread *or*
/// process — is using: `.{name}.{pid}.{seq}.tmp`. A deterministic name
/// would let two concurrent writers clobber each other's staged bytes
/// mid-write (and fail the loser's rename).
fn unique_tmp(path: &Path) -> Result<PathBuf, SocratesError> {
    let file_name = path
        .file_name()
        .ok_or_else(|| SocratesError::io(path, std::io::Error::other("path has no file name")))?;
    let mut tmp_name = std::ffi::OsString::from(".");
    tmp_name.push(file_name);
    tmp_name.push(format!(
        ".{}.{}.tmp",
        std::process::id(),
        TMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    Ok(path.with_file_name(tmp_name))
}

/// Writes `contents` to `path` atomically: the bytes land in a
/// writer-unique temporary file in the *same* directory, which is then
/// renamed over the destination. A crash mid-save can therefore never
/// leave a truncated or unparseable file behind — readers see either
/// the old complete file or the new complete file — and concurrent
/// writers each land a complete copy (last rename wins).
pub(crate) fn write_atomic_bytes(path: &Path, contents: &[u8]) -> Result<(), SocratesError> {
    let tmp = unique_tmp(path)?;
    std::fs::write(&tmp, contents).map_err(|e| {
        std::fs::remove_file(&tmp).ok();
        SocratesError::io(&tmp, e)
    })?;
    std::fs::rename(&tmp, path).map_err(|e| {
        std::fs::remove_file(&tmp).ok();
        SocratesError::io(path, e)
    })
}

/// [`write_atomic_bytes`] for UTF-8 contents.
pub(crate) fn write_atomic(path: &Path, contents: &str) -> Result<(), SocratesError> {
    write_atomic_bytes(path, contents.as_bytes())
}

/// Serialises a knowledge base to a JSON string.
///
/// # Errors
///
/// Returns a persist-stage [`SocratesError`] on serialisation failure
/// (never happens for well-formed knowledge).
pub fn knowledge_to_json(knowledge: &Knowledge<KnobConfig>) -> Result<String, SocratesError> {
    serde_json::to_string_pretty(knowledge).map_err(|e| SocratesError::format("knowledge", e))
}

/// Parses a knowledge base from a JSON string.
///
/// # Errors
///
/// Returns a persist-stage [`SocratesError`] on malformed input.
pub fn knowledge_from_json(json: &str) -> Result<Knowledge<KnobConfig>, SocratesError> {
    serde_json::from_str(json).map_err(|e| SocratesError::format("knowledge", e))
}

/// Writes a knowledge base to a file, atomically: the JSON is staged
/// in a temporary file in the same directory and renamed into place,
/// so a crash mid-save cannot leave a truncated knowledge file.
///
/// # Errors
///
/// Returns a persist-stage [`SocratesError`] on I/O or serialisation
/// failure.
pub fn save_knowledge(
    knowledge: &Knowledge<KnobConfig>,
    path: impl AsRef<Path>,
) -> Result<(), SocratesError> {
    write_atomic(path.as_ref(), &knowledge_to_json(knowledge)?)
}

/// Reads a knowledge base from a file.
///
/// # Errors
///
/// Returns a persist-stage [`SocratesError`] on I/O failure or
/// malformed content.
pub fn load_knowledge(path: impl AsRef<Path>) -> Result<Knowledge<KnobConfig>, SocratesError> {
    let path = path.as_ref();
    let json = std::fs::read_to_string(path).map_err(|e| SocratesError::io(path, e))?;
    knowledge_from_json(&json)
}

/// Serialises a knowledge delta to a JSON string — the wire form the
/// distributed runtime ships between broker and nodes. The schema is
/// pinned by `tests/golden/knowledge_delta.json`.
///
/// # Errors
///
/// Returns a persist-stage [`SocratesError`] on serialisation failure
/// (never happens for well-formed deltas).
pub fn delta_to_json(delta: &KnowledgeDelta<KnobConfig>) -> Result<String, SocratesError> {
    serde_json::to_string_pretty(delta).map_err(|e| SocratesError::format("knowledge delta", e))
}

/// Parses a knowledge delta from a JSON string.
///
/// # Errors
///
/// Returns a persist-stage [`SocratesError`] on malformed input.
pub fn delta_from_json(json: &str) -> Result<KnowledgeDelta<KnobConfig>, SocratesError> {
    serde_json::from_str(json).map_err(|e| SocratesError::format("knowledge delta", e))
}

/// Serialises a wire message of the distributed knowledge exchange to
/// a JSON string. The schema is pinned by
/// `tests/golden/wire_messages.json`.
///
/// # Errors
///
/// Returns a persist-stage [`SocratesError`] on serialisation failure
/// (never happens for well-formed messages).
pub fn wire_to_json(msg: &WireMessage) -> Result<String, SocratesError> {
    serde_json::to_string_pretty(msg).map_err(|e| SocratesError::format("wire message", e))
}

/// Parses a wire message from a JSON string.
///
/// # Errors
///
/// Returns a persist-stage [`SocratesError`] on malformed input.
pub fn wire_from_json(json: &str) -> Result<WireMessage, SocratesError> {
    serde_json::from_str(json).map_err(|e| SocratesError::format("wire message", e))
}

// ---------------------------------------------------------------------------
// Binary wire codec
// ---------------------------------------------------------------------------
//
// The runtime wire format of the distributed knowledge exchange. JSON
// stays as the *pinned compatibility layer* (the golden files and the
// persistence paths above); everything that travels through
// [`crate::transport::SimNet`] is encoded with this length-prefixed binary codec.
//
// Format, all integers little-endian:
//
// * frame           = magic `b"SOC\x01"` ++ payload
// * u8/u32/u64      = fixed-width LE
// * usize           = u64 LE
// * f64             = raw IEEE-754 bits LE (`to_le_bytes`); NaN
//                     round-trips **bit-exactly**, unlike JSON
// * bool            = u8 (0 / 1)
// * str             = u32 byte length ++ UTF-8 bytes
// * seq<T>          = u32 element count ++ elements
// * KnobConfig      = opt-level index into [`OptLevel::ALL`] (u8)
//                     ++ flag bitmask (u8, see
//                     [`CompilerOptions::flag_mask`]) ++ tn (u32)
//                     ++ binding index into [`BindingPolicy::ALL`] (u8)
// * MetricValues    = seq<(str, f64)> in metric order
// * OperatingPoint  = KnobConfig ++ MetricValues
// * Knowledge       = seq<OperatingPoint>
// * KnowledgeDelta  = from_epoch (u64) ++ to_epoch (u64)
//                     ++ seq<(usize, OperatingPoint)>
// * Observation     = origin (u32) ++ seq (u64) ++ round (u64)
//                     ++ KnobConfig ++ MetricValues
// * WireMessage     = variant tag (u8, declaration order: Join = 0 …
//                     WelcomeLog = 9) ++ variant fields in order
//
// Decoders are strict: unknown tags, out-of-range indices, truncated
// input and trailing bytes are all transport-stage errors.

/// Leading magic of every binary frame: `"SOC"` plus format version 1.
pub const WIRE_MAGIC: [u8; 4] = [b'S', b'O', b'C', 0x01];

pub(crate) fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_usize(out: &mut Vec<u8>, v: usize) {
    put_u64(out, v as u64);
}

pub(crate) fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(u8::from(v));
}

pub(crate) fn put_len(out: &mut Vec<u8>, len: usize) {
    put_u32(
        out,
        u32::try_from(len).expect("sequence length exceeds u32 on the wire"),
    );
}

pub(crate) fn put_str(out: &mut Vec<u8>, s: &str) {
    put_len(out, s.len());
    out.extend_from_slice(s.as_bytes());
}

pub(crate) fn put_config(out: &mut Vec<u8>, cfg: &KnobConfig) {
    let level = OptLevel::ALL
        .iter()
        .position(|l| *l == cfg.co.level)
        .expect("OptLevel::ALL is exhaustive");
    let bp = BindingPolicy::ALL
        .iter()
        .position(|b| *b == cfg.bp)
        .expect("BindingPolicy::ALL is exhaustive");
    put_u8(out, level as u8);
    put_u8(out, cfg.co.flag_mask());
    put_u32(out, cfg.tn);
    put_u8(out, bp as u8);
}

pub(crate) fn put_metrics(out: &mut Vec<u8>, mv: &MetricValues) {
    put_len(out, mv.len());
    for (m, v) in mv.iter() {
        put_str(out, m.as_str());
        put_f64(out, v);
    }
}

pub(crate) fn put_point(out: &mut Vec<u8>, p: &OperatingPoint<KnobConfig>) {
    put_config(out, &p.config);
    put_metrics(out, &p.metrics);
}

pub(crate) fn put_knowledge(out: &mut Vec<u8>, k: &Knowledge<KnobConfig>) {
    put_len(out, k.len());
    for p in k.points() {
        put_point(out, p);
    }
}

pub(crate) fn put_delta(out: &mut Vec<u8>, d: &KnowledgeDelta<KnobConfig>) {
    put_u64(out, d.from_epoch);
    put_u64(out, d.to_epoch);
    put_len(out, d.changed.len());
    for (pos, p) in &d.changed {
        put_usize(out, *pos);
        put_point(out, p);
    }
}

pub(crate) fn put_observation(out: &mut Vec<u8>, o: &Observation) {
    put_u32(out, o.origin);
    put_u64(out, o.seq);
    put_u64(out, o.round);
    put_config(out, &o.config);
    put_metrics(out, &o.observed);
}

pub(crate) fn put_wire(out: &mut Vec<u8>, msg: &WireMessage) {
    match msg {
        WireMessage::Join { node } => {
            put_u8(out, 0);
            put_u32(out, *node);
        }
        WireMessage::Leave { node } => {
            put_u8(out, 1);
            put_u32(out, *node);
        }
        WireMessage::Ops { ops } => {
            put_u8(out, 2);
            put_len(out, ops.len());
            for op in ops {
                put_observation(out, op);
            }
        }
        WireMessage::Ack { count } => {
            put_u8(out, 3);
            put_u64(out, *count);
        }
        WireMessage::Delta { shard, delta } => {
            put_u8(out, 4);
            put_usize(out, *shard);
            put_delta(out, delta);
        }
        WireMessage::SyncRequest { versions } => {
            put_u8(out, 5);
            put_len(out, versions.len());
            for v in versions {
                put_u64(out, *v);
            }
        }
        WireMessage::SyncResponse {
            shard,
            version,
            points,
        } => {
            put_u8(out, 6);
            put_usize(out, *shard);
            put_u64(out, *version);
            put_len(out, points.len());
            for (pos, p) in points {
                put_usize(out, *pos);
                put_point(out, p);
            }
        }
        WireMessage::Summary { counts, reply } => {
            put_u8(out, 7);
            put_len(out, counts.len());
            for (node, count) in counts {
                put_u32(out, *node);
                put_u64(out, *count);
            }
            put_bool(out, *reply);
        }
        WireMessage::Welcome {
            knowledge,
            versions,
        } => {
            put_u8(out, 8);
            put_knowledge(out, knowledge);
            put_len(out, versions.len());
            for v in versions {
                put_u64(out, *v);
            }
        }
        WireMessage::WelcomeLog { ops } => {
            put_u8(out, 9);
            put_len(out, ops.len());
            for op in ops {
                put_observation(out, op);
            }
        }
    }
}

/// A strict cursor over a binary frame; every read is bounds-checked
/// and decode failures are transport-stage [`SocratesError`]s.
pub(crate) struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    pub(crate) fn err(what: &str) -> SocratesError {
        SocratesError::transport(format!("malformed binary frame: {what}"))
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], SocratesError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|end| *end <= self.buf.len())
            .ok_or_else(|| Self::err("truncated input"))?;
        let bytes = &self.buf[self.pos..end];
        self.pos = end;
        Ok(bytes)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, SocratesError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> Result<u32, SocratesError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, SocratesError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    pub(crate) fn usize(&mut self) -> Result<usize, SocratesError> {
        usize::try_from(self.u64()?).map_err(|_| Self::err("index exceeds usize"))
    }

    pub(crate) fn f64(&mut self) -> Result<f64, SocratesError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    pub(crate) fn bool(&mut self) -> Result<bool, SocratesError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(Self::err(&format!("invalid bool byte {other}"))),
        }
    }

    pub(crate) fn len(&mut self) -> Result<usize, SocratesError> {
        Ok(self.u32()? as usize)
    }

    pub(crate) fn str(&mut self) -> Result<&'a str, SocratesError> {
        let n = self.len()?;
        std::str::from_utf8(self.take(n)?).map_err(|_| Self::err("invalid UTF-8 in string"))
    }

    pub(crate) fn magic(&mut self) -> Result<(), SocratesError> {
        if self.take(4)? == WIRE_MAGIC {
            Ok(())
        } else {
            Err(Self::err("bad frame magic"))
        }
    }

    pub(crate) fn finish(&self) -> Result<(), SocratesError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(Self::err("trailing bytes after frame"))
        }
    }

    pub(crate) fn config(&mut self) -> Result<KnobConfig, SocratesError> {
        let level = *OptLevel::ALL
            .get(self.u8()? as usize)
            .ok_or_else(|| Self::err("opt-level index out of range"))?;
        let mask = self.u8()?;
        if mask >= 1 << 6 {
            return Err(Self::err("unknown compiler-flag bits in mask"));
        }
        let tn = self.u32()?;
        let bp = *BindingPolicy::ALL
            .get(self.u8()? as usize)
            .ok_or_else(|| Self::err("binding-policy index out of range"))?;
        Ok(KnobConfig::new(
            CompilerOptions::from_mask(level, mask),
            tn,
            bp,
        ))
    }

    pub(crate) fn metrics(&mut self) -> Result<MetricValues, SocratesError> {
        let n = self.len()?;
        let mut pairs = Vec::with_capacity(n);
        for _ in 0..n {
            let name = margot::Metric::custom(self.str()?);
            pairs.push((name, self.f64()?));
        }
        // Wire ingress: finiteness is *not* validated here; non-finite
        // values are dropped-and-counted when they reach a sliding
        // window, mirroring `Monitor::push`.
        Ok(MetricValues::from_unvalidated(pairs))
    }

    pub(crate) fn point(&mut self) -> Result<OperatingPoint<KnobConfig>, SocratesError> {
        let config = self.config()?;
        let metrics = self.metrics()?;
        Ok(OperatingPoint::new(config, metrics))
    }

    pub(crate) fn knowledge(&mut self) -> Result<Knowledge<KnobConfig>, SocratesError> {
        let n = self.len()?;
        let mut k = Knowledge::new();
        for _ in 0..n {
            k.add(self.point()?);
        }
        Ok(k)
    }

    pub(crate) fn delta(&mut self) -> Result<KnowledgeDelta<KnobConfig>, SocratesError> {
        let from_epoch = self.u64()?;
        let to_epoch = self.u64()?;
        let n = self.len()?;
        let mut changed = Vec::with_capacity(n);
        for _ in 0..n {
            let pos = self.usize()?;
            changed.push((pos, self.point()?));
        }
        Ok(KnowledgeDelta {
            from_epoch,
            to_epoch,
            changed,
        })
    }

    pub(crate) fn observation(&mut self) -> Result<Observation, SocratesError> {
        Ok(Observation {
            origin: self.u32()?,
            seq: self.u64()?,
            round: self.u64()?,
            config: self.config()?,
            observed: self.metrics()?,
        })
    }

    pub(crate) fn observations(&mut self) -> Result<Vec<Observation>, SocratesError> {
        let n = self.len()?;
        let mut ops = Vec::with_capacity(n);
        for _ in 0..n {
            ops.push(self.observation()?);
        }
        Ok(ops)
    }

    pub(crate) fn versions(&mut self) -> Result<Vec<u64>, SocratesError> {
        let n = self.len()?;
        let mut vs = Vec::with_capacity(n);
        for _ in 0..n {
            vs.push(self.u64()?);
        }
        Ok(vs)
    }

    pub(crate) fn wire(&mut self) -> Result<WireMessage, SocratesError> {
        match self.u8()? {
            0 => Ok(WireMessage::Join { node: self.u32()? }),
            1 => Ok(WireMessage::Leave { node: self.u32()? }),
            2 => Ok(WireMessage::Ops {
                ops: self.observations()?,
            }),
            3 => Ok(WireMessage::Ack { count: self.u64()? }),
            4 => Ok(WireMessage::Delta {
                shard: self.usize()?,
                delta: self.delta()?,
            }),
            5 => Ok(WireMessage::SyncRequest {
                versions: self.versions()?,
            }),
            6 => {
                let shard = self.usize()?;
                let version = self.u64()?;
                let n = self.len()?;
                let mut points = Vec::with_capacity(n);
                for _ in 0..n {
                    let pos = self.usize()?;
                    points.push((pos, self.point()?));
                }
                Ok(WireMessage::SyncResponse {
                    shard,
                    version,
                    points,
                })
            }
            7 => {
                let n = self.len()?;
                let mut counts = Vec::with_capacity(n);
                for _ in 0..n {
                    let node = self.u32()?;
                    counts.push((node, self.u64()?));
                }
                Ok(WireMessage::Summary {
                    counts,
                    reply: self.bool()?,
                })
            }
            8 => Ok(WireMessage::Welcome {
                knowledge: self.knowledge()?,
                versions: self.versions()?,
            }),
            9 => Ok(WireMessage::WelcomeLog {
                ops: self.observations()?,
            }),
            other => Err(Self::err(&format!("unknown wire message tag {other}"))),
        }
    }
}

/// Encodes a wire message as a binary frame (the [`crate::transport::SimNet`]
/// runtime encoding).
///
/// # Errors
///
/// Never fails for well-formed messages; the `Result` keeps the
/// signature symmetric with [`wire_from_bytes`].
pub fn wire_to_bytes(msg: &WireMessage) -> Result<Vec<u8>, SocratesError> {
    let mut out = Vec::with_capacity(64);
    out.extend_from_slice(&WIRE_MAGIC);
    put_wire(&mut out, msg);
    Ok(out)
}

/// Decodes a wire message from a binary frame.
///
/// # Errors
///
/// Returns a transport-stage [`SocratesError`] on bad magic, unknown
/// tags, out-of-range knob indices, truncated input or trailing bytes.
pub fn wire_from_bytes(bytes: &[u8]) -> Result<WireMessage, SocratesError> {
    let mut r = ByteReader::new(bytes);
    r.magic()?;
    let msg = r.wire()?;
    r.finish()?;
    Ok(msg)
}

/// Encodes a knowledge delta as a standalone binary frame.
///
/// # Errors
///
/// Never fails for well-formed deltas; the `Result` keeps the
/// signature symmetric with [`delta_from_bytes`].
pub fn delta_to_bytes(delta: &KnowledgeDelta<KnobConfig>) -> Result<Vec<u8>, SocratesError> {
    let mut out = Vec::with_capacity(64);
    out.extend_from_slice(&WIRE_MAGIC);
    put_delta(&mut out, delta);
    Ok(out)
}

/// Decodes a knowledge delta from a standalone binary frame.
///
/// # Errors
///
/// Returns a transport-stage [`SocratesError`] on malformed input.
pub fn delta_from_bytes(bytes: &[u8]) -> Result<KnowledgeDelta<KnobConfig>, SocratesError> {
    let mut r = ByteReader::new(bytes);
    r.magic()?;
    let delta = r.delta()?;
    r.finish()?;
    Ok(delta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::StageId;
    use margot::{Metric, MetricValues, OperatingPoint};
    use platform_sim::{BindingPolicy, CompilerFlag, CompilerOptions, OptLevel};

    fn sample_knowledge() -> Knowledge<KnobConfig> {
        let mut k = Knowledge::new();
        for (i, tn) in [1u32, 8, 32].iter().enumerate() {
            let co = if i == 0 {
                CompilerOptions::level(OptLevel::O2)
            } else {
                CompilerOptions::with_flags(OptLevel::O3, [CompilerFlag::UnrollAllLoops])
            };
            k.add(OperatingPoint::new(
                KnobConfig::new(co, *tn, BindingPolicy::Close),
                MetricValues::new()
                    .with(Metric::exec_time(), 1.0 / f64::from(*tn))
                    .with(Metric::power(), 50.0 + f64::from(*tn)),
            ));
        }
        k
    }

    #[test]
    fn json_roundtrip_preserves_knowledge() {
        let k = sample_knowledge();
        let json = knowledge_to_json(&k).unwrap();
        let back = knowledge_from_json(&json).unwrap();
        assert_eq!(k, back);
    }

    #[test]
    fn file_roundtrip() {
        let k = sample_knowledge();
        let dir = std::env::temp_dir().join("socrates-knowledge-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("kb.json");
        save_knowledge(&k, &path).unwrap();
        let back = load_knowledge(&path).unwrap();
        assert_eq!(k, back);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn delta_round_trips_through_json() {
        let k = sample_knowledge();
        let delta = margot::KnowledgeDelta {
            from_epoch: 3,
            to_epoch: 5,
            changed: vec![(0, k.points()[0].clone()), (2, k.points()[2].clone())],
        };
        let json = delta_to_json(&delta).unwrap();
        let back = delta_from_json(&json).unwrap();
        assert_eq!(delta, back);
    }

    #[test]
    fn wire_messages_round_trip_through_json() {
        let k = sample_knowledge();
        let msgs = vec![
            WireMessage::Join { node: 3 },
            WireMessage::Ack { count: 7 },
            WireMessage::Delta {
                shard: 2,
                delta: margot::KnowledgeDelta {
                    from_epoch: 0,
                    to_epoch: 1,
                    changed: vec![(1, k.points()[1].clone())],
                },
            },
            WireMessage::SyncRequest {
                versions: vec![0, 4, 2],
            },
            WireMessage::Welcome {
                knowledge: k.clone(),
                versions: vec![1, 1, 0],
            },
        ];
        for msg in msgs {
            let json = wire_to_json(&msg).unwrap();
            let back = wire_from_json(&json).unwrap();
            assert_eq!(msg, back);
        }
    }

    #[test]
    fn malformed_delta_is_a_format_error() {
        let err = delta_from_json("{not json").unwrap_err();
        assert!(matches!(err, SocratesError::Format { .. }));
        assert_eq!(err.stage(), StageId::Persist);
        let err = wire_from_json("42").unwrap_err();
        assert!(matches!(err, SocratesError::Format { .. }));
    }

    #[test]
    fn malformed_json_is_a_format_error() {
        let err = knowledge_from_json("{not json").unwrap_err();
        assert!(matches!(err, SocratesError::Format { .. }));
        assert_eq!(err.stage(), StageId::Persist);
        assert!(err.to_string().contains("malformed"));
    }

    #[test]
    fn missing_file_is_an_io_error_with_the_path() {
        let err = load_knowledge("/nonexistent/kb.json").unwrap_err();
        assert!(matches!(err, SocratesError::Io { .. }));
        assert_eq!(err.stage(), StageId::Persist);
        assert!(err.to_string().contains("/nonexistent/kb.json"));
    }

    #[test]
    fn save_leaves_no_temp_file_and_replaces_atomically() {
        let k = sample_knowledge();
        let dir = std::env::temp_dir().join("socrates-atomic-save-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("kb.json");
        std::fs::write(&path, "old contents").unwrap();
        save_knowledge(&k, &path).unwrap();
        assert_eq!(load_knowledge(&path).unwrap(), k);
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .filter(|n| n != "kb.json")
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_writers_to_one_path_never_clobber_each_other() {
        // Regression: with one deterministic `.name.tmp` staging name,
        // two simultaneous writers overwrite each other's staged bytes
        // and the loser's rename fails on the vanished temp file. Every
        // writer must succeed, and the surviving file must be one
        // writer's *complete* contents.
        let dir = std::env::temp_dir().join("socrates-concurrent-atomic-test");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("kb.json");
        let writers = 8;
        let rounds = 25;
        let payload = |w: usize| format!("writer-{w}-").repeat(200);
        std::thread::scope(|scope| {
            for w in 0..writers {
                let path = path.clone();
                let contents = payload(w);
                scope.spawn(move || {
                    for _ in 0..rounds {
                        write_atomic(&path, &contents).expect("concurrent atomic write");
                    }
                });
            }
        });
        let last = std::fs::read_to_string(&path).unwrap();
        assert!(
            (0..writers).any(|w| last == payload(w)),
            "surviving file must be one writer's complete contents"
        );
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .filter(|n| n != "kb.json")
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    fn sample_wire_messages() -> Vec<WireMessage> {
        let k = sample_knowledge();
        let obs = Observation {
            origin: 5,
            seq: 11,
            round: 4,
            config: k.points()[1].config.clone(),
            observed: MetricValues::from_execution(0.25, 80.0),
        };
        vec![
            WireMessage::Join { node: 3 },
            WireMessage::Leave { node: 9 },
            WireMessage::Ops {
                ops: vec![obs.clone()],
            },
            WireMessage::Ack { count: 7 },
            WireMessage::Delta {
                shard: 2,
                delta: margot::KnowledgeDelta {
                    from_epoch: 0,
                    to_epoch: 1,
                    changed: vec![(1, k.points()[1].clone())],
                },
            },
            WireMessage::SyncRequest {
                versions: vec![0, 4, 2],
            },
            WireMessage::SyncResponse {
                shard: 1,
                version: 6,
                points: vec![(0, k.points()[0].clone()), (2, k.points()[2].clone())],
            },
            WireMessage::Summary {
                counts: vec![(0, 3), (2, 1)],
                reply: true,
            },
            WireMessage::Welcome {
                knowledge: k,
                versions: vec![1, 1, 0],
            },
            WireMessage::WelcomeLog { ops: vec![obs] },
        ]
    }

    #[test]
    fn every_wire_variant_round_trips_through_the_binary_codec() {
        for msg in sample_wire_messages() {
            let bytes = wire_to_bytes(&msg).unwrap();
            assert_eq!(bytes[..4], WIRE_MAGIC);
            let back = wire_from_bytes(&bytes).unwrap();
            assert_eq!(back, msg);
            // Re-encoding is byte-stable (the canonical-form check that
            // also covers NaN payloads, where `==` on messages can't).
            assert_eq!(wire_to_bytes(&back).unwrap(), bytes);
        }
    }

    #[test]
    fn delta_round_trips_through_the_binary_codec() {
        let k = sample_knowledge();
        let delta = margot::KnowledgeDelta {
            from_epoch: 3,
            to_epoch: 5,
            changed: vec![(0, k.points()[0].clone()), (2, k.points()[2].clone())],
        };
        let bytes = delta_to_bytes(&delta).unwrap();
        let back = delta_from_bytes(&bytes).unwrap();
        assert_eq!(back, delta);
    }

    #[test]
    fn non_finite_floats_round_trip_bit_exactly() {
        let msg = WireMessage::Ops {
            ops: vec![Observation {
                origin: 1,
                seq: 0,
                round: 0,
                config: sample_knowledge().points()[0].config.clone(),
                observed: MetricValues::from_unvalidated([
                    (Metric::power(), f64::NAN),
                    (Metric::exec_time(), f64::NEG_INFINITY),
                ]),
            }],
        };
        let bytes = wire_to_bytes(&msg).unwrap();
        let back = wire_from_bytes(&bytes).unwrap();
        let WireMessage::Ops { ops } = back else {
            panic!("wrong variant");
        };
        let power = ops[0].observed.get(&Metric::power()).unwrap();
        assert_eq!(power.to_bits(), f64::NAN.to_bits(), "NaN bits preserved");
        assert_eq!(
            ops[0].observed.get(&Metric::exec_time()),
            Some(f64::NEG_INFINITY)
        );
    }

    #[test]
    fn malformed_binary_frames_are_transport_errors() {
        // Bad magic.
        let err = wire_from_bytes(b"NOPE").unwrap_err();
        assert!(matches!(err, SocratesError::Transport { .. }));
        assert_eq!(err.stage(), StageId::Transport);
        // Unknown variant tag.
        let mut bytes = WIRE_MAGIC.to_vec();
        bytes.push(0xFF);
        assert!(wire_from_bytes(&bytes).is_err());
        // Truncated payload.
        let good = wire_to_bytes(&WireMessage::Ack { count: 7 }).unwrap();
        assert!(wire_from_bytes(&good[..good.len() - 1]).is_err());
        // Trailing garbage.
        let mut long = good.clone();
        long.push(0);
        assert!(wire_from_bytes(&long).is_err());
        // Out-of-range knob index inside a delta frame.
        let k = sample_knowledge();
        let delta = margot::KnowledgeDelta {
            from_epoch: 0,
            to_epoch: 1,
            changed: vec![(0, k.points()[0].clone())],
        };
        let mut bytes = delta_to_bytes(&delta).unwrap();
        // from_epoch (8) + to_epoch (8) + count (4) + pos (8) after the
        // 4-byte magic puts the opt-level index byte at offset 32.
        bytes[32] = 17;
        assert!(delta_from_bytes(&bytes).is_err());
    }
}
