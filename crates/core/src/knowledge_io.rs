//! Knowledge persistence — the analogue of mARGOt's operating-point list
//! files: the DSE writes the application knowledge once at design time;
//! the deployed adaptive binary loads it at `margot_init()` time.
//!
//! The [`crate::ArtifactStore`] builds on these functions to persist
//! [`crate::ProfiledKnowledge`] artifacts transparently (see
//! [`crate::ArtifactStore::with_persist_dir`]); they remain available
//! for direct use.
//!
//! All failures are persist-stage [`SocratesError`]s carrying the file
//! path or artifact context.

use crate::error::SocratesError;
use crate::transport::WireMessage;
use margot::{Knowledge, KnowledgeDelta};
use platform_sim::KnobConfig;
use std::path::Path;

/// Serialises a knowledge base to a JSON string.
///
/// # Errors
///
/// Returns a persist-stage [`SocratesError`] on serialisation failure
/// (never happens for well-formed knowledge).
pub fn knowledge_to_json(knowledge: &Knowledge<KnobConfig>) -> Result<String, SocratesError> {
    serde_json::to_string_pretty(knowledge).map_err(|e| SocratesError::format("knowledge", e))
}

/// Parses a knowledge base from a JSON string.
///
/// # Errors
///
/// Returns a persist-stage [`SocratesError`] on malformed input.
pub fn knowledge_from_json(json: &str) -> Result<Knowledge<KnobConfig>, SocratesError> {
    serde_json::from_str(json).map_err(|e| SocratesError::format("knowledge", e))
}

/// Writes a knowledge base to a file.
///
/// # Errors
///
/// Returns a persist-stage [`SocratesError`] on I/O or serialisation
/// failure.
pub fn save_knowledge(
    knowledge: &Knowledge<KnobConfig>,
    path: impl AsRef<Path>,
) -> Result<(), SocratesError> {
    let path = path.as_ref();
    std::fs::write(path, knowledge_to_json(knowledge)?).map_err(|e| SocratesError::io(path, e))
}

/// Reads a knowledge base from a file.
///
/// # Errors
///
/// Returns a persist-stage [`SocratesError`] on I/O failure or
/// malformed content.
pub fn load_knowledge(path: impl AsRef<Path>) -> Result<Knowledge<KnobConfig>, SocratesError> {
    let path = path.as_ref();
    let json = std::fs::read_to_string(path).map_err(|e| SocratesError::io(path, e))?;
    knowledge_from_json(&json)
}

/// Serialises a knowledge delta to a JSON string — the wire form the
/// distributed runtime ships between broker and nodes. The schema is
/// pinned by `tests/golden/knowledge_delta.json`.
///
/// # Errors
///
/// Returns a persist-stage [`SocratesError`] on serialisation failure
/// (never happens for well-formed deltas).
pub fn delta_to_json(delta: &KnowledgeDelta<KnobConfig>) -> Result<String, SocratesError> {
    serde_json::to_string_pretty(delta).map_err(|e| SocratesError::format("knowledge delta", e))
}

/// Parses a knowledge delta from a JSON string.
///
/// # Errors
///
/// Returns a persist-stage [`SocratesError`] on malformed input.
pub fn delta_from_json(json: &str) -> Result<KnowledgeDelta<KnobConfig>, SocratesError> {
    serde_json::from_str(json).map_err(|e| SocratesError::format("knowledge delta", e))
}

/// Serialises a wire message of the distributed knowledge exchange to
/// a JSON string. The schema is pinned by
/// `tests/golden/wire_messages.json`.
///
/// # Errors
///
/// Returns a persist-stage [`SocratesError`] on serialisation failure
/// (never happens for well-formed messages).
pub fn wire_to_json(msg: &WireMessage) -> Result<String, SocratesError> {
    serde_json::to_string_pretty(msg).map_err(|e| SocratesError::format("wire message", e))
}

/// Parses a wire message from a JSON string.
///
/// # Errors
///
/// Returns a persist-stage [`SocratesError`] on malformed input.
pub fn wire_from_json(json: &str) -> Result<WireMessage, SocratesError> {
    serde_json::from_str(json).map_err(|e| SocratesError::format("wire message", e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::StageId;
    use margot::{Metric, MetricValues, OperatingPoint};
    use platform_sim::{BindingPolicy, CompilerFlag, CompilerOptions, OptLevel};

    fn sample_knowledge() -> Knowledge<KnobConfig> {
        let mut k = Knowledge::new();
        for (i, tn) in [1u32, 8, 32].iter().enumerate() {
            let co = if i == 0 {
                CompilerOptions::level(OptLevel::O2)
            } else {
                CompilerOptions::with_flags(OptLevel::O3, [CompilerFlag::UnrollAllLoops])
            };
            k.add(OperatingPoint::new(
                KnobConfig::new(co, *tn, BindingPolicy::Close),
                MetricValues::new()
                    .with(Metric::exec_time(), 1.0 / f64::from(*tn))
                    .with(Metric::power(), 50.0 + f64::from(*tn)),
            ));
        }
        k
    }

    #[test]
    fn json_roundtrip_preserves_knowledge() {
        let k = sample_knowledge();
        let json = knowledge_to_json(&k).unwrap();
        let back = knowledge_from_json(&json).unwrap();
        assert_eq!(k, back);
    }

    #[test]
    fn file_roundtrip() {
        let k = sample_knowledge();
        let dir = std::env::temp_dir().join("socrates-knowledge-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("kb.json");
        save_knowledge(&k, &path).unwrap();
        let back = load_knowledge(&path).unwrap();
        assert_eq!(k, back);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn delta_round_trips_through_json() {
        let k = sample_knowledge();
        let delta = margot::KnowledgeDelta {
            from_epoch: 3,
            to_epoch: 5,
            changed: vec![(0, k.points()[0].clone()), (2, k.points()[2].clone())],
        };
        let json = delta_to_json(&delta).unwrap();
        let back = delta_from_json(&json).unwrap();
        assert_eq!(delta, back);
    }

    #[test]
    fn wire_messages_round_trip_through_json() {
        let k = sample_knowledge();
        let msgs = vec![
            WireMessage::Join { node: 3 },
            WireMessage::Ack { count: 7 },
            WireMessage::Delta {
                shard: 2,
                delta: margot::KnowledgeDelta {
                    from_epoch: 0,
                    to_epoch: 1,
                    changed: vec![(1, k.points()[1].clone())],
                },
            },
            WireMessage::SyncRequest {
                versions: vec![0, 4, 2],
            },
            WireMessage::Welcome {
                knowledge: k.clone(),
                versions: vec![1, 1, 0],
            },
        ];
        for msg in msgs {
            let json = wire_to_json(&msg).unwrap();
            let back = wire_from_json(&json).unwrap();
            assert_eq!(msg, back);
        }
    }

    #[test]
    fn malformed_delta_is_a_format_error() {
        let err = delta_from_json("{not json").unwrap_err();
        assert!(matches!(err, SocratesError::Format { .. }));
        assert_eq!(err.stage(), StageId::Persist);
        let err = wire_from_json("42").unwrap_err();
        assert!(matches!(err, SocratesError::Format { .. }));
    }

    #[test]
    fn malformed_json_is_a_format_error() {
        let err = knowledge_from_json("{not json").unwrap_err();
        assert!(matches!(err, SocratesError::Format { .. }));
        assert_eq!(err.stage(), StageId::Persist);
        assert!(err.to_string().contains("malformed"));
    }

    #[test]
    fn missing_file_is_an_io_error_with_the_path() {
        let err = load_knowledge("/nonexistent/kb.json").unwrap_err();
        assert!(matches!(err, SocratesError::Io { .. }));
        assert_eq!(err.stage(), StageId::Persist);
        assert!(err.to_string().contains("/nonexistent/kb.json"));
    }
}
