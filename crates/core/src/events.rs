//! The unified fleet-runtime surface: one stepping API
//! ([`FleetRuntime`]) over the lockstep, event-driven and distributed
//! runtimes, plus the event stream ([`FleetEvent`]) their observers
//! consume.
//!
//! Historically each runtime exposed its own round loop
//! (`step_round`/`run_for`); the redesign re-keys everything to the
//! **virtual clock**: `run_until(t)` advances a runtime to virtual
//! time `t`, `run_events(n)` processes a bounded number of scheduler
//! events, and registered observers see every arrival, step, publish
//! and retirement as it happens. The lockstep runtimes implement the
//! surface on top of their unchanged (bit-identical) round semantics —
//! one synchronized round is one scheduler event — while
//! [`crate::EventFleet`] implements it natively on a discrete-event
//! heap.

use std::fmt;

/// A never-reused instance handle: a slot in the runtime's sparse pool
/// plus the slot's reuse generation. Retiring an instance frees its
/// slot for later joiners (memory stays bounded by the *peak* live
/// count under churn), but the freed slot re-enters at the next
/// generation, so a stale handle can never alias a successor — the id
/// stability audit of the historical dense-index runtimes, where
/// `retire_instance` + `add_instance` silently reused indices.
///
/// The dense lockstep runtimes mint their ids at generation 0 (they
/// never reuse an index), so one handle type serves every
/// [`FleetRuntime`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstanceId(u64);

impl InstanceId {
    /// Packs a (slot, generation) pair.
    pub(crate) fn new(slot: u32, generation: u32) -> Self {
        InstanceId(u64::from(generation) << 32 | u64::from(slot))
    }

    /// The pool slot this handle points at.
    pub fn slot(self) -> u32 {
        (self.0 & 0xFFFF_FFFF) as u32
    }

    /// The slot's reuse generation when this handle was minted.
    pub fn generation(self) -> u32 {
        (self.0 >> 32) as u32
    }

    /// The packed representation — unique across the runtime's whole
    /// lifetime, never reused.
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for InstanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}v{}", self.slot(), self.generation())
    }
}

/// One scheduler event, as delivered to registered observers
/// ([`FleetRuntime::observe`]).
#[derive(Debug, Clone, PartialEq)]
pub enum FleetEvent {
    /// An instance joined the fleet.
    Arrived {
        /// The joiner's handle.
        id: InstanceId,
        /// Virtual arrival time, seconds.
        t_s: f64,
    },
    /// An instance left the fleet (orderly retirement — panics surface
    /// through the runtime's stats instead).
    Retired {
        /// The leaver's handle.
        id: InstanceId,
        /// Virtual retirement time, seconds.
        t_s: f64,
    },
    /// An instance executed one kernel invocation.
    Stepped {
        /// The stepping instance.
        id: InstanceId,
        /// Virtual start time of the invocation, seconds.
        t_start_s: f64,
        /// Observed (noisy) execution time, seconds.
        time_s: f64,
        /// Observed average power, watts.
        power_w: f64,
        /// Whether the configuration was forced (cooperative
        /// exploration or warm-boot validation) rather than planned.
        forced: bool,
    },
    /// An instance's observation was merged into the shared knowledge.
    Published {
        /// The publishing instance.
        id: InstanceId,
        /// Virtual publish time, seconds.
        t_s: f64,
        /// The pool's knowledge epoch after the merge. Lockstep
        /// runtimes publish a whole round as one batch, so every
        /// publisher of a round reports the same post-batch epoch.
        epoch: u64,
    },
}

impl FleetEvent {
    /// The instance the event concerns.
    pub fn id(&self) -> InstanceId {
        match *self {
            FleetEvent::Arrived { id, .. }
            | FleetEvent::Retired { id, .. }
            | FleetEvent::Stepped { id, .. }
            | FleetEvent::Published { id, .. } => id,
        }
    }

    /// The event's virtual time, seconds (for [`FleetEvent::Stepped`],
    /// the invocation's start time).
    pub fn t_s(&self) -> f64 {
        match *self {
            FleetEvent::Arrived { t_s, .. }
            | FleetEvent::Retired { t_s, .. }
            | FleetEvent::Published { t_s, .. }
            | FleetEvent::Stepped { t_start_s: t_s, .. } => t_s,
        }
    }
}

/// A registered event-stream observer. Observers are pure consumers:
/// they run sequentially, in registration order, on the runtime's
/// control thread, and cannot influence scheduling — the event
/// sequence (and all learned state) is bit-identical with or without
/// them.
pub type EventObserver = Box<dyn FnMut(&FleetEvent) + Send>;

/// The unified stepping surface over every fleet runtime: in-process
/// lockstep ([`crate::Fleet`]), in-process event-driven
/// ([`crate::EventFleet`]) and distributed lockstep
/// ([`crate::DistributedFleet`]).
///
/// Time is the **virtual clock**, not rounds: `run_until(t)` advances
/// the runtime until every schedulable instance has reached virtual
/// time `t`, however many scheduler events that takes. For the
/// lockstep implementors one scheduler event is one synchronized round
/// (their round semantics are unchanged and bit-identical to the
/// historical `step_round` loop); for the event-driven runtime it is
/// one heap event (a step, an arrival or a retirement).
pub trait FleetRuntime {
    /// Advances the runtime until no schedulable instance's virtual
    /// clock is below `t_s` (absolute virtual time, seconds). Returns
    /// the number of scheduler events processed.
    fn run_until(&mut self, t_s: f64) -> u64;

    /// Processes at most `n` scheduler events (stopping early when
    /// nothing is schedulable); returns the number processed.
    fn run_events(&mut self, n: u64) -> u64;

    /// Registers an event-stream observer. Observers run sequentially
    /// in registration order and never affect scheduling or learned
    /// state.
    fn observe(&mut self, observer: EventObserver);

    /// The runtime's virtual clock, seconds: the latest virtual time
    /// the scheduler has reached (0 before anything ran).
    fn virtual_now_s(&self) -> f64;

    /// Number of instances currently schedulable.
    fn active_count(&self) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instance_ids_pack_slot_and_generation() {
        let id = InstanceId::new(7, 3);
        assert_eq!(id.slot(), 7);
        assert_eq!(id.generation(), 3);
        assert_eq!(id.to_string(), "7v3");
        // Same slot, later generation: a different handle.
        assert_ne!(id, InstanceId::new(7, 4));
        assert_ne!(id.raw(), InstanceId::new(7, 4).raw());
        // Full range round-trips.
        let max = InstanceId::new(u32::MAX, u32::MAX);
        assert_eq!(max.slot(), u32::MAX);
        assert_eq!(max.generation(), u32::MAX);
    }

    #[test]
    fn events_report_their_instance_and_time() {
        let id = InstanceId::new(1, 0);
        let stepped = FleetEvent::Stepped {
            id,
            t_start_s: 2.5,
            time_s: 0.5,
            power_w: 90.0,
            forced: false,
        };
        assert_eq!(stepped.id(), id);
        assert_eq!(stepped.t_s(), 2.5);
        let retired = FleetEvent::Retired { id, t_s: 4.0 };
        assert_eq!(retired.t_s(), 4.0);
    }
}
