//! Typed stage artifacts and the shared [`ArtifactStore`].
//!
//! Every pipeline stage produces a typed artifact (a [`ParsedSource`],
//! [`KernelFeatures`], [`FlagPredictions`], [`WeavedProgram`] or
//! [`ProfiledKnowledge`]); the store memoises them under a key of
//! `(app, dataset, toolchain-config fingerprint)` so that a batch run
//! over many targets computes each shared artifact **once**.
//!
//! The big win is the COBAYN training corpus: the seed implementation
//! re-ran parse + feature extraction + iterative compilation over all
//! sibling applications for *every* target (O(n²) over a benchmark
//! suite). With the store, each application's [`cobayn::TrainingApp`]
//! corpus entry is built once per `(app, dataset)`, and leave-one-out
//! training is realised by *masking* the target's entry when assembling
//! a model's training set — never by rebuilding the corpus.
//!
//! All methods take `&self` and are safe to call from many threads at
//! once (this is what lets [`crate::Toolchain::enhance_all`] fan
//! targets out over rayon). Values are deterministic functions of the
//! key, so concurrent computation of the same key is harmless: the
//! first insert wins and every caller observes identical data.

use crate::engine::CompiledKernel;
use crate::error::SocratesError;
use crate::snapshot::{nearest_neighbour, KnowledgeSnapshot, SNAPSHOT_FORMAT_VERSION};
use crate::toolchain::{fnv, Toolchain};
use cobayn::{iterative_compilation, Cobayn, CobaynConfig, TrainingApp};
use lara::{Multiversioned, WeavingMetrics};
use margot::Knowledge;
use milepost::Features;
use minic::TranslationUnit;
use platform_sim::{BindingPolicy, CompilerOptions, KnobConfig, WorkloadProfile};
use polybench::{App, Dataset};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Stage 1 artifact: the parsed original application.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedSource {
    /// Which benchmark this is.
    pub app: App,
    /// The original (pure functional) program.
    pub tu: TranslationUnit,
    /// Name of the kernel function.
    pub kernel: String,
}

/// Stage 2 artifact: the kernel's static Milepost feature vector.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelFeatures {
    /// Which benchmark this is.
    pub app: App,
    /// The extracted feature vector.
    pub features: Features,
}

/// Stage 3 artifact: the COBAYN-predicted flag combinations (CF1..CFn).
#[derive(Debug, Clone, PartialEq)]
pub struct FlagPredictions {
    /// Which benchmark this is.
    pub app: App,
    /// Predicted combinations, most promising first.
    pub flags: Vec<CompilerOptions>,
}

/// Stage 4 artifact: the weaved adaptive program and its metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct WeavedProgram {
    /// Which benchmark this is.
    pub app: App,
    /// The weaved, adaptive program.
    pub weaved: TranslationUnit,
    /// Table I metrics for this application.
    pub metrics: WeavingMetrics,
    /// Multiversioning artefacts (clone names, wrapper, control vars).
    pub multiversioned: Multiversioned,
    /// Version table: index = `__socrates_version` value.
    pub versions: Vec<(CompilerOptions, BindingPolicy)>,
}

/// Stage 5 artifact: the design-time knowledge from the DSE.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfiledKnowledge {
    /// Which benchmark this is.
    pub app: App,
    /// The mARGOt application knowledge.
    pub knowledge: Knowledge<KnobConfig>,
    /// The kernel workload profile driving the platform model.
    pub profile: WorkloadProfile,
}

/// Version stamp of the persisted-knowledge artifacts. The config
/// fingerprint only covers *configuration*; bump this whenever the
/// profiling semantics themselves change (DSE enumeration, platform
/// model, noise derivation), so stale on-disk files from older code
/// are treated as misses instead of silently reloaded.
pub const KNOWLEDGE_FORMAT_VERSION: u32 = 1;

/// Cache key: which application, which dataset, which toolchain
/// configuration (fingerprint over every knob that can change a stage
/// output, including the platform).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct ArtifactKey {
    app: App,
    dataset: Dataset,
    config: u64,
}

/// Snapshot of the store's cache behaviour: how many lookups hit, and
/// how many times each stage actually executed. The equivalence tests
/// pin the O(n) corpus property with these counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Lookups answered from cache.
    pub hits: u64,
    /// Parse stage executions.
    pub parse_builds: u64,
    /// Feature-extraction stage executions.
    pub feature_builds: u64,
    /// Corpus-entry constructions (parse + features + iterative
    /// compilation for one application).
    pub corpus_builds: u64,
    /// COBAYN model trainings (one per leave-one-out target).
    pub model_builds: u64,
    /// Flag-prediction stage executions.
    pub prediction_builds: u64,
    /// Weaving stage executions.
    pub weave_builds: u64,
    /// DSE profiling stage executions.
    pub knowledge_builds: u64,
    /// Knowledge artifacts loaded from the persistence directory
    /// instead of being re-profiled.
    pub knowledge_loads: u64,
    /// Kernel lowerings (one per `(app, dataset, config, threads,
    /// engine)` — a fleet of instances sharing a configuration
    /// compiles once).
    pub kernel_builds: u64,
    /// Compiled-kernel lookups answered from cache.
    pub kernel_hits: u64,
    /// Static kernel analyses (one per `(app, dataset, config,
    /// threads)`, mirroring the compiled-kernel keying).
    pub analysis_builds: u64,
    /// Analysis-report lookups answered from cache.
    pub analysis_hits: u64,
}

impl StoreStats {
    /// Total stage executions across all artifact kinds.
    pub fn total_builds(&self) -> u64 {
        self.parse_builds
            + self.feature_builds
            + self.corpus_builds
            + self.model_builds
            + self.prediction_builds
            + self.weave_builds
            + self.knowledge_builds
            + self.kernel_builds
            + self.analysis_builds
    }
}

#[derive(Default)]
struct Counters {
    hits: AtomicU64,
    parse: AtomicU64,
    features: AtomicU64,
    corpus: AtomicU64,
    model: AtomicU64,
    predictions: AtomicU64,
    weave: AtomicU64,
    knowledge: AtomicU64,
    knowledge_loads: AtomicU64,
    kernel: AtomicU64,
    kernel_hits: AtomicU64,
    kernel_compile_ns: AtomicU64,
    analysis: AtomicU64,
    analysis_hits: AtomicU64,
    analysis_ns: AtomicU64,
}

/// Thread-safe cache of stage artifacts, shared across the targets of a
/// batch enhancement (and reusable across repeated single enhancements).
///
/// With a persistence directory ([`ArtifactStore::with_persist_dir`]),
/// profiled knowledge round-trips through JSON on disk via the
/// knowledge-file format ([`crate::save_knowledge`]): a cold store reloads previous DSE
/// results instead of re-profiling.
#[derive(Default)]
pub struct ArtifactStore {
    persist_dir: Option<PathBuf>,
    /// Memoised `(config, fingerprint)` of the last toolchain seen, so
    /// hot-path lookups don't re-serialise the config per call.
    fingerprint: Mutex<Option<(Toolchain, u64)>>,
    parsed: Mutex<HashMap<ArtifactKey, Arc<ParsedSource>>>,
    features: Mutex<HashMap<ArtifactKey, Arc<KernelFeatures>>>,
    corpus: Mutex<HashMap<ArtifactKey, Arc<TrainingApp>>>,
    models: Mutex<HashMap<ArtifactKey, Arc<Cobayn>>>,
    predictions: Mutex<HashMap<ArtifactKey, Arc<FlagPredictions>>>,
    weaved: Mutex<HashMap<ArtifactKey, Arc<WeavedProgram>>>,
    knowledge: Mutex<HashMap<ArtifactKey, Arc<ProfiledKnowledge>>>,
    kernels: Mutex<HashMap<(ArtifactKey, u32), Arc<CompiledKernel>>>,
    analyses: Mutex<HashMap<(ArtifactKey, u32), Arc<minivm::AnalysisReport>>>,
    counters: Counters,
}

impl std::fmt::Debug for ArtifactStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArtifactStore")
            .field("persist_dir", &self.persist_dir)
            .field("stats", &self.stats())
            .finish()
    }
}

impl ArtifactStore {
    /// An empty, in-memory store.
    pub fn new() -> Self {
        ArtifactStore::default()
    }

    /// A store that persists profiled knowledge as JSON files under
    /// `dir` (created on first save). Knowledge lookups check the
    /// directory before re-running the DSE.
    pub fn with_persist_dir(dir: impl Into<PathBuf>) -> Self {
        ArtifactStore {
            persist_dir: Some(dir.into()),
            ..ArtifactStore::default()
        }
    }

    /// The persistence directory, if configured.
    pub fn persist_dir(&self) -> Option<&Path> {
        self.persist_dir.as_deref()
    }

    /// A snapshot of the cache counters.
    pub fn stats(&self) -> StoreStats {
        let c = &self.counters;
        let get = |a: &AtomicU64| a.load(Ordering::Relaxed);
        StoreStats {
            hits: get(&c.hits),
            parse_builds: get(&c.parse),
            feature_builds: get(&c.features),
            corpus_builds: get(&c.corpus),
            model_builds: get(&c.model),
            prediction_builds: get(&c.predictions),
            weave_builds: get(&c.weave),
            knowledge_builds: get(&c.knowledge),
            knowledge_loads: get(&c.knowledge_loads),
            kernel_builds: get(&c.kernel),
            kernel_hits: get(&c.kernel_hits),
            analysis_builds: get(&c.analysis),
            analysis_hits: get(&c.analysis_hits),
        }
    }

    /// Total wall-clock nanoseconds spent lowering kernels (kept out of
    /// [`StoreStats`] so stats snapshots stay comparable with `==`).
    pub fn kernel_compile_ns(&self) -> u64 {
        self.counters.kernel_compile_ns.load(Ordering::Relaxed)
    }

    /// Total wall-clock nanoseconds spent in static kernel analysis
    /// (same convention as [`ArtifactStore::kernel_compile_ns`]).
    pub fn analysis_ns(&self) -> u64 {
        self.counters.analysis_ns.load(Ordering::Relaxed)
    }

    fn key(&self, toolchain: &Toolchain, app: App) -> ArtifactKey {
        let mut memo = self.fingerprint.lock().expect("fingerprint memo poisoned");
        let config = match memo.as_ref() {
            Some((cached, fp)) if cached == toolchain => *fp,
            _ => {
                let fp = toolchain.fingerprint();
                *memo = Some((toolchain.clone(), fp));
                fp
            }
        };
        ArtifactKey {
            app,
            dataset: toolchain.dataset,
            config,
        }
    }

    /// The parsed original source of `app`.
    ///
    /// # Errors
    ///
    /// Returns a parse-stage [`SocratesError`] on invalid source (never
    /// happens for the bundled Polybench programs).
    pub fn parsed(
        &self,
        toolchain: &Toolchain,
        app: App,
    ) -> Result<Arc<ParsedSource>, SocratesError> {
        get_or_build(
            &self.parsed,
            &self.counters.hits,
            &self.counters.parse,
            self.key(toolchain, app),
            || {
                let source = polybench::source(app, toolchain.dataset);
                let tu = minic::parse(&source).map_err(|e| SocratesError::parse(app, e))?;
                Ok(ParsedSource {
                    app,
                    tu,
                    kernel: app.kernel_name(),
                })
            },
        )
    }

    /// The Milepost feature vector of `app`'s kernel.
    ///
    /// # Errors
    ///
    /// Propagates parse errors; fails if the kernel function is absent.
    pub fn kernel_features(
        &self,
        toolchain: &Toolchain,
        app: App,
    ) -> Result<Arc<KernelFeatures>, SocratesError> {
        get_or_build(
            &self.features,
            &self.counters.hits,
            &self.counters.features,
            self.key(toolchain, app),
            || {
                let parsed = self.parsed(toolchain, app)?;
                let features = milepost::extract_function(&parsed.tu, &parsed.kernel)
                    .map_err(|e| SocratesError::features(app, e))?;
                Ok(KernelFeatures { app, features })
            },
        )
    }

    /// The COBAYN training-corpus entry for `app`: its features plus
    /// the good flag combinations found by iterative compilation
    /// (single-thread close binding, exactly COBAYN's setup).
    ///
    /// This is the expensive shared artifact — built once per
    /// `(app, dataset, config)` no matter how many leave-one-out
    /// targets consume it.
    ///
    /// # Errors
    ///
    /// Propagates parse and feature-extraction errors.
    pub fn training_app(
        &self,
        toolchain: &Toolchain,
        app: App,
    ) -> Result<Arc<TrainingApp>, SocratesError> {
        get_or_build(
            &self.corpus,
            &self.counters.hits,
            &self.counters.corpus,
            self.key(toolchain, app),
            || {
                let features = self.kernel_features(toolchain, app)?;
                let machine = toolchain.platform.machine(toolchain.seed).noiseless();
                let profile = app.profile(toolchain.dataset);
                let good = iterative_compilation(
                    |co| {
                        let cfg = KnobConfig::new(co.clone(), 1, BindingPolicy::Close);
                        1.0 / machine.expected(&profile, &cfg).time_s
                    },
                    toolchain.training_top_fraction,
                );
                Ok(TrainingApp {
                    features: features.features.clone(),
                    good,
                })
            },
        )
    }

    /// The COBAYN model for leave-one-out `target`: trained on the
    /// corpus entries of every *other* application (in [`App::ALL`]
    /// order), with `target`'s own entry masked out of the training set
    /// at query time.
    ///
    /// # Errors
    ///
    /// Propagates corpus errors; fails if training is impossible.
    pub fn cobayn_model(
        &self,
        toolchain: &Toolchain,
        target: App,
    ) -> Result<Arc<Cobayn>, SocratesError> {
        get_or_build(
            &self.models,
            &self.counters.hits,
            &self.counters.model,
            self.key(toolchain, target),
            || {
                let mut corpus = Vec::with_capacity(App::ALL.len() - 1);
                for other in App::ALL {
                    if other == target {
                        continue;
                    }
                    corpus.push(self.training_app(toolchain, other)?.as_ref().clone());
                }
                Cobayn::train(&corpus, CobaynConfig::default())
                    .map_err(|e| SocratesError::train(target, e))
            },
        )
    }

    /// The predicted flag combinations for `app`.
    ///
    /// # Errors
    ///
    /// Propagates feature and training errors.
    pub fn flag_predictions(
        &self,
        toolchain: &Toolchain,
        app: App,
    ) -> Result<Arc<FlagPredictions>, SocratesError> {
        get_or_build(
            &self.predictions,
            &self.counters.hits,
            &self.counters.predictions,
            self.key(toolchain, app),
            || {
                let features = self.kernel_features(toolchain, app)?;
                let model = self.cobayn_model(toolchain, app)?;
                Ok(FlagPredictions {
                    app,
                    flags: model.predict(&features.features, toolchain.cobayn_predictions),
                })
            },
        )
    }

    /// The weaved adaptive program for `app` (Multiversioning then
    /// Autotuner strategies).
    ///
    /// # Errors
    ///
    /// Propagates upstream errors; fails if a weaving strategy fails.
    pub fn weaved(
        &self,
        toolchain: &Toolchain,
        app: App,
    ) -> Result<Arc<WeavedProgram>, SocratesError> {
        get_or_build(
            &self.weaved,
            &self.counters.hits,
            &self.counters.weave,
            self.key(toolchain, app),
            || {
                let parsed = self.parsed(toolchain, app)?;
                let predictions = self.flag_predictions(toolchain, app)?;
                let versions = toolchain.version_table(&predictions.flags);
                let static_versions: Vec<lara::StaticVersion> = versions
                    .iter()
                    .map(|(co, bp)| lara::StaticVersion::new(co.pragma_flags(), bp.as_str()))
                    .collect();
                let mut weaver = lara::Weaver::new(parsed.tu.clone());
                let multiversioned =
                    lara::multiversioning(&mut weaver, &parsed.kernel, &static_versions)
                        .map_err(|e| SocratesError::weave(app, e))?;
                lara::autotuner(&mut weaver, &multiversioned, "main")
                    .map_err(|e| SocratesError::weave(app, e))?;
                let (weaved, metrics) = weaver.finish();
                Ok(WeavedProgram {
                    app,
                    weaved,
                    metrics,
                    multiversioned,
                    versions,
                })
            },
        )
    }

    /// The design-time knowledge of `app`: the full-factorial DSE over
    /// the SOCRATES space on the toolchain's platform, with a
    /// deterministic per-app machine seed.
    ///
    /// With a persistence directory, a miss first tries to reload the
    /// knowledge JSON written by a previous run; a fresh profile is
    /// saved back to disk. Persistence is **best-effort** in both
    /// directions: unreadable or malformed files are treated as cache
    /// misses and save failures are ignored, so a broken cache
    /// directory degrades to re-profiling rather than erroring (use
    /// [`crate::save_knowledge`] directly when a persistence failure
    /// must be detected).
    ///
    /// # Errors
    ///
    /// Propagates upstream pipeline errors.
    pub fn profiled_knowledge(
        &self,
        toolchain: &Toolchain,
        app: App,
    ) -> Result<Arc<ProfiledKnowledge>, SocratesError> {
        let key = self.key(toolchain, app);
        if let Some(hit) = self
            .knowledge
            .lock()
            .expect("knowledge map poisoned")
            .get(&key)
        {
            self.counters.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(hit));
        }
        let profile = app.profile(toolchain.dataset);
        let value = match self.load_persisted(toolchain, app, key.config) {
            Some(knowledge) => {
                self.counters
                    .knowledge_loads
                    .fetch_add(1, Ordering::Relaxed);
                ProfiledKnowledge {
                    app,
                    knowledge,
                    profile,
                }
            }
            None => {
                let predictions = self.flag_predictions(toolchain, app)?;
                let space = dse::DesignSpace::socrates(
                    predictions.flags.clone(),
                    &toolchain.platform.topology,
                );
                let machine = toolchain.platform.machine(toolchain.seed ^ fnv(app.name()));
                // Each profiled configuration also runs functionally on
                // the toolchain's execution engine: the kernel is
                // lowered once per distinct thread count (cached) and
                // an unbound pragma parameter surfaces here as a
                // lowering error, not deep inside a fleet run. The
                // executor only touches the kernel cache, so the
                // analytic knowledge stays bit-identical to a plain
                // `dse::profile` sweep.
                let kernel_err: Mutex<Option<SocratesError>> = Mutex::new(None);
                let knowledge = dse::profile_with_executor(
                    &machine,
                    &profile,
                    &space.full_factorial(),
                    toolchain.dse_repetitions,
                    &|cfg: &KnobConfig| {
                        if let Err(e) = self.compiled_kernel(toolchain, app, cfg.tn) {
                            kernel_err
                                .lock()
                                .expect("kernel error slot poisoned")
                                .get_or_insert(e);
                        }
                    },
                );
                if let Some(e) = kernel_err.into_inner().expect("kernel error slot poisoned") {
                    return Err(e);
                }
                self.counters.knowledge.fetch_add(1, Ordering::Relaxed);
                // Persistence is best-effort, symmetric with loading:
                // an unwritable cache directory must not discard a
                // successfully profiled result.
                self.save_persisted(toolchain, app, key.config, &knowledge)
                    .ok();
                ProfiledKnowledge {
                    app,
                    knowledge,
                    profile,
                }
            }
        };
        let value = Arc::new(value);
        let mut guard = self.knowledge.lock().expect("knowledge map poisoned");
        Ok(Arc::clone(guard.entry(key).or_insert(value)))
    }

    /// The lowered, config-specialized kernel of `app` for a given
    /// thread count, on the toolchain's [`crate::ExecutionEngine`]
    /// (`toolchain.engine` — part of the config fingerprint, so the two
    /// engines never share cache entries).
    ///
    /// The kernel is the first weaved clone (`kernel_<app>_v0`; all
    /// clones share one body and differ only in pragma flags, so one
    /// functional artifact covers the version table), lowered with the
    /// clamped functional dimensions, the baked entry arguments and the
    /// `__socrates_num_threads` pragma parameter as specialization
    /// constants. Built once per `(app, dataset, config, threads)` — a
    /// fleet of N instances sharing a configuration compiles once.
    ///
    /// # Errors
    ///
    /// Propagates upstream errors; fails with a
    /// [`StageId::Lower`](crate::StageId::Lower) error if the kernel
    /// references an unbound pragma parameter or leaves the executable
    /// dialect.
    pub fn compiled_kernel(
        &self,
        toolchain: &Toolchain,
        app: App,
        threads: u32,
    ) -> Result<Arc<CompiledKernel>, SocratesError> {
        let key = (self.key(toolchain, app), threads);
        get_or_build(
            &self.kernels,
            &self.counters.kernel_hits,
            &self.counters.kernel,
            key,
            || {
                let weaved = self.weaved(toolchain, app)?;
                let entry = weaved
                    .multiversioned
                    .version_functions
                    .first()
                    .cloned()
                    .unwrap_or_else(|| app.kernel_name());
                let kernel = crate::engine::compile_kernel_for(
                    toolchain.engine,
                    &weaved.weaved,
                    &entry,
                    app,
                    toolchain.dataset,
                    threads,
                )?;
                self.counters
                    .kernel_compile_ns
                    .fetch_add(kernel.compile_ns, Ordering::Relaxed);
                Ok(kernel)
            },
        )
    }

    /// The static [`minivm::AnalysisReport`] for `app`'s weaved kernel
    /// under the functional spec for a given thread count — the same
    /// `(app, dataset, config fingerprint, threads)` keying as
    /// [`ArtifactStore::compiled_kernel`], so a DSE sweep or fleet that
    /// revisits a configuration analyzes once and hits the cache after.
    ///
    /// # Errors
    ///
    /// Propagates upstream errors. A *rejected* kernel is not an error
    /// here: the verdict travels inside the report (gate with
    /// [`crate::engine::ensure_safe`] or use
    /// [`ArtifactStore::verified_kernel`]).
    pub fn analysis(
        &self,
        toolchain: &Toolchain,
        app: App,
        threads: u32,
    ) -> Result<Arc<minivm::AnalysisReport>, SocratesError> {
        let key = (self.key(toolchain, app), threads);
        get_or_build(
            &self.analyses,
            &self.counters.analysis_hits,
            &self.counters.analysis,
            key,
            || {
                let weaved = self.weaved(toolchain, app)?;
                let entry = weaved
                    .multiversioned
                    .version_functions
                    .first()
                    .cloned()
                    .unwrap_or_else(|| app.kernel_name());
                let report = crate::engine::analyze_kernel_for(
                    &weaved.weaved,
                    &entry,
                    app,
                    toolchain.dataset,
                    threads,
                )?;
                self.counters
                    .analysis_ns
                    .fetch_add(report.analysis_ns, Ordering::Relaxed);
                Ok(report)
            },
        )
    }

    /// [`ArtifactStore::compiled_kernel`] behind the analysis gate: the
    /// kernel is statically analyzed first and only lowered if the
    /// analyzer certifies it safe, so an unsafe kernel never reaches
    /// the VM.
    ///
    /// # Errors
    ///
    /// Fails with a [`StageId::Analyze`](crate::StageId::Analyze) error
    /// carrying the rendered diagnostics when the verdict is not
    /// [`minivm::Verdict::Safe`]; otherwise propagates
    /// [`ArtifactStore::compiled_kernel`] errors.
    pub fn verified_kernel(
        &self,
        toolchain: &Toolchain,
        app: App,
        threads: u32,
    ) -> Result<Arc<CompiledKernel>, SocratesError> {
        let report = self.analysis(toolchain, app, threads)?;
        crate::engine::ensure_safe(app, &report)?;
        self.compiled_kernel(toolchain, app, threads)
    }

    /// Builds the corpus entries (and their parse/feature inputs) for
    /// every application in `universe`, in parallel. Called by
    /// [`crate::Toolchain::enhance_all`] before fanning targets out so
    /// the shared artifacts are computed exactly once, race-free.
    ///
    /// # Errors
    ///
    /// Returns the first (in `universe` order) failing entry's error.
    pub fn warm_corpus(
        &self,
        toolchain: &Toolchain,
        universe: &[App],
    ) -> Result<(), SocratesError> {
        use rayon::prelude::*;
        universe
            .par_iter()
            .map(|&app| self.training_app(toolchain, app).map(|_| ()))
            .collect::<Vec<Result<(), SocratesError>>>()
            .into_iter()
            .collect()
    }

    /// Persists `snapshot` as the shippable warm-start artifact for
    /// `(app, dataset, config)` under the persistence directory and
    /// returns the written path.
    ///
    /// Unlike the best-effort knowledge JSON cache, snapshot
    /// persistence is **strict** in both directions: a deployment that
    /// ships a snapshot must know when the artifact could not be
    /// written, and a corrupt or version-skewed file on disk is a typed
    /// error rather than a silent miss.
    ///
    /// # Errors
    ///
    /// Fails with an invalid-config error when the store has no
    /// persistence directory, and with a persist-stage I/O error when
    /// the file cannot be written.
    pub fn save_snapshot(
        &self,
        toolchain: &Toolchain,
        app: App,
        snapshot: &KnowledgeSnapshot,
    ) -> Result<PathBuf, SocratesError> {
        let config = self.key(toolchain, app).config;
        let path = self.snapshot_path(toolchain, app, config).ok_or_else(|| {
            SocratesError::invalid_config(
                "snapshot persistence requires a store built with \
                 ArtifactStore::with_persist_dir",
            )
        })?;
        let dir = path.parent().expect("snapshot path has a parent");
        std::fs::create_dir_all(dir).map_err(|e| SocratesError::io(dir, e))?;
        snapshot.save(&path)?;
        Ok(path)
    }

    /// Loads the persisted snapshot for `(app, dataset, config)`, or
    /// `Ok(None)` when the store has no persistence directory or no
    /// snapshot file exists for the key.
    ///
    /// # Errors
    ///
    /// A present-but-corrupt or version-skewed file is a typed
    /// transport/persist error — never a panic, never a silent miss.
    pub fn load_snapshot(
        &self,
        toolchain: &Toolchain,
        app: App,
    ) -> Result<Option<KnowledgeSnapshot>, SocratesError> {
        let config = self.key(toolchain, app).config;
        let Some(path) = self.snapshot_path(toolchain, app, config) else {
            return Ok(None);
        };
        if !path.exists() {
            return Ok(None);
        }
        KnowledgeSnapshot::load(&path).map(Some)
    }

    /// The warm-start seed for `app`: its own persisted snapshot when
    /// one exists, otherwise the snapshot of the nearest
    /// MILEPOST-feature neighbour (cosine distance over the COBAYN
    /// feature vectors) among the `universe` applications that have a
    /// snapshot on disk. Returns `Ok(None)` when no candidate exists.
    ///
    /// This is the cross-application transfer seed: the CO × TN × BP
    /// configuration space is shared across applications, so a
    /// feature-similar neighbour's learned knowledge is a far better
    /// starting point than the design-time estimates alone.
    ///
    /// # Errors
    ///
    /// Propagates feature-extraction errors and corrupt-snapshot
    /// errors from [`ArtifactStore::load_snapshot`].
    pub fn warm_start_snapshot(
        &self,
        toolchain: &Toolchain,
        app: App,
        universe: &[App],
    ) -> Result<Option<KnowledgeSnapshot>, SocratesError> {
        if let Some(own) = self.load_snapshot(toolchain, app)? {
            return Ok(Some(own));
        }
        let target = self.kernel_features(toolchain, app)?;
        let mut candidates = Vec::new();
        let mut vectors = Vec::new();
        for &other in universe {
            if other == app {
                continue;
            }
            let Some(snapshot) = self.load_snapshot(toolchain, other)? else {
                continue;
            };
            let features = self.kernel_features(toolchain, other)?;
            vectors.push(features.features.as_slice().to_vec());
            candidates.push(snapshot);
        }
        Ok(nearest_neighbour(target.features.as_slice(), &vectors)
            .map(|i| candidates.swap_remove(i)))
    }

    /// Path of the persisted snapshot artifact for
    /// `(app, dataset, config)`. The name embeds
    /// [`SNAPSHOT_FORMAT_VERSION`] so artifacts written by an older
    /// snapshot codec self-invalidate into misses; a renamed or
    /// hand-corrupted file is still rejected by the in-band header
    /// checks on load.
    fn snapshot_path(&self, toolchain: &Toolchain, app: App, config: u64) -> Option<PathBuf> {
        self.persist_dir.as_ref().map(|dir| {
            dir.join(format!(
                "{}-{:?}-{config:016x}.v{SNAPSHOT_FORMAT_VERSION}.snapshot.bin",
                app.name(),
                toolchain.dataset
            ))
        })
    }

    /// Path of the persisted knowledge file for `(app, dataset, config)`.
    /// The name embeds [`KNOWLEDGE_FORMAT_VERSION`] so files written by
    /// older profiling semantics self-invalidate.
    fn persist_path(&self, toolchain: &Toolchain, app: App, config: u64) -> Option<PathBuf> {
        self.persist_dir.as_ref().map(|dir| {
            dir.join(format!(
                "{}-{:?}-{config:016x}.v{KNOWLEDGE_FORMAT_VERSION}.knowledge.json",
                app.name(),
                toolchain.dataset
            ))
        })
    }

    /// Tries to reload previously profiled knowledge; any unreadable or
    /// malformed file is treated as a miss (the DSE simply re-runs).
    fn load_persisted(
        &self,
        toolchain: &Toolchain,
        app: App,
        config: u64,
    ) -> Option<Knowledge<KnobConfig>> {
        let path = self.persist_path(toolchain, app, config)?;
        let json = std::fs::read_to_string(path).ok()?;
        crate::knowledge_io::knowledge_from_json(&json).ok()
    }

    fn save_persisted(
        &self,
        toolchain: &Toolchain,
        app: App,
        config: u64,
        knowledge: &Knowledge<KnobConfig>,
    ) -> Result<(), SocratesError> {
        let Some(path) = self.persist_path(toolchain, app, config) else {
            return Ok(());
        };
        let dir = path.parent().expect("persist path has a parent");
        std::fs::create_dir_all(dir).map_err(|e| SocratesError::io(dir, e))?;
        let json = crate::knowledge_io::knowledge_to_json(knowledge)?;
        // Atomic: stage + rename, so a crash mid-save can't leave a
        // truncated artifact that poisons the next warm start.
        crate::knowledge_io::write_atomic(&path, &json)
    }
}

/// Returns the cached artifact for `key`, or runs `build`, inserts and
/// returns it. The lock is *not* held while building (stages recurse
/// into the store for their inputs); concurrent builders of the same
/// key produce identical values and the first insert wins.
fn get_or_build<K: std::hash::Hash + Eq + Copy, T>(
    map: &Mutex<HashMap<K, Arc<T>>>,
    hits: &AtomicU64,
    builds: &AtomicU64,
    key: K,
    build: impl FnOnce() -> Result<T, SocratesError>,
) -> Result<Arc<T>, SocratesError> {
    if let Some(hit) = map.lock().expect("artifact map poisoned").get(&key) {
        hits.fetch_add(1, Ordering::Relaxed);
        return Ok(Arc::clone(hit));
    }
    let value = Arc::new(build()?);
    builds.fetch_add(1, Ordering::Relaxed);
    let mut guard = map.lock().expect("artifact map poisoned");
    Ok(Arc::clone(guard.entry(key).or_insert(value)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_toolchain() -> Toolchain {
        Toolchain {
            dataset: Dataset::Small,
            dse_repetitions: 1,
            ..Toolchain::default()
        }
    }

    #[test]
    fn repeated_lookups_hit_the_cache() {
        let tc = quick_toolchain();
        let store = ArtifactStore::new();
        let a = store.parsed(&tc, App::TwoMm).unwrap();
        let b = store.parsed(&tc, App::TwoMm).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second lookup must be the cached Arc");
        let stats = store.stats();
        assert_eq!(stats.parse_builds, 1);
        assert_eq!(stats.hits, 1);
    }

    #[test]
    fn compiled_kernels_cache_per_thread_count_and_engine() {
        let tc = quick_toolchain();
        let store = ArtifactStore::new();
        let a = store.compiled_kernel(&tc, App::TwoMm, 1).unwrap();
        let b = store.compiled_kernel(&tc, App::TwoMm, 1).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "same specialization must be cached");
        let c = store.compiled_kernel(&tc, App::TwoMm, 8).unwrap();
        assert_ne!(a.spec_fingerprint, c.spec_fingerprint);
        assert_eq!(a.report, c.report, "thread count is config, not data");
        let stats = store.stats();
        assert_eq!(stats.kernel_builds, 2);
        assert_eq!(stats.kernel_hits, 1);
        assert!(store.kernel_compile_ns() > 0);

        // A different engine is a different toolchain fingerprint —
        // its artifacts never collide with the default engine's, and
        // its reports are bit-identical.
        let ast_tc = Toolchain {
            engine: crate::ExecutionEngine::Ast,
            ..quick_toolchain()
        };
        let d = store.compiled_kernel(&ast_tc, App::TwoMm, 1).unwrap();
        assert!(d.code.is_none());
        assert_eq!(d.report, a.report, "engines must be bit-identical");
        assert_eq!(store.stats().kernel_builds, 3);
    }

    #[test]
    fn analysis_reports_cache_like_compiled_kernels() {
        let tc = quick_toolchain();
        let store = ArtifactStore::new();
        let a = store.analysis(&tc, App::TwoMm, 1).unwrap();
        let b = store.analysis(&tc, App::TwoMm, 1).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "same key must be the cached Arc");
        let c = store.analysis(&tc, App::TwoMm, 8).unwrap();
        assert!(a.is_safe() && c.is_safe());
        // Counters are thread-invariant: the two specs analyze to the
        // same exact event counts.
        assert_eq!((a.flops, a.loads, a.stores), (c.flops, c.loads, c.stores));
        let stats = store.stats();
        assert_eq!(stats.analysis_builds, 2);
        assert_eq!(stats.analysis_hits, 1);
        assert!(store.analysis_ns() > 0);
    }

    #[test]
    fn verified_kernels_agree_with_the_analysis() {
        let tc = quick_toolchain();
        let store = ArtifactStore::new();
        let kernel = store.verified_kernel(&tc, App::Mvt, 4).unwrap();
        let analysis = store.analysis(&tc, App::Mvt, 4).unwrap();
        assert!(analysis.counts_exact);
        assert_eq!(
            (analysis.flops, analysis.loads, analysis.stores),
            (
                kernel.report.flops,
                kernel.report.loads,
                kernel.report.stores
            ),
            "static counters must equal the executed report"
        );
        // The gate reused the cached analysis: one build, one hit.
        let stats = store.stats();
        assert_eq!(stats.analysis_builds, 1);
        assert_eq!(stats.analysis_hits, 1);
        assert_eq!(stats.kernel_builds, 1);
    }

    #[test]
    fn profiling_compiles_each_thread_count_once() {
        let tc = quick_toolchain();
        let store = ArtifactStore::new();
        let pk = store.profiled_knowledge(&tc, App::Atax).unwrap();
        let stats = store.stats();
        // The profile sweep visits each tn many times (full factorial
        // over CO × TN × BP) but lowers one kernel per distinct tn.
        let distinct: std::collections::HashSet<u32> =
            pk.knowledge.points().iter().map(|p| p.config.tn).collect();
        assert_eq!(stats.kernel_builds, distinct.len() as u64);
        assert!(stats.kernel_hits >= (pk.knowledge.len() - distinct.len()) as u64);
    }

    #[test]
    fn different_configs_do_not_collide() {
        let tc1 = quick_toolchain();
        let tc2 = Toolchain {
            seed: tc1.seed + 1,
            ..quick_toolchain()
        };
        let store = ArtifactStore::new();
        store.training_app(&tc1, App::Atax).unwrap();
        store.training_app(&tc2, App::Atax).unwrap();
        assert_eq!(store.stats().corpus_builds, 2);
    }

    #[test]
    fn corpus_entries_are_shared_across_targets() {
        let tc = quick_toolchain();
        let store = ArtifactStore::new();
        store.cobayn_model(&tc, App::TwoMm).unwrap();
        store.cobayn_model(&tc, App::Mvt).unwrap();
        // Both models exist, but each sibling corpus entry was built
        // once: 12 distinct apps appear across the two 11-app masks.
        let stats = store.stats();
        assert_eq!(stats.model_builds, 2);
        assert_eq!(stats.corpus_builds, App::ALL.len() as u64);
    }

    #[test]
    fn leave_one_out_masks_the_target() {
        // The model for a target must differ from the model for another
        // target (different masked entries => different training sets).
        let tc = quick_toolchain();
        let store = ArtifactStore::new();
        let a = store.cobayn_model(&tc, App::TwoMm).unwrap();
        let b = store.cobayn_model(&tc, App::Nussinov).unwrap();
        assert_ne!(a.as_ref(), b.as_ref());
    }

    #[test]
    fn stats_snapshots_are_non_destructive_reads() {
        let tc = quick_toolchain();
        let store = ArtifactStore::new();
        store.parsed(&tc, App::TwoMm).unwrap();
        store.parsed(&tc, App::TwoMm).unwrap();
        let a = store.stats();
        let b = store.stats();
        assert_eq!(a, b, "reading stats must not consume or reset counters");
        store.kernel_features(&tc, App::TwoMm).unwrap();
        let c = store.stats();
        assert_eq!(
            c.parse_builds, a.parse_builds,
            "unrelated counters untouched"
        );
        assert_eq!(c.feature_builds, a.feature_builds + 1);
        assert!(c.hits >= a.hits, "hit counter is monotonic");
    }

    #[test]
    fn snapshots_persist_reload_and_reject_corruption() {
        use crate::snapshot::{KnowledgeSnapshot, SnapshotFingerprint};
        let tc = quick_toolchain();
        let dir = std::env::temp_dir().join(format!(
            "socrates-snapshot-store-test-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ArtifactStore::with_persist_dir(&dir);

        let pk = store.profiled_knowledge(&tc, App::TwoMm).unwrap();
        let shared = margot::SharedKnowledge::new(pk.knowledge.clone(), 8);
        let snapshot =
            KnowledgeSnapshot::capture(&shared, SnapshotFingerprint::of(&tc, App::TwoMm));
        let path = store.save_snapshot(&tc, App::TwoMm, &snapshot).unwrap();
        assert!(path.exists());

        let reloaded = store.load_snapshot(&tc, App::TwoMm).unwrap();
        assert_eq!(reloaded.as_ref(), Some(&snapshot));
        assert_eq!(
            store.load_snapshot(&tc, App::Mvt).unwrap(),
            None,
            "apps without a snapshot are a clean miss"
        );

        // A truncated file is a typed error, never a panic or a miss.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        let err = store.load_snapshot(&tc, App::TwoMm).unwrap_err();
        assert!(
            matches!(err, SocratesError::Transport { .. }),
            "corruption must surface as a typed transport error, got {err}"
        );

        // A store without a persistence directory cannot ship snapshots
        // (strict error) but degrades to a clean miss on load.
        let bare = ArtifactStore::new();
        assert!(matches!(
            bare.save_snapshot(&tc, App::TwoMm, &snapshot),
            Err(SocratesError::InvalidConfig { .. })
        ));
        assert_eq!(bare.load_snapshot(&tc, App::TwoMm).unwrap(), None);

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn warm_start_prefers_own_snapshot_then_nearest_neighbour() {
        use crate::snapshot::{cosine_distance, KnowledgeSnapshot, SnapshotFingerprint};
        let tc = quick_toolchain();
        let dir =
            std::env::temp_dir().join(format!("socrates-warm-start-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ArtifactStore::with_persist_dir(&dir);

        let target = App::TwoMm;
        let universe = [App::TwoMm, App::Mvt, App::Atax];
        for &sibling in &universe[1..] {
            let pk = store.profiled_knowledge(&tc, sibling).unwrap();
            let shared = margot::SharedKnowledge::new(pk.knowledge.clone(), 8);
            let snapshot =
                KnowledgeSnapshot::capture(&shared, SnapshotFingerprint::of(&tc, sibling));
            store.save_snapshot(&tc, sibling, &snapshot).unwrap();
        }

        // With no snapshot of its own, the target adopts the nearest
        // MILEPOST neighbour's snapshot.
        let seed = store
            .warm_start_snapshot(&tc, target, &universe)
            .unwrap()
            .expect("siblings have snapshots");
        let target_features = store.kernel_features(&tc, target).unwrap();
        let expected = universe[1..]
            .iter()
            .min_by(|&&a, &&b| {
                let fa = store.kernel_features(&tc, a).unwrap();
                let fb = store.kernel_features(&tc, b).unwrap();
                let da =
                    cosine_distance(target_features.features.as_slice(), fa.features.as_slice());
                let db =
                    cosine_distance(target_features.features.as_slice(), fb.features.as_slice());
                da.partial_cmp(&db).unwrap()
            })
            .unwrap();
        assert_eq!(seed.fingerprint.app, expected.name());

        // Once the target has its own snapshot, it wins outright.
        let pk = store.profiled_knowledge(&tc, target).unwrap();
        let shared = margot::SharedKnowledge::new(pk.knowledge.clone(), 8);
        let own = KnowledgeSnapshot::capture(&shared, SnapshotFingerprint::of(&tc, target));
        store.save_snapshot(&tc, target, &own).unwrap();
        let seed = store
            .warm_start_snapshot(&tc, target, &universe)
            .unwrap()
            .unwrap();
        assert_eq!(seed.fingerprint.app, target.name());

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn knowledge_persists_and_reloads() {
        let tc = quick_toolchain();
        let dir = std::env::temp_dir().join(format!(
            "socrates-artifact-store-test-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);

        let warm = ArtifactStore::with_persist_dir(&dir);
        let fresh = warm.profiled_knowledge(&tc, App::Syrk).unwrap();
        assert_eq!(warm.stats().knowledge_builds, 1);
        assert_eq!(warm.stats().knowledge_loads, 0);

        // A cold store over the same directory reloads instead of
        // re-profiling.
        let cold = ArtifactStore::with_persist_dir(&dir);
        let reloaded = cold.profiled_knowledge(&tc, App::Syrk).unwrap();
        assert_eq!(cold.stats().knowledge_builds, 0);
        assert_eq!(cold.stats().knowledge_loads, 1);
        assert_eq!(fresh.knowledge, reloaded.knowledge);

        std::fs::remove_dir_all(&dir).ok();
    }
}
