//! The adaptive application at runtime: the MAPE-K loop the weaved
//! binary executes (paper Fig. 5).
//!
//! Each [`AdaptiveApplication::step`] mirrors one pass through the weaved
//! `main` loop body:
//!
//! ```c
//! margot_update(&__socrates_version, &__socrates_num_threads); // plan
//! margot_start_monitor();
//! kernel_wrapper(...);                                         // execute
//! margot_stop_monitor();                                       // monitor
//! margot_log();
//! ```
//!
//! The kernel executes on the simulated platform; time advances on a
//! virtual clock, so replaying the paper's 300-second trace takes
//! milliseconds of host time.

use crate::error::SocratesError;
use crate::toolchain::EnhancedApp;
use margot::{ApplicationManager, Constraint, Knowledge, Metric, MetricValues, Rank};
use platform_sim::{EnergyMeter, KnobConfig, Machine, VirtualClock};
use serde::{Deserialize, Serialize};

/// One kernel invocation in the execution trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceSample {
    /// Virtual time at invocation start, seconds.
    pub t_start_s: f64,
    /// Observed kernel duration, seconds.
    pub time_s: f64,
    /// Observed average power, watts.
    pub power_w: f64,
    /// The configuration the AS-RTM selected.
    pub config: KnobConfig,
    /// The dispatched clone version (`__socrates_version`).
    pub version: usize,
    /// Whether this invocation executed a coordinator-forced
    /// exploration configuration instead of the AS-RTM's plan (see
    /// [`AdaptiveApplication::step_forced`]).
    pub forced: bool,
}

impl TraceSample {
    /// The observation bundle this sample contributes to a knowledge
    /// base: the measured time and power with the derived throughput
    /// and energy EFPs — what a fleet instance publishes into a
    /// [`margot::SharedKnowledge`]. Uses the same definition as the
    /// MAPE-K monitors ([`MetricValues::from_execution`]).
    pub fn observed_metrics(&self) -> MetricValues {
        MetricValues::from_execution(self.time_s, self.power_w)
    }
}

/// A runnable adaptive application (enhanced binary + platform).
#[derive(Debug, Clone)]
pub struct AdaptiveApplication {
    enhanced: EnhancedApp,
    manager: ApplicationManager<KnobConfig>,
    machine: Machine,
    clock: VirtualClock,
    meter: EnergyMeter,
    trace: Vec<TraceSample>,
    feedback_enabled: bool,
    /// Memoised `(config, clone version)` of the last dispatch: the
    /// AS-RTM's pick is usually stable across steps, and the version
    /// table lookup is a linear scan.
    version_cache: Option<(KnobConfig, usize)>,
}

impl AdaptiveApplication {
    /// Boots the adaptive binary: loads the knowledge (margot_init) and
    /// registers the paper's monitors (time, power, throughput, energy).
    ///
    /// The machine is instantiated from the platform the toolchain
    /// profiled for ([`EnhancedApp::platform`]), so non-Xeon scenarios
    /// deploy on the hardware they were tuned for.
    pub fn new(enhanced: EnhancedApp, rank: Rank, seed: u64) -> Self {
        let machine = enhanced.platform.machine(seed);
        Self::with_machine(enhanced, rank, machine)
    }

    /// Boots the adaptive binary on a *specific* machine — which may
    /// differ from the one used for profiling. This is how the ablation
    /// studies model deployment drift (the machine running hotter or
    /// slower than the design-time knowledge assumes).
    pub fn with_machine(enhanced: EnhancedApp, rank: Rank, machine: Machine) -> Self {
        let mut manager = ApplicationManager::new(enhanced.knowledge.clone(), rank);
        for metric in [
            Metric::exec_time(),
            Metric::power(),
            Metric::throughput(),
            Metric::energy(),
        ] {
            manager.add_monitor(metric, margot::DEFAULT_MONITOR_WINDOW);
        }
        AdaptiveApplication {
            enhanced,
            manager,
            machine,
            clock: VirtualClock::new(),
            meter: EnergyMeter::new(),
            trace: Vec::new(),
            feedback_enabled: true,
            version_cache: None,
        }
    }

    /// [`EnhancedApp::try_version_of`] through the one-entry dispatch
    /// cache.
    fn cached_version_of(&mut self, config: &KnobConfig) -> Result<usize, SocratesError> {
        if let Some((cached, version)) = &self.version_cache {
            if cached == config {
                return Ok(*version);
            }
        }
        let version = self.enhanced.try_version_of(config)?;
        self.version_cache = Some((config.clone(), version));
        Ok(version)
    }

    /// Enables or disables the monitor-feedback loop (the MAPE-K
    /// *Monitor/Analyse* phases). With feedback off, the AS-RTM trusts
    /// the design-time knowledge blindly — the ablation baseline.
    pub fn set_feedback(&mut self, enabled: bool) {
        self.feedback_enabled = enabled;
    }

    /// The enhanced application artefacts.
    pub fn enhanced(&self) -> &EnhancedApp {
        &self.enhanced
    }

    /// The mARGOt manager (to change requirements at runtime).
    pub fn manager_mut(&mut self) -> &mut ApplicationManager<KnobConfig> {
        &mut self.manager
    }

    /// The mARGOt manager, read-only.
    pub fn manager(&self) -> &ApplicationManager<KnobConfig> {
        &self.manager
    }

    /// Adopts a refreshed knowledge base — how a fleet instance pulls
    /// the discoveries other instances published into a
    /// [`margot::SharedKnowledge`]. The next [`step`](Self::step)
    /// re-plans over the new operating points.
    pub fn set_knowledge(&mut self, knowledge: Knowledge<KnobConfig>) {
        self.manager.set_knowledge(knowledge);
    }

    /// Adopts refreshed knowledge *incrementally*: patches only the
    /// points a [`margot::KnowledgeDelta`] says changed — the cheap
    /// adoption path a fleet instance takes when it kept up with the
    /// shared knowledge epoch. Bit-identical to
    /// [`set_knowledge`](Self::set_knowledge) with the delta's target
    /// snapshot. Returns `false` (and changes nothing) if the delta
    /// does not line up with the current knowledge; the caller must
    /// fall back to a full snapshot.
    #[must_use]
    pub fn apply_knowledge_delta(&mut self, delta: &margot::KnowledgeDelta<KnobConfig>) -> bool {
        self.manager.apply_knowledge_delta(delta)
    }

    /// Switches the optimisation rank (Fig. 5 requirement change).
    pub fn set_rank(&mut self, rank: Rank) {
        self.manager.set_rank(rank);
    }

    /// Atomically applies a named optimisation state (rank + constraint
    /// set) from a [`margot::StateRegistry`].
    pub fn apply_state(&mut self, state: &margot::OptimizationState) {
        self.manager.apply_state(state);
    }

    /// Adds a constraint (e.g. a power budget).
    pub fn add_constraint(&mut self, c: Constraint) {
        self.manager.add_constraint(c);
    }

    /// Current virtual time, seconds.
    pub fn now_s(&self) -> f64 {
        self.clock.now_s()
    }

    /// Total energy drawn so far, joules.
    pub fn energy_j(&self) -> f64 {
        self.meter.total_j()
    }

    /// The execution trace so far.
    pub fn trace(&self) -> &[TraceSample] {
        &self.trace
    }

    /// One MAPE-K iteration: plan, dispatch, execute, observe.
    ///
    /// # Panics
    ///
    /// Panics if the knowledge base is empty (the toolchain never
    /// produces one).
    pub fn step(&mut self) -> TraceSample {
        let config = self
            .manager
            .update()
            .expect("toolchain produced non-empty knowledge");
        let version = self
            .cached_version_of(&config)
            .expect("every knowledge config has a compiled version");
        let t_start_s = self.clock.now_s();
        let run = self.machine.execute(&self.enhanced.profile, &config);
        self.clock.advance(run.time_s);
        self.meter.accumulate(run.power_w, run.time_s);
        if self.feedback_enabled {
            self.manager.observe_execution(run.time_s, run.power_w);
        }
        let sample = TraceSample {
            t_start_s,
            time_s: run.time_s,
            power_w: run.power_w,
            config,
            version,
            forced: false,
        };
        self.trace.push(sample.clone());
        sample
    }

    /// One *exploration* iteration: executes a coordinator-assigned
    /// configuration instead of the AS-RTM's pick (the fleet's
    /// cooperative online DSE). The observation is returned for the
    /// caller to publish into the shared knowledge; it does **not**
    /// feed this instance's own monitors, which track the configuration
    /// the AS-RTM selected.
    ///
    /// # Errors
    ///
    /// Returns a dispatch-stage [`SocratesError`] if `config` has no
    /// compiled clone version.
    pub fn step_forced(&mut self, config: KnobConfig) -> Result<TraceSample, SocratesError> {
        let version = self.cached_version_of(&config)?;
        let t_start_s = self.clock.now_s();
        let run = self.machine.execute(&self.enhanced.profile, &config);
        self.clock.advance(run.time_s);
        self.meter.accumulate(run.power_w, run.time_s);
        let sample = TraceSample {
            t_start_s,
            time_s: run.time_s,
            power_w: run.power_w,
            config,
            version,
            forced: true,
        };
        self.trace.push(sample.clone());
        Ok(sample)
    }

    /// Runs kernel invocations until `duration_s` of virtual time has
    /// elapsed (measured from the current clock); returns the samples
    /// produced by this call.
    ///
    /// # Panics
    ///
    /// Panics if `duration_s` is not strictly positive.
    pub fn run_for(&mut self, duration_s: f64) -> &[TraceSample] {
        assert!(duration_s > 0.0, "duration must be positive");
        let start_len = self.trace.len();
        let deadline = self.clock.now_s() + duration_s;
        while self.clock.now_s() < deadline {
            self.step();
        }
        &self.trace[start_len..]
    }

    /// Runs kernel invocations until the virtual clock reaches the
    /// **absolute** time `t_s` (a no-op if it is already there);
    /// returns the samples produced by this call. The virtual-clock
    /// twin of [`run_for`](Self::run_for), matching the fleet
    /// runtimes' [`crate::FleetRuntime::run_until`] convention.
    pub fn run_until(&mut self, t_s: f64) -> &[TraceSample] {
        let start_len = self.trace.len();
        while self.clock.now_s() < t_s {
            self.step();
        }
        &self.trace[start_len..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toolchain::Toolchain;
    use margot::Cmp;
    use polybench::{App, Dataset};

    fn adaptive(rank: Rank) -> AdaptiveApplication {
        let toolchain = Toolchain {
            dataset: Dataset::Medium,
            dse_repetitions: 1,
            ..Toolchain::default()
        };
        let enhanced = toolchain.enhance(App::TwoMm).unwrap();
        AdaptiveApplication::new(enhanced, rank, 1234)
    }

    #[test]
    fn step_advances_clock_and_energy() {
        let mut app = adaptive(Rank::maximize(Metric::throughput()));
        let s = app.step();
        assert!(s.time_s > 0.0);
        assert!((app.now_s() - s.time_s).abs() < 1e-12);
        assert!((app.energy_j() - s.time_s * s.power_w).abs() < 1e-9);
    }

    #[test]
    fn run_for_reaches_the_deadline() {
        let mut app = adaptive(Rank::maximize(Metric::throughput()));
        app.run_for(2.0);
        assert!(app.now_s() >= 2.0);
        assert!(!app.trace().is_empty());
    }

    #[test]
    fn trace_versions_match_configs() {
        let mut app = adaptive(Rank::maximize(Metric::throughput()));
        app.run_for(1.0);
        for s in app.trace() {
            assert_eq!(app.enhanced().version_of(&s.config), s.version);
        }
    }

    #[test]
    fn requirement_switch_moves_operating_point() {
        // The Fig. 5 scenario in miniature: Thr/W² → Throughput.
        let mut app = adaptive(Rank::throughput_per_watt2());
        app.run_for(3.0);
        let efficient_power = app.trace().last().unwrap().power_w;
        app.set_rank(Rank::maximize(Metric::throughput()));
        app.run_for(3.0);
        let performance_power = app.trace().last().unwrap().power_w;
        assert!(
            performance_power > efficient_power * 1.1,
            "power must rise after switching to the performance policy \
             ({efficient_power} -> {performance_power})"
        );
    }

    #[test]
    fn power_budget_is_respected_in_expectation() {
        let mut app = adaptive(Rank::minimize(Metric::exec_time()));
        app.add_constraint(Constraint::new(Metric::power(), Cmp::LessOrEqual, 80.0, 10));
        app.run_for(3.0);
        // Expected power of the selected points must respect the budget;
        // noisy observations may exceed it slightly.
        for s in app.trace() {
            assert!(
                s.power_w < 80.0 * 1.15,
                "sample at {:.1}s draws {:.1} W",
                s.t_start_s,
                s.power_w
            );
        }
    }

    #[test]
    fn trace_time_is_monotone() {
        let mut app = adaptive(Rank::maximize(Metric::throughput()));
        app.run_for(1.5);
        let trace = app.trace();
        for w in trace.windows(2) {
            assert!(w[1].t_start_s > w[0].t_start_s);
        }
    }
}
