//! The target platform of a toolchain run: a named topology plus the
//! timing/power/noise parameters, and a seed-to-[`Machine`] factory.
//!
//! The seed repository hardcoded `Topology::xeon_e5_2630_v3()` inside
//! the toolchain; [`Platform`] lifts the target machine into toolchain
//! *configuration*, so the same pipeline can profile for non-Xeon
//! scenarios (different core counts, hotter power envelopes, noisier
//! measurement chains) by swapping one field.

use platform_sim::{Machine, NoiseParams, PowerParams, TimingParams, Topology};
use serde::{Deserialize, Serialize};

/// A deployment target: everything needed to instantiate the simulated
/// machine the DSE profiles against and the adaptive binary runs on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Platform {
    /// Human-readable platform name (used in artifact keys and logs).
    pub name: String,
    /// Hardware topology (sockets × cores × SMT).
    pub topology: Topology,
    /// Timing model parameters.
    pub timing: TimingParams,
    /// Power model parameters.
    pub power: PowerParams,
    /// Measurement-noise parameters.
    pub noise: NoiseParams,
}

impl Platform {
    /// The paper's testbed: 2× Intel Xeon E5-2630 v3 with the default
    /// timing, power and noise models. [`Platform::machine`] on this
    /// platform is identical to `Machine::xeon_e5_2630_v3(seed)`.
    pub fn xeon_e5_2630_v3() -> Self {
        Platform {
            name: "xeon-e5-2630-v3".to_string(),
            topology: Topology::xeon_e5_2630_v3(),
            timing: TimingParams::default(),
            power: PowerParams::default(),
            noise: NoiseParams::default(),
        }
    }

    /// A platform with a custom topology and default model parameters.
    pub fn with_topology(name: impl Into<String>, topology: Topology) -> Self {
        Platform {
            name: name.into(),
            topology,
            ..Platform::xeon_e5_2630_v3()
        }
    }

    /// A drifted deployment of this platform: per-core dynamic power
    /// (core, SMT and uncore coefficients) scaled by `factor`, modelling
    /// cooling degradation or silicon aging after the design-time
    /// profiling. Because the idle floor is unchanged, the drift is
    /// **non-uniform** across operating points — high-thread
    /// configurations drift more than low-thread ones — which is
    /// exactly what defeats frozen design-time knowledge and a single
    /// per-metric feedback ratio.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not a positive finite number.
    #[must_use]
    pub fn hotter(&self, factor: f64) -> Platform {
        assert!(
            factor.is_finite() && factor > 0.0,
            "drift factor {factor} must be positive and finite"
        );
        let mut drifted = self.clone();
        drifted.name = format!("{}-hot{factor}", self.name);
        drifted.power.core_w *= factor;
        drifted.power.smt_w *= factor;
        drifted.power.uncore_w *= factor;
        drifted
    }

    /// Instantiates the simulated machine for this platform with the
    /// given RNG seed — the factory every pipeline stage and the
    /// adaptive runtime go through.
    pub fn machine(&self, seed: u64) -> Machine {
        Machine::xeon_e5_2630_v3(seed)
            .with_topology(self.topology)
            .with_timing_params(self.timing.clone())
            .with_power_params(self.power.clone())
            .with_noise(self.noise)
    }
}

impl Default for Platform {
    fn default() -> Self {
        Platform::xeon_e5_2630_v3()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use platform_sim::{BindingPolicy, CompilerOptions, KnobConfig, OptLevel, WorkloadProfile};

    fn workload() -> WorkloadProfile {
        WorkloadProfile::builder("plat")
            .flops(1e9)
            .bytes(1e8)
            .build()
    }

    #[test]
    fn default_platform_machine_matches_hardcoded_xeon() {
        // The factory must be bit-identical to the seed's hardcoded
        // constructor: same expectations and same noise stream.
        let cfg = KnobConfig::new(
            CompilerOptions::level(OptLevel::O2),
            8,
            BindingPolicy::Close,
        );
        let mut a = Platform::default().machine(11);
        let mut b = Machine::xeon_e5_2630_v3(11);
        assert_eq!(a.expected(&workload(), &cfg), b.expected(&workload(), &cfg));
        for _ in 0..5 {
            assert_eq!(a.execute(&workload(), &cfg), b.execute(&workload(), &cfg));
        }
    }

    #[test]
    fn custom_topology_changes_the_machine() {
        let small = Platform::with_topology(
            "laptop",
            Topology {
                sockets: 1,
                cores_per_socket: 4,
                smt: 2,
            },
        );
        assert_eq!(small.machine(0).topology().logical_cpus(), 8);
        let cfg = KnobConfig::new(
            CompilerOptions::level(OptLevel::O3),
            8,
            BindingPolicy::Close,
        );
        let fast = Platform::default().machine(0).expected(&workload(), &cfg);
        let slow = small.machine(0).expected(&workload(), &cfg);
        assert!(
            slow.time_s >= fast.time_s,
            "{} < {}",
            slow.time_s,
            fast.time_s
        );
    }

    #[test]
    fn platform_serialises_round_trip() {
        let p = Platform::default();
        let json = serde_json::to_string(&p).unwrap();
        let back: Platform = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
