//! The staged pipeline API: composable toolchain stages over the
//! shared [`ArtifactStore`].
//!
//! The paper's Fig. 1 toolchain is a pipeline of independent stages;
//! this module makes that structure explicit and composable:
//!
//! ```text
//! ParseStage ──► FeatureStage ──► PredictStage ──► WeaveStage ──► ProfileStage ──► AssembleStage
//! (minic)        (milepost)       (cobayn, LOO)    (lara)          (dse)            (EnhancedApp)
//! ```
//!
//! Each stage reads its inputs from and writes its output to the
//! [`ArtifactStore`], so re-running a pipeline over a warm store is a
//! pure cache walk, and a batch run shares every common artifact (most
//! importantly the COBAYN training corpus) across targets.
//!
//! ## Composing
//!
//! ```
//! use polybench::{App, Dataset};
//! use socrates::{ArtifactStore, Pipeline, StageContext, Toolchain};
//! use socrates::stages::{FeatureStage, ParseStage};
//!
//! let toolchain = Toolchain { dataset: Dataset::Small, ..Toolchain::default() };
//! let store = ArtifactStore::new();
//! let ctx = StageContext::new(&toolchain, &store, App::TwoMm);
//!
//! // A custom two-stage pipeline: parse, then extract features.
//! let front = Pipeline::new(ParseStage).then(FeatureStage);
//! assert_eq!(front.stage_names(), ["parse", "features"]);
//! let features = front.run(&ctx, ()).unwrap();
//! assert!(features.features.as_slice().iter().any(|&v| v > 0.0));
//! ```

use crate::artifact::{
    ArtifactStore, FlagPredictions, KernelFeatures, ParsedSource, ProfiledKnowledge, WeavedProgram,
};
use crate::error::SocratesError;
use crate::toolchain::{EnhancedApp, Toolchain};
use polybench::App;
use std::sync::Arc;

/// Everything a stage needs besides its typed input: the toolchain
/// configuration, the shared artifact store and the target application.
#[derive(Debug, Clone, Copy)]
pub struct StageContext<'a> {
    /// The toolchain configuration driving every stage.
    pub toolchain: &'a Toolchain,
    /// The shared artifact cache.
    pub store: &'a ArtifactStore,
    /// The application this pipeline run targets.
    pub app: App,
}

impl<'a> StageContext<'a> {
    /// Bundles a stage context.
    pub fn new(toolchain: &'a Toolchain, store: &'a ArtifactStore, app: App) -> Self {
        StageContext {
            toolchain,
            store,
            app,
        }
    }
}

/// One composable toolchain stage: a typed, deterministic function from
/// `Input` to `Output` under a [`StageContext`].
///
/// Implementations should route their computation through the
/// [`ArtifactStore`] so that composed pipelines share work. The
/// canonical stages in [`stages`] do exactly that: they are *memoised*
/// stages whose authoritative inputs live in the store, keyed by the
/// context — their `Input` value sequences the dependency but is not
/// re-read, so a custom stage that *transforms* an artifact must
/// produce its result under its own context/key (or do its own
/// downstream computation) rather than expect a canonical stage to
/// consume the modified value.
pub trait Stage: Send + Sync {
    /// What the stage consumes (the previous stage's output).
    type Input: Send;
    /// What the stage produces.
    type Output: Send;

    /// Short stage label (used in progress reporting and errors).
    fn name(&self) -> &'static str;

    /// Runs the stage.
    ///
    /// # Errors
    ///
    /// Returns a stage-tagged [`SocratesError`] on failure.
    fn run(
        &self,
        ctx: &StageContext<'_>,
        input: Self::Input,
    ) -> Result<Self::Output, SocratesError>;
}

/// A composed chain of stages, built with [`Pipeline::new`] and
/// [`Pipeline::then`]. Running the pipeline threads each stage's output
/// into the next stage's input.
pub struct Pipeline<I, O> {
    #[allow(clippy::type_complexity)]
    run_fn: Box<dyn Fn(&StageContext<'_>, I) -> Result<O, SocratesError> + Send + Sync>,
    names: Vec<&'static str>,
}

impl<I: Send + 'static, O: Send + 'static> Pipeline<I, O> {
    /// A single-stage pipeline.
    pub fn new<S>(stage: S) -> Self
    where
        S: Stage<Input = I, Output = O> + 'static,
    {
        let name = stage.name();
        Pipeline {
            run_fn: Box::new(move |ctx, input| stage.run(ctx, input)),
            names: vec![name],
        }
    }

    /// Appends a stage whose input is this pipeline's output.
    ///
    /// Note that the canonical [`stages`] are store-backed: they read
    /// their authoritative inputs from the [`ArtifactStore`] under the
    /// context key, so inserting a custom *transforming* stage between
    /// them will not alter what the downstream canonical stage
    /// consumes (see [`Stage`]).
    pub fn then<S>(self, stage: S) -> Pipeline<I, S::Output>
    where
        S: Stage<Input = O> + 'static,
        S::Output: 'static,
    {
        let mut names = self.names;
        names.push(stage.name());
        let prev = self.run_fn;
        Pipeline {
            run_fn: Box::new(move |ctx, input| stage.run(ctx, prev(ctx, input)?)),
            names,
        }
    }

    /// The composed stage labels, in execution order.
    pub fn stage_names(&self) -> &[&'static str] {
        &self.names
    }

    /// Runs every stage in order.
    ///
    /// # Errors
    ///
    /// Returns the first failing stage's [`SocratesError`].
    pub fn run(&self, ctx: &StageContext<'_>, input: I) -> Result<O, SocratesError> {
        (self.run_fn)(ctx, input)
    }
}

impl<I, O> std::fmt::Debug for Pipeline<I, O> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pipeline")
            .field("stages", &self.names)
            .finish()
    }
}

/// The canonical SOCRATES stages (paper Fig. 1), each a thin veneer
/// over the corresponding [`ArtifactStore`] accessor.
///
/// These stages are **store-backed and memoised**: each reads its real
/// inputs from the store under the [`StageContext`] key (computing and
/// caching them on a miss) and ignores the typed input value beyond
/// using it to order the chain. That is what makes a rerun over a warm
/// store a pure cache walk and lets a batch share artifacts across
/// targets; see [`Stage`] for the implications when composing custom
/// transforming stages.
pub mod stages {
    use super::*;

    /// Parses the original application source (`minic`).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct ParseStage;

    impl Stage for ParseStage {
        type Input = ();
        type Output = Arc<ParsedSource>;

        fn name(&self) -> &'static str {
            "parse"
        }

        fn run(
            &self,
            ctx: &StageContext<'_>,
            (): Self::Input,
        ) -> Result<Self::Output, SocratesError> {
            ctx.store.parsed(ctx.toolchain, ctx.app)
        }
    }

    /// Extracts the kernel's static Milepost features.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct FeatureStage;

    impl Stage for FeatureStage {
        type Input = Arc<ParsedSource>;
        type Output = Arc<KernelFeatures>;

        fn name(&self) -> &'static str {
            "features"
        }

        fn run(
            &self,
            ctx: &StageContext<'_>,
            _parsed: Self::Input,
        ) -> Result<Self::Output, SocratesError> {
            ctx.store.kernel_features(ctx.toolchain, ctx.app)
        }
    }

    /// Predicts the most promising flag combinations with the
    /// leave-one-out COBAYN model (corpus shared through the store).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct PredictStage;

    impl Stage for PredictStage {
        type Input = Arc<KernelFeatures>;
        type Output = Arc<FlagPredictions>;

        fn name(&self) -> &'static str {
            "predict"
        }

        fn run(
            &self,
            ctx: &StageContext<'_>,
            _features: Self::Input,
        ) -> Result<Self::Output, SocratesError> {
            ctx.store.flag_predictions(ctx.toolchain, ctx.app)
        }
    }

    /// Weaves the Multiversioning and Autotuner strategies (`lara`).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct WeaveStage;

    impl Stage for WeaveStage {
        type Input = Arc<FlagPredictions>;
        type Output = Arc<WeavedProgram>;

        fn name(&self) -> &'static str {
            "weave"
        }

        fn run(
            &self,
            ctx: &StageContext<'_>,
            _predictions: Self::Input,
        ) -> Result<Self::Output, SocratesError> {
            ctx.store.weaved(ctx.toolchain, ctx.app)
        }
    }

    /// Profiles the full-factorial design space on the platform (`dse`).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct ProfileStage;

    impl Stage for ProfileStage {
        type Input = Arc<WeavedProgram>;
        type Output = Arc<ProfiledKnowledge>;

        fn name(&self) -> &'static str {
            "profile"
        }

        fn run(
            &self,
            ctx: &StageContext<'_>,
            _weaved: Self::Input,
        ) -> Result<Self::Output, SocratesError> {
            ctx.store.profiled_knowledge(ctx.toolchain, ctx.app)
        }
    }

    /// Gathers every artifact from the store into an [`EnhancedApp`].
    #[derive(Debug, Clone, Copy, Default)]
    pub struct AssembleStage;

    impl Stage for AssembleStage {
        type Input = Arc<ProfiledKnowledge>;
        type Output = EnhancedApp;

        fn name(&self) -> &'static str {
            "assemble"
        }

        fn run(
            &self,
            ctx: &StageContext<'_>,
            knowledge: Self::Input,
        ) -> Result<Self::Output, SocratesError> {
            let parsed = ctx.store.parsed(ctx.toolchain, ctx.app)?;
            let features = ctx.store.kernel_features(ctx.toolchain, ctx.app)?;
            let predictions = ctx.store.flag_predictions(ctx.toolchain, ctx.app)?;
            let weaved = ctx.store.weaved(ctx.toolchain, ctx.app)?;
            Ok(EnhancedApp {
                app: ctx.app,
                dataset: ctx.toolchain.dataset,
                original: parsed.tu.clone(),
                weaved: weaved.weaved.clone(),
                metrics: weaved.metrics,
                multiversioned: weaved.multiversioned.clone(),
                versions: weaved.versions.clone(),
                features: features.features.clone(),
                cobayn_flags: predictions.flags.clone(),
                knowledge: knowledge.knowledge.clone(),
                profile: knowledge.profile.clone(),
                platform: ctx.toolchain.platform.clone(),
            })
        }
    }
}

/// The canonical six-stage SOCRATES pipeline, from source to
/// [`EnhancedApp`]. `Toolchain::enhance` is a thin shim over this.
pub fn socrates_pipeline() -> Pipeline<(), EnhancedApp> {
    Pipeline::new(stages::ParseStage)
        .then(stages::FeatureStage)
        .then(stages::PredictStage)
        .then(stages::WeaveStage)
        .then(stages::ProfileStage)
        .then(stages::AssembleStage)
}

#[cfg(test)]
mod tests {
    use super::*;
    use polybench::Dataset;

    fn quick_toolchain() -> Toolchain {
        Toolchain {
            dataset: Dataset::Small,
            dse_repetitions: 1,
            ..Toolchain::default()
        }
    }

    #[test]
    fn canonical_pipeline_lists_its_stages() {
        let p = socrates_pipeline();
        assert_eq!(
            p.stage_names(),
            ["parse", "features", "predict", "weave", "profile", "assemble"]
        );
    }

    #[test]
    fn partial_pipelines_compose() {
        let tc = quick_toolchain();
        let store = ArtifactStore::new();
        let ctx = StageContext::new(&tc, &store, App::Mvt);
        let front = Pipeline::new(stages::ParseStage).then(stages::FeatureStage);
        let features = front.run(&ctx, ()).unwrap();
        assert_eq!(features.app, App::Mvt);
        // The partial run only executed its own stages.
        let stats = store.stats();
        assert_eq!(stats.parse_builds, 1);
        assert_eq!(stats.feature_builds, 1);
        assert_eq!(stats.weave_builds, 0);
        assert_eq!(stats.knowledge_builds, 0);
    }

    #[test]
    fn full_pipeline_over_warm_store_is_a_pure_cache_walk() {
        let tc = quick_toolchain();
        let store = ArtifactStore::new();
        let ctx = StageContext::new(&tc, &store, App::Atax);
        let first = socrates_pipeline().run(&ctx, ()).unwrap();
        let builds_after_first = store.stats().total_builds();
        let second = socrates_pipeline().run(&ctx, ()).unwrap();
        assert_eq!(first, second);
        assert_eq!(
            store.stats().total_builds(),
            builds_after_first,
            "warm rerun must not rebuild anything"
        );
    }
}
