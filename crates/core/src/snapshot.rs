//! Shippable knowledge snapshots: versioned, compact binary artifacts
//! that carry a [`margot::SharedKnowledge`]'s full effective state —
//! plus delta-chained increments — between processes, deployments and
//! apps.
//!
//! The production story (kubecl's autotune cache, ported to SOCRATES):
//! a fleet that has paid for online exploration persists a
//! [`KnowledgeSnapshot`]; the next deployment *ships the snapshot* and
//! boots with [`crate::FleetConfig::warm_start`], so its instances
//! start from the learned operating points instead of the design-time
//! predictions — time-to-oracle drops from hundreds of virtual seconds
//! to near zero (`warm_start_bench`, BENCH.md). A brand-new app with no
//! snapshot of its own seeds from its nearest MILEPOST-feature
//! neighbour instead ([`nearest_neighbour`], cosine distance over the
//! COBAYN feature vectors).
//!
//! # Format
//!
//! Both artifact kinds reuse the little-endian length-prefixed
//! primitives of the binary wire codec (`crate::wire_to_bytes`); all
//! integers LE, strings `u32`-length-prefixed UTF-8, `f64` as raw
//! IEEE-754 bits:
//!
//! * full snapshot  = magic `b"SOCS"` ++ format version (u32)
//!   ++ fingerprint ++ epoch (u64) ++ `seq<u64>` shard epochs
//!   ++ Knowledge (`seq<OperatingPoint>`, position order)
//! * delta snapshot = magic `b"SOCD"` ++ format version (u32)
//!   ++ fingerprint ++ `seq<u64>` shard epochs *after* the delta
//!   ++ KnowledgeDelta (from/to epoch ++ changed points)
//! * fingerprint    = app (str) ++ dataset (str) ++ platform (u64)
//!
//! Decoders are strict: wrong magic, a future format version,
//! truncation and trailing bytes are all typed transport-stage
//! [`SocratesError`]s — never a panic. File I/O failures are
//! persist-stage errors carrying the path.
//!
//! # Delta-chain fast-forward
//!
//! A snapshot cut at epoch `E` fast-forwards through any
//! [`SnapshotDelta`] chain recorded since: each link must carry the
//! same fingerprint, chain exactly from the snapshot's current epoch
//! (`delta.from_epoch == snapshot.epoch`) and agree on the shard
//! count; the snapshot then lands on the link's `to_epoch` and shard
//! epoch vector. A fast-forwarded snapshot is **bit-identical** to the
//! live knowledge it chased — equal per-shard content hashes
//! ([`KnowledgeSnapshot::shard_hashes`] vs
//! [`margot::SharedKnowledge::shard_hashes`]) and equal epoch vectors
//! (`tests/snapshot_compat.rs` pins this).

use crate::error::SocratesError;
use crate::knowledge_io::{
    put_delta, put_knowledge, put_len, put_str, put_u32, put_u64, write_atomic_bytes, ByteReader,
};
use crate::toolchain::Toolchain;
use margot::{shard_content_hash, shard_index, Knowledge, KnowledgeDelta, SharedKnowledge};
use platform_sim::KnobConfig;
use polybench::App;
use std::collections::HashMap;
use std::path::Path;

/// Leading magic of a full-state snapshot artifact.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"SOCS";

/// Leading magic of a delta (incremental) snapshot artifact.
pub const SNAPSHOT_DELTA_MAGIC: [u8; 4] = *b"SOCD";

/// Snapshot format version written by this build; decoders reject
/// anything newer with a typed error instead of misreading it.
pub const SNAPSHOT_FORMAT_VERSION: u32 = 1;

/// What a snapshot was cut *from*: the app, the dataset it was profiled
/// on and a stable hash of the platform model. Delta links refuse to
/// fast-forward a snapshot with a different fingerprint; warm-start
/// adoption deliberately does **not** check it (cross-app seeding
/// applies a neighbour's snapshot to a different app's design space).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotFingerprint {
    /// Application name (`App::name`).
    pub app: String,
    /// Dataset label the knowledge was profiled/learned on.
    pub dataset: String,
    /// FNV-1a over the serialised platform model.
    pub platform: u64,
}

impl SnapshotFingerprint {
    /// Builds a fingerprint from explicit parts.
    pub fn new(app: impl Into<String>, dataset: impl Into<String>, platform: u64) -> Self {
        SnapshotFingerprint {
            app: app.into(),
            dataset: dataset.into(),
            platform,
        }
    }

    /// The fingerprint of `app` under `toolchain`: its name, the
    /// toolchain's dataset and a stable hash of the platform model
    /// (same FNV the artifact cache keys use).
    ///
    /// # Panics
    ///
    /// Panics if the platform cannot be serialised (never happens:
    /// every field is plain data).
    pub fn of(toolchain: &Toolchain, app: App) -> Self {
        let platform_json =
            serde_json::to_string(&toolchain.platform).expect("platform serialises");
        SnapshotFingerprint {
            app: app.name().to_string(),
            dataset: format!("{:?}", toolchain.dataset),
            platform: crate::toolchain::fnv(&platform_json),
        }
    }
}

/// A full-state knowledge snapshot: the effective knowledge of a
/// [`SharedKnowledge`] at one consistent `(epoch, shard epoch vector)`,
/// ready to ship with a deployment and adopt via
/// [`crate::FleetConfig::warm_start`].
#[derive(Debug, Clone, PartialEq)]
pub struct KnowledgeSnapshot {
    /// Provenance: app, dataset, platform hash.
    pub fingerprint: SnapshotFingerprint,
    /// Global epoch the snapshot is consistent with.
    pub epoch: u64,
    /// Per-shard epoch vector at the cut (length = shard count).
    pub shard_epochs: Vec<u64>,
    /// The effective knowledge in position order.
    pub knowledge: Knowledge<KnobConfig>,
}

impl KnowledgeSnapshot {
    /// Cuts a snapshot from a live knowledge base: epoch, shard epoch
    /// vector and effective knowledge are read as one consistent
    /// triple (all shard locks held).
    pub fn capture(shared: &SharedKnowledge<KnobConfig>, fingerprint: SnapshotFingerprint) -> Self {
        let (epoch, shard_epochs, knowledge) = shared.versioned_snapshot();
        KnowledgeSnapshot {
            fingerprint,
            epoch,
            shard_epochs,
            knowledge,
        }
    }

    /// Number of knowledge shards the snapshot was cut under.
    pub fn shard_count(&self) -> usize {
        self.shard_epochs.len()
    }

    /// Per-shard content hashes of the snapshot's points, computed
    /// with the same shard assignment and digest as
    /// [`SharedKnowledge::shard_hash`] — equal vectors (plus equal
    /// epoch vectors) mean the snapshot and a live knowledge base are
    /// bit-identical.
    pub fn shard_hashes(&self) -> Vec<u64> {
        let shards = self.shard_count().max(1);
        let mut groups: Vec<Vec<(usize, &margot::OperatingPoint<KnobConfig>)>> =
            vec![Vec::new(); shards];
        for (pos, point) in self.knowledge.points().iter().enumerate() {
            groups[shard_index(&point.config, shards)].push((pos, point));
        }
        groups.into_iter().map(shard_content_hash).collect()
    }

    /// Applies one delta link recorded since this snapshot was cut,
    /// advancing it to the link's `to_epoch` and shard epoch vector.
    ///
    /// # Errors
    ///
    /// Returns a transport-stage [`SocratesError`] — changing nothing —
    /// if the link's fingerprint differs, its `from_epoch` does not
    /// chain from the snapshot's epoch, its shard count differs, or
    /// its changed positions do not line up with the snapshot's
    /// configuration space.
    pub fn fast_forward(&mut self, link: &SnapshotDelta) -> Result<(), SocratesError> {
        if link.fingerprint != self.fingerprint {
            return Err(SocratesError::transport(format!(
                "snapshot fingerprint mismatch: snapshot is {}/{}/{:016x}, delta is {}/{}/{:016x}",
                self.fingerprint.app,
                self.fingerprint.dataset,
                self.fingerprint.platform,
                link.fingerprint.app,
                link.fingerprint.dataset,
                link.fingerprint.platform,
            )));
        }
        if link.shard_epochs.len() != self.shard_epochs.len() {
            return Err(SocratesError::transport(format!(
                "snapshot shard-count mismatch: snapshot has {}, delta has {}",
                self.shard_epochs.len(),
                link.shard_epochs.len(),
            )));
        }
        if link.delta.from_epoch != self.epoch {
            return Err(SocratesError::transport(format!(
                "snapshot delta does not chain: snapshot is at epoch {}, delta starts at {}",
                self.epoch, link.delta.from_epoch,
            )));
        }
        if !link.delta.apply_to(&mut self.knowledge) {
            return Err(SocratesError::transport(
                "snapshot delta positions do not match the snapshot's configuration space",
            ));
        }
        self.epoch = link.delta.to_epoch;
        self.shard_epochs.clone_from(&link.shard_epochs);
        Ok(())
    }

    /// Fast-forwards through a whole recorded chain, in order.
    ///
    /// # Errors
    ///
    /// Returns the first link's error; links before it have been
    /// applied (fast-forward is cumulative), links after it have not.
    pub fn fast_forward_chain(&mut self, chain: &[SnapshotDelta]) -> Result<(), SocratesError> {
        for link in chain {
            self.fast_forward(link)?;
        }
        Ok(())
    }

    /// Seeds a design-time knowledge base from this snapshot: every
    /// design point whose configuration the snapshot also holds gets
    /// the snapshot's metric values merged over its design metrics;
    /// configurations the snapshot does not know keep their design
    /// predictions untouched. This is the warm-start primitive — it
    /// works across apps (the CO × TN × BP configuration space is
    /// shared), which is exactly the cross-app seeding path.
    pub fn apply_to_design(&self, design: &Knowledge<KnobConfig>) -> Knowledge<KnobConfig> {
        let learned: HashMap<&KnobConfig, &margot::MetricValues> = self
            .knowledge
            .points()
            .iter()
            .map(|p| (&p.config, &p.metrics))
            .collect();
        design
            .points()
            .iter()
            .map(|p| {
                let mut metrics = p.metrics.clone();
                if let Some(values) = learned.get(&p.config) {
                    for (metric, value) in values.iter() {
                        metrics.insert(metric.clone(), value);
                    }
                }
                margot::OperatingPoint::new(p.config.clone(), metrics)
            })
            .collect()
    }

    /// Encodes the snapshot as a standalone binary artifact (format in
    /// the module docs).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + 32 * self.knowledge.len());
        out.extend_from_slice(&SNAPSHOT_MAGIC);
        put_u32(&mut out, SNAPSHOT_FORMAT_VERSION);
        put_fingerprint(&mut out, &self.fingerprint);
        put_u64(&mut out, self.epoch);
        put_len(&mut out, self.shard_epochs.len());
        for e in &self.shard_epochs {
            put_u64(&mut out, *e);
        }
        put_knowledge(&mut out, &self.knowledge);
        out
    }

    /// Decodes a snapshot artifact.
    ///
    /// # Errors
    ///
    /// Returns a transport-stage [`SocratesError`] on wrong magic, a
    /// format version newer than this build understands, truncated
    /// input, trailing bytes or any malformed payload field.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SocratesError> {
        let mut r = ByteReader::new(bytes);
        snapshot_magic(&mut r, SNAPSHOT_MAGIC, "knowledge snapshot")?;
        snapshot_version(&mut r)?;
        let fingerprint = read_fingerprint(&mut r)?;
        let epoch = r.u64()?;
        let n = r.len()?;
        let mut shard_epochs = Vec::with_capacity(n);
        for _ in 0..n {
            shard_epochs.push(r.u64()?);
        }
        let knowledge = r.knowledge()?;
        r.finish()?;
        Ok(KnowledgeSnapshot {
            fingerprint,
            epoch,
            shard_epochs,
            knowledge,
        })
    }

    /// Writes the snapshot to `path` atomically (staged in a
    /// writer-unique temp file, renamed into place).
    ///
    /// # Errors
    ///
    /// Returns a persist-stage [`SocratesError`] on I/O failure.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), SocratesError> {
        write_atomic_bytes(path.as_ref(), &self.to_bytes())
    }

    /// Reads a snapshot from `path`.
    ///
    /// # Errors
    ///
    /// Returns a persist-stage [`SocratesError`] on I/O failure and a
    /// transport-stage one on corrupt or version-skewed content.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, SocratesError> {
        let path = path.as_ref();
        let bytes = std::fs::read(path).map_err(|e| SocratesError::io(path, e))?;
        Self::from_bytes(&bytes)
    }
}

/// One link of a snapshot's incremental chain: the [`KnowledgeDelta`]
/// recorded between two epochs plus the shard epoch vector *after*
/// applying it. A node holding a [`KnowledgeSnapshot`] at the link's
/// `from_epoch` lands exactly on the `to_epoch` state
/// ([`KnowledgeSnapshot::fast_forward`]).
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotDelta {
    /// Provenance; must match the snapshot being fast-forwarded.
    pub fingerprint: SnapshotFingerprint,
    /// Per-shard epoch vector after this link applies.
    pub shard_epochs: Vec<u64>,
    /// The changed points between `from_epoch` and `to_epoch`.
    pub delta: KnowledgeDelta<KnobConfig>,
}

impl SnapshotDelta {
    /// Cuts the next chain link from a live knowledge base: drains the
    /// changes accumulated since the last cut (or since the full
    /// snapshot) into a delta chaining from `from_epoch`. Intended for
    /// quiescent bases between rounds — the coordinator that cuts
    /// snapshots must own the base's drain (drains consume the dirty
    /// sets).
    pub fn cut(
        shared: &SharedKnowledge<KnobConfig>,
        fingerprint: SnapshotFingerprint,
        from_epoch: u64,
    ) -> Self {
        let (to_epoch, changed) = shared.drain_changes();
        let shard_epochs = (0..shared.shard_count())
            .map(|s| shared.shard_epoch(s))
            .collect();
        SnapshotDelta {
            fingerprint,
            shard_epochs,
            delta: KnowledgeDelta {
                from_epoch,
                to_epoch,
                changed,
            },
        }
    }

    /// Encodes the link as a standalone binary artifact.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + 32 * self.delta.len());
        out.extend_from_slice(&SNAPSHOT_DELTA_MAGIC);
        put_u32(&mut out, SNAPSHOT_FORMAT_VERSION);
        put_fingerprint(&mut out, &self.fingerprint);
        put_len(&mut out, self.shard_epochs.len());
        for e in &self.shard_epochs {
            put_u64(&mut out, *e);
        }
        put_delta(&mut out, &self.delta);
        out
    }

    /// Decodes a delta-snapshot artifact.
    ///
    /// # Errors
    ///
    /// Returns a transport-stage [`SocratesError`] on wrong magic, a
    /// future format version, truncated input, trailing bytes or any
    /// malformed payload field.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SocratesError> {
        let mut r = ByteReader::new(bytes);
        snapshot_magic(&mut r, SNAPSHOT_DELTA_MAGIC, "knowledge delta snapshot")?;
        snapshot_version(&mut r)?;
        let fingerprint = read_fingerprint(&mut r)?;
        let n = r.len()?;
        let mut shard_epochs = Vec::with_capacity(n);
        for _ in 0..n {
            shard_epochs.push(r.u64()?);
        }
        let delta = r.delta()?;
        r.finish()?;
        Ok(SnapshotDelta {
            fingerprint,
            shard_epochs,
            delta,
        })
    }

    /// Writes the link to `path` atomically.
    ///
    /// # Errors
    ///
    /// Returns a persist-stage [`SocratesError`] on I/O failure.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), SocratesError> {
        write_atomic_bytes(path.as_ref(), &self.to_bytes())
    }

    /// Reads a link from `path`.
    ///
    /// # Errors
    ///
    /// Returns a persist-stage [`SocratesError`] on I/O failure and a
    /// transport-stage one on corrupt or version-skewed content.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, SocratesError> {
        let path = path.as_ref();
        let bytes = std::fs::read(path).map_err(|e| SocratesError::io(path, e))?;
        Self::from_bytes(&bytes)
    }
}

fn put_fingerprint(out: &mut Vec<u8>, fp: &SnapshotFingerprint) {
    put_str(out, &fp.app);
    put_str(out, &fp.dataset);
    put_u64(out, fp.platform);
}

fn read_fingerprint(r: &mut ByteReader<'_>) -> Result<SnapshotFingerprint, SocratesError> {
    Ok(SnapshotFingerprint {
        app: r.str()?.to_string(),
        dataset: r.str()?.to_string(),
        platform: r.u64()?,
    })
}

fn snapshot_magic(
    r: &mut ByteReader<'_>,
    expected: [u8; 4],
    what: &str,
) -> Result<(), SocratesError> {
    if r.take(4)? == expected {
        Ok(())
    } else {
        Err(SocratesError::transport(format!(
            "malformed binary frame: bad {what} magic"
        )))
    }
}

fn snapshot_version(r: &mut ByteReader<'_>) -> Result<u32, SocratesError> {
    let version = r.u32()?;
    if version > SNAPSHOT_FORMAT_VERSION {
        return Err(SocratesError::transport(format!(
            "unsupported snapshot format version {version} \
             (this build reads up to {SNAPSHOT_FORMAT_VERSION})"
        )));
    }
    Ok(version)
}

/// Cosine *distance* (`1 − cos θ`) between two feature vectors — the
/// COBAYN similarity measure over MILEPOST features. 0 means parallel
/// (maximally similar); a zero-norm vector is maximally distant from
/// everything (including another zero vector: no evidence of
/// similarity).
///
/// # Panics
///
/// Panics if the vectors have different lengths.
pub fn cosine_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "feature vectors must have equal length");
    let mut dot = 0.0;
    let mut na = 0.0;
    let mut nb = 0.0;
    for (x, y) in a.iter().zip(b) {
        dot += x * y;
        na += x * x;
        nb += y * y;
    }
    if na == 0.0 || nb == 0.0 {
        return 1.0;
    }
    1.0 - dot / (na.sqrt() * nb.sqrt())
}

/// Index of the candidate feature vector nearest to `target` by
/// [`cosine_distance`] — the cross-app snapshot-seeding rule: a target
/// app with no snapshot of its own warms up from its nearest
/// MILEPOST-feature neighbour's. Ties break to the lowest index;
/// returns `None` for an empty candidate set.
pub fn nearest_neighbour(target: &[f64], candidates: &[Vec<f64>]) -> Option<usize> {
    candidates
        .iter()
        .enumerate()
        .map(|(i, c)| (i, cosine_distance(target, c)))
        .fold(None, |best: Option<(usize, f64)>, (i, d)| match best {
            Some((_, bd)) if bd <= d => best,
            _ => Some((i, d)),
        })
        .map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use margot::{Metric, MetricValues, OperatingPoint};
    use platform_sim::{BindingPolicy, CompilerOptions, OptLevel};

    fn design() -> Knowledge<KnobConfig> {
        [1u32, 2, 4, 8]
            .into_iter()
            .map(|tn| {
                OperatingPoint::new(
                    KnobConfig::new(
                        CompilerOptions::level(OptLevel::O2),
                        tn,
                        BindingPolicy::Close,
                    ),
                    MetricValues::new()
                        .with(Metric::exec_time(), 1.0 / f64::from(tn))
                        .with(Metric::power(), 50.0 + f64::from(tn)),
                )
            })
            .collect()
    }

    fn fp() -> SnapshotFingerprint {
        SnapshotFingerprint::new("2mm", "Medium", 0xDEAD_BEEF)
    }

    fn observe(shared: &SharedKnowledge<KnobConfig>, tn: u32, time_s: f64, power_w: f64) {
        let config = KnobConfig::new(
            CompilerOptions::level(OptLevel::O2),
            tn,
            BindingPolicy::Close,
        );
        assert!(shared.publish(&config, &MetricValues::from_execution(time_s, power_w)));
    }

    #[test]
    fn snapshot_round_trips_through_bytes_and_files() {
        let shared = SharedKnowledge::new(design(), 4).with_shards(3);
        observe(&shared, 2, 0.4, 60.0);
        observe(&shared, 8, 0.1, 90.0);
        let snap = KnowledgeSnapshot::capture(&shared, fp());
        assert_eq!(snap.shard_count(), 3);
        assert_eq!(snap.epoch, shared.epoch());
        let bytes = snap.to_bytes();
        assert_eq!(bytes[..4], SNAPSHOT_MAGIC);
        let back = KnowledgeSnapshot::from_bytes(&bytes).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.to_bytes(), bytes, "re-encoding is byte-stable");

        let dir = std::env::temp_dir().join("socrates-snapshot-roundtrip-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("kb.snapshot.bin");
        snap.save(&path).unwrap();
        assert_eq!(KnowledgeSnapshot::load(&path).unwrap(), snap);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fast_forwarded_snapshot_is_bit_identical_to_the_live_base() {
        let shared = SharedKnowledge::new(design(), 4).with_shards(3);
        observe(&shared, 2, 0.4, 60.0);
        shared.drain_changes(); // snapshot owns the drain cursor from here
        let mut snap = KnowledgeSnapshot::capture(&shared, fp());

        // Live base keeps learning; record the chain since the cut.
        observe(&shared, 8, 0.1, 90.0);
        let link1 = SnapshotDelta::cut(&shared, fp(), snap.epoch);
        observe(&shared, 2, 0.2, 70.0);
        observe(&shared, 4, 0.3, 65.0);
        let link2 = SnapshotDelta::cut(&shared, fp(), link1.delta.to_epoch);

        snap.fast_forward_chain(&[link1, link2]).unwrap();
        assert_eq!(snap.epoch, shared.epoch());
        let live_epochs: Vec<u64> = (0..shared.shard_count())
            .map(|s| shared.shard_epoch(s))
            .collect();
        assert_eq!(snap.shard_epochs, live_epochs);
        assert_eq!(snap.shard_hashes(), shared.shard_hashes());
        assert_eq!(snap.knowledge, shared.knowledge());
    }

    #[test]
    fn fast_forward_rejects_gaps_fingerprints_and_shard_mismatches() {
        let shared = SharedKnowledge::new(design(), 4).with_shards(3);
        let mut snap = KnowledgeSnapshot::capture(&shared, fp());
        observe(&shared, 2, 0.4, 60.0);
        let link = SnapshotDelta::cut(&shared, fp(), snap.epoch);

        let mut wrong_fp = link.clone();
        wrong_fp.fingerprint.app = "mvt".to_string();
        let err = snap.fast_forward(&wrong_fp).unwrap_err();
        assert!(matches!(err, SocratesError::Transport { .. }));
        assert!(err.to_string().contains("fingerprint mismatch"));

        let mut wrong_shards = link.clone();
        wrong_shards.shard_epochs.push(0);
        let err = snap.fast_forward(&wrong_shards).unwrap_err();
        assert!(err.to_string().contains("shard-count mismatch"));

        let mut gap = link.clone();
        gap.delta.from_epoch = snap.epoch + 7;
        let err = snap.fast_forward(&gap).unwrap_err();
        assert!(err.to_string().contains("does not chain"));

        // The rejected links changed nothing: the true link still applies.
        snap.fast_forward(&link).unwrap();
        assert_eq!(snap.knowledge, shared.knowledge());
    }

    #[test]
    fn apply_to_design_merges_only_known_configs() {
        let shared = SharedKnowledge::new(design(), 4);
        observe(&shared, 2, 0.4, 60.0);
        let snap = KnowledgeSnapshot::capture(&shared, fp());
        // A *different* design space: one overlapping config, one new.
        let other: Knowledge<KnobConfig> = [2u32, 16]
            .into_iter()
            .map(|tn| {
                OperatingPoint::new(
                    KnobConfig::new(
                        CompilerOptions::level(OptLevel::O2),
                        tn,
                        BindingPolicy::Close,
                    ),
                    MetricValues::new()
                        .with(Metric::exec_time(), 9.0)
                        .with(Metric::power(), 9.0),
                )
            })
            .collect();
        let seeded = snap.apply_to_design(&other);
        assert_eq!(seeded.len(), 2);
        assert_eq!(seeded.points()[0].metric(&Metric::exec_time()), Some(0.4));
        assert_eq!(seeded.points()[0].metric(&Metric::power()), Some(60.0));
        // The config the snapshot never saw keeps its design metrics.
        assert_eq!(seeded.points()[1], other.points()[1]);
    }

    #[test]
    fn delta_snapshot_round_trips_through_bytes() {
        let shared = SharedKnowledge::new(design(), 4).with_shards(2);
        observe(&shared, 2, 0.4, 60.0);
        let link = SnapshotDelta::cut(&shared, fp(), 0);
        let bytes = link.to_bytes();
        assert_eq!(bytes[..4], SNAPSHOT_DELTA_MAGIC);
        let back = SnapshotDelta::from_bytes(&bytes).unwrap();
        assert_eq!(back, link);
    }

    #[test]
    fn future_format_versions_and_bad_magic_are_typed_errors() {
        let snap = KnowledgeSnapshot::capture(&SharedKnowledge::new(design(), 4), fp());
        let mut bytes = snap.to_bytes();
        bytes[4..8].copy_from_slice(&(SNAPSHOT_FORMAT_VERSION + 1).to_le_bytes());
        let err = KnowledgeSnapshot::from_bytes(&bytes).unwrap_err();
        assert!(matches!(err, SocratesError::Transport { .. }));
        assert!(err
            .to_string()
            .contains("unsupported snapshot format version"));

        let mut wrong_magic = snap.to_bytes();
        wrong_magic[..4].copy_from_slice(b"SOCD"); // the *delta* magic
        assert!(KnowledgeSnapshot::from_bytes(&wrong_magic).is_err());
    }

    #[test]
    fn cosine_nearest_neighbour_picks_the_aligned_vector() {
        let target = vec![1.0, 0.0, 2.0];
        let candidates = vec![
            vec![0.0, 5.0, 0.0], // orthogonal
            vec![2.0, 0.0, 4.0], // parallel
            vec![1.0, 1.0, 1.0], // in between
        ];
        assert_eq!(nearest_neighbour(&target, &candidates), Some(1));
        assert_eq!(nearest_neighbour(&target, &[]), None);
        assert!(cosine_distance(&[0.0; 3], &[1.0, 2.0, 3.0]) >= 1.0);
        let d = cosine_distance(&target, &candidates[1]);
        assert!(d.abs() < 1e-12, "parallel vectors have distance ~0: {d}");
    }
}
