//! The distributed fleet: SOCRATES' crowdsourced online loop over a
//! lossy wire instead of a shared address space.
//!
//! A [`DistributedFleet`] steps N [`AdaptiveApplication`] instances on
//! the synchronized virtual clock, exactly like the in-process
//! [`crate::Fleet`] — but every knowledge exchange travels through the
//! deterministic simulated transport of [`crate::transport`]:
//! observations, acks, per-shard [`margot::KnowledgeDelta`]s,
//! epoch-vector syncs and gossip summaries, all subject to seeded
//! per-link latency, reordering, drop and duplication.
//!
//! # Round structure
//!
//! Each synchronized round ticks the virtual clock and then runs four
//! phases:
//!
//! 1. **deliver** — due messages are handed out in deterministic
//!    order and handled; the broker folds newly arrived observations
//!    (canonical `(round, origin)` order) and broadcasts per-shard
//!    deltas, cascading within the phase so an ideal link behaves
//!    exactly like the in-process barrier;
//! 2. **adopt** — nodes whose effective knowledge moved hand the
//!    refreshed knowledge to their AS-RTM;
//! 3. **step** — every due instance performs one MAPE-K step
//!    (optionally over rayon; nodes are fully independent, so the
//!    rounds stay bit-identical at any thread count);
//! 4. **publish** — each stepped node emits its observation into the
//!    exchange (star: resent until acked; gossip: rumored to rotating
//!    peers) plus periodic anti-entropy traffic.
//!
//! # Determinism and convergence contract
//!
//! Over a lossless zero-latency link ([`LinkConfig::ideal`]) the
//! distributed fleet is **bit-identical** to the in-process
//! [`crate::Fleet`] — same traces, same learned knowledge (pinned by
//! `tests/fleet_dist_equivalence.rs`). Under any seeded loss/latency
//! model, [`DistributedFleet::drain`] runs anti-entropy until every
//! connected node holds the same effective knowledge — equal to the
//! canonical single-mutex fold of all observations (pinned by
//! `tests/transport_props.rs`) — and reports how many repair rounds
//! that took.
//!
//! Scope: one enhanced application per distributed fleet (the
//! in-process fleet's multi-pool bookkeeping is orthogonal to the
//! wire), no cooperative exploration (`exploration_interval` must be
//! 0 — assignment hand-off needs a coordination channel this
//! transport does not model yet) and no power arbitration
//! (`power_budget_w` must be `None` for the same reason).

use crate::engine::CompiledKernel;
use crate::error::SocratesError;
use crate::events::{EventObserver, FleetEvent, FleetRuntime};
use crate::fleet::{dense_id, FleetConfig};
use crate::runtime::{AdaptiveApplication, TraceSample};
use crate::toolchain::EnhancedApp;
use crate::transport::{
    DistTopology, DistributedConfig, Envelope, NetStats, NodeId, Observation, Replica, SimNet,
    WireMessage, BROKER,
};
use margot::{Knowledge, KnowledgeDelta, OperatingPoint, Rank};
use minivm::ExecutionReport;
use platform_sim::{KnobConfig, Machine};
use polybench::App;
use rayon::prelude::*;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex};

/// The central knowledge service of a star deployment: owns the
/// authoritative canonical fold and the monotone per-shard broadcast
/// versions.
struct Broker {
    replica: Replica,
    /// What the broker last broadcast — the knowledge every member
    /// converges to.
    published: Knowledge<KnobConfig>,
    /// Monotone per-shard broadcast versions (the epoch vector nodes
    /// reconcile against).
    versions: Vec<u64>,
    members: BTreeSet<NodeId>,
    /// `(epoch, refolds)` of the replica at the last published diff,
    /// so an idle flush is O(1).
    last_flush: (u64, u64),
}

/// Star-mode node state: an effective-knowledge cache reconciled via
/// the per-shard epoch vector.
struct StarState {
    cache: Knowledge<KnobConfig>,
    versions: Vec<u64>,
    /// Own observations not yet acknowledged by the broker (resent
    /// every round until acked).
    unacked: BTreeMap<u64, Observation>,
    dirty: bool,
}

/// Gossip-mode node state: a full replica plus the rumor outbox.
struct GossipState {
    replica: Replica,
    /// Observations newly learned this round (own step + fresh
    /// arrivals), forwarded to the next rotation targets.
    outbox: Vec<Observation>,
    /// `(epoch, refolds)` of the replica at the last adoption.
    adopted: (u64, u64),
}

enum NodeSync {
    Star(StarState),
    /// Boxed: a full replica (log + checkpoints + warm seed) dwarfs
    /// the star node's cache-and-epoch-vector state.
    Gossip(Box<GossipState>),
}

/// One distributed fleet member: an adaptive application plus its
/// side of the knowledge exchange.
struct DistNode {
    id: NodeId,
    app: AdaptiveApplication,
    active: bool,
    /// Whether the node received its snapshot (founding members start
    /// joined; mid-run joiners resend [`WireMessage::Join`] until
    /// welcomed).
    joined: bool,
    /// Next own-observation sequence number.
    seq: u64,
    sync: NodeSync,
}

/// Membership, health and exchange counters of a
/// [`DistributedFleet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DistStats {
    /// Instances ever added (including retired ones).
    pub instances: usize,
    /// Instances still stepping.
    pub active: usize,
    /// Rounds stepped so far (drain repair rounds included).
    pub rounds: u64,
    /// Total refolds across all replicas: how often an
    /// out-of-canonical-order arrival rolled a fold back (to a
    /// checkpoint, or to design knowledge when none covered it).
    pub refolds: u64,
    /// Total observations those rollbacks re-folded: the actual replay
    /// overhead, suffix-proportional under checkpointing.
    pub refold_ops_replayed: u64,
    /// Transport counters.
    pub net: NetStats,
}

/// A fleet of adaptive-application instances exchanging runtime
/// knowledge as messages over a simulated lossy transport (see the
/// module docs above for the protocol and its guarantees).
///
/// # Examples
///
/// ```no_run
/// use socrates::{DistributedFleet, FleetConfig, LinkConfig, Toolchain};
/// use margot::Rank;
/// use polybench::App;
///
/// let enhanced = Toolchain::default().enhance(App::TwoMm).unwrap();
/// let config = FleetConfig {
///     exploration_interval: 0,
///     distributed: Some(socrates::DistributedConfig {
///         link: LinkConfig {
///             drop_prob: 0.2,
///             max_latency: 3,
///             ..LinkConfig::ideal(7)
///         },
///         ..Default::default()
///     }),
///     ..FleetConfig::default()
/// };
/// let mut fleet = DistributedFleet::new(config, &enhanced).unwrap();
/// fleet.spawn(&Rank::throughput_per_watt2(), 42, 8);
/// socrates::FleetRuntime::run_until(&mut fleet, 30.0); // 30 virtual s
/// let repair_rounds = fleet.drain().unwrap();
/// assert!(fleet.converged());
/// println!("converged after {repair_rounds} repair rounds");
/// ```
pub struct DistributedFleet {
    config: FleetConfig,
    dist: DistributedConfig,
    enhanced: EnhancedApp,
    /// Knowledge position → shard, fixed by the design knowledge and
    /// the configured shard count.
    shard_map: Vec<usize>,
    shard_count: usize,
    net: SimNet,
    broker: Option<Broker>,
    nodes: Vec<DistNode>,
    rounds: u64,
    /// The config-specialized kernel every node of the fleet shares,
    /// compiled once at construction (so an unbound pragma parameter
    /// fails [`DistributedFleet::new`] with a lower-stage error instead
    /// of surfacing mid-deployment).
    kernel: Arc<CompiledKernel>,
    /// Registered event-stream observers ([`FleetRuntime::observe`]).
    /// Pure consumers fed from sequential code only — rounds are
    /// bit-identical with or without them.
    observers: Vec<EventObserver>,
}

impl DistributedFleet {
    /// An empty distributed fleet for one enhanced application.
    ///
    /// # Errors
    ///
    /// Returns an error if the policy is invalid
    /// ([`FleetConfig::validate`]), if [`FleetConfig::distributed`]
    /// is `None` (use [`crate::Fleet::new`] for the in-process mode),
    /// or if it requests a capability the transport does not model
    /// yet (cooperative exploration, power arbitration, disabled
    /// knowledge sharing).
    pub fn new(config: FleetConfig, enhanced: &EnhancedApp) -> Result<Self, SocratesError> {
        config.validate()?;
        let Some(dist) = config.distributed.clone() else {
            return Err(SocratesError::invalid_config(
                "distributed fleet needs FleetConfig::distributed = Some(DistributedConfig); \
                 for the in-process shared-knowledge mode use Fleet::new",
            ));
        };
        if !config.share_knowledge {
            return Err(SocratesError::invalid_config(
                "share_knowledge must be on in distributed mode: a fleet that never \
                 publishes has nothing to exchange (use Fleet for frozen baselines)",
            ));
        }
        if config.exploration_interval != 0 {
            return Err(SocratesError::invalid_config(
                "exploration_interval must be 0 in distributed mode: cooperative \
                 exploration assignments need a coordination channel the transport does \
                 not model yet",
            ));
        }
        if config.power_budget_w.is_some() {
            return Err(SocratesError::invalid_config(
                "power_budget_w must be None in distributed mode: the power arbiter is \
                 not distributed yet",
            ));
        }
        // Warm start: merge the shipped snapshot's learned metrics over
        // the design knowledge before anything derives from it — the
        // probe replica, the broker's published state, every node's
        // boot cache and the Welcome snapshot handed to late joiners
        // all inherit the seed. Same-app snapshots only: the
        // distributed runtime has no exploration sweep, so a foreign
        // (cross-app) hint that mis-ranks the space would never be
        // corrected — the greedy fleet samples only what the hint
        // recommends and can pin itself in a suboptimal absorbing
        // state. A foreign snapshot is therefore ignored here and the
        // fleet boots cold (the in-process `Fleet`, whose cooperative
        // sweep re-samples every configuration, does accept it).
        let mut enhanced = enhanced.clone();
        if let Some(snapshot) = &config.warm_start {
            if config.warm_seed_copies_for(enhanced.app) > 0 {
                enhanced.knowledge = snapshot.apply_to_design(&enhanced.knowledge);
            }
        }
        let probe = Self::boot_replica(&config, &enhanced.knowledge, enhanced.app);
        let shard_map: Vec<usize> = enhanced
            .knowledge
            .points()
            .iter()
            .map(|p| probe.shard_of(&p.config).expect("design config is known"))
            .collect();
        let entry = enhanced
            .multiversioned
            .version_functions
            .first()
            .cloned()
            .unwrap_or_else(|| enhanced.app.kernel_name());
        let kernel = Arc::new(crate::engine::compile_kernel_for(
            config.engine,
            &enhanced.weaved,
            &entry,
            enhanced.app,
            enhanced.dataset,
            1,
        )?);
        let broker = match dist.topology {
            DistTopology::BrokerStar => Some(Broker {
                replica: probe,
                published: enhanced.knowledge.clone(),
                versions: vec![0; config.knowledge_shards],
                members: BTreeSet::new(),
                last_flush: (0, 0),
            }),
            DistTopology::Gossip { .. } => None,
        };
        Ok(DistributedFleet {
            net: SimNet::new(dist.link.clone()),
            dist,
            enhanced,
            shard_map,
            shard_count: config.knowledge_shards,
            broker,
            nodes: Vec::new(),
            rounds: 0,
            config,
            kernel,
            observers: Vec::new(),
        })
    }

    /// A fold replica booted the way every replica of this fleet must
    /// be: over the (already warm-merged) design knowledge, with the
    /// shipped snapshot's observation seed installed when the fleet is
    /// warm-started from a snapshot of the *same* application (a
    /// foreign snapshot only merges values — see
    /// [`FleetConfig::warm_seed_copies_for`]). Every construction
    /// site goes through here —
    /// replicas seeded differently would fold the same log to
    /// different effective knowledge and break the equivalence
    /// invariant.
    fn boot_replica(config: &FleetConfig, design: &Knowledge<KnobConfig>, app: App) -> Replica {
        let replica = Replica::new(
            design.clone(),
            config.knowledge_window,
            config.min_observations,
            config.knowledge_shards,
        );
        match &config.warm_start {
            Some(snapshot) => match config.warm_seed_copies_for(app) {
                0 => replica,
                copies => replica.with_warm_seed(snapshot.knowledge.clone(), copies),
            },
            None => replica,
        }
    }

    /// The functional execution report of the fleet's shared compiled
    /// kernel (bit-identical across [`crate::ExecutionEngine`]s).
    pub fn kernel_report(&self) -> ExecutionReport {
        self.kernel.report
    }

    /// The fleet policy.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Number of instances ever added (including retired ones).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the fleet has no instances.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of instances still stepping.
    pub fn active_instances(&self) -> usize {
        self.nodes.iter().filter(|n| n.active).count()
    }

    /// Rounds run so far (drain repair rounds included).
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Membership and exchange counters in one read.
    pub fn stats(&self) -> DistStats {
        let mut refolds = 0;
        let mut refold_ops_replayed = 0;
        for node in &self.nodes {
            if let NodeSync::Gossip(g) = &node.sync {
                refolds += g.replica.refolds();
                refold_ops_replayed += g.replica.refold_ops_replayed();
            }
        }
        if let Some(b) = &self.broker {
            refolds += b.replica.refolds();
            refold_ops_replayed += b.replica.refold_ops_replayed();
        }
        DistStats {
            instances: self.nodes.len(),
            active: self.active_instances(),
            rounds: self.rounds,
            refolds,
            refold_ops_replayed,
            net: self.net.stats(),
        }
    }

    /// Transport counters.
    pub fn net_stats(&self) -> NetStats {
        self.net.stats()
    }

    /// Boots one instance on a specific machine and returns its id.
    /// Instances added before the first round are founding members
    /// (registered everywhere, no handshake); later additions are
    /// *churn*: the node announces itself with
    /// [`WireMessage::Join`], adopts the answering snapshot and
    /// catches up via deltas.
    pub fn add_instance(&mut self, rank: Rank, machine: Machine) -> usize {
        let id = self.nodes.len() as NodeId;
        let founding = self.rounds == 0;
        let sync = match self.dist.topology {
            DistTopology::BrokerStar => NodeSync::Star(StarState {
                cache: self.enhanced.knowledge.clone(),
                versions: vec![0; self.shard_count],
                unacked: BTreeMap::new(),
                dirty: false,
            }),
            DistTopology::Gossip { .. } => NodeSync::Gossip(Box::new(GossipState {
                replica: Self::boot_replica(
                    &self.config,
                    &self.enhanced.knowledge,
                    self.enhanced.app,
                ),
                outbox: Vec::new(),
                adopted: (0, 0),
            })),
        };
        self.nodes.push(DistNode {
            id,
            app: AdaptiveApplication::with_machine(self.enhanced.clone(), rank, machine),
            active: true,
            joined: founding,
            seq: 0,
            sync,
        });
        if founding {
            if let Some(broker) = self.broker.as_mut() {
                broker.members.insert(id);
            }
        } else {
            // Churn: announce over the (lossy) wire; resent every
            // sync interval until a snapshot arrives.
            match self.dist.topology {
                DistTopology::BrokerStar => {
                    self.net.send(id, BROKER, WireMessage::Join { node: id })
                }
                DistTopology::Gossip { .. } => {
                    if let Some(seed) = self.seed_peer(id) {
                        self.net.send(id, seed, WireMessage::Join { node: id });
                    } else {
                        // Nobody to learn from: the sole member needs
                        // no snapshot.
                        self.nodes.last_mut().expect("just pushed").joined = true;
                    }
                }
            }
        }
        let t_s = self.nodes[id as usize].app.now_s();
        self.emit(FleetEvent::Arrived {
            id: dense_id(id as usize),
            t_s,
        });
        id as usize
    }

    /// Boots `count` instances on machines forked from the app's own
    /// platform (mirrors [`crate::Fleet::spawn`], including the fork
    /// stream offset, so traces line up with the in-process fleet).
    pub fn spawn(&mut self, rank: &Rank, base_seed: u64, count: usize) -> Vec<usize> {
        let base = self.enhanced.platform.machine(base_seed);
        self.spawn_on(rank, &base, count)
    }

    /// Boots `count` instances on forks of an explicit base machine.
    pub fn spawn_on(&mut self, rank: &Rank, base: &Machine, count: usize) -> Vec<usize> {
        let stream_offset = self.nodes.len() as u64;
        (0..count)
            .map(|i| self.add_instance(rank.clone(), base.fork(stream_offset + i as u64)))
            .collect()
    }

    /// Retires an instance: it stops stepping and (best-effort) tells
    /// the broker to stop broadcasting to it. Returns `false` if it
    /// was already retired.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn retire_instance(&mut self, id: usize) -> bool {
        if !self.nodes[id].active {
            return false;
        }
        self.nodes[id].active = false;
        let node_id = self.nodes[id].id;
        if matches!(self.dist.topology, DistTopology::BrokerStar) {
            self.net
                .send(node_id, BROKER, WireMessage::Leave { node: node_id });
        }
        let t_s = self.nodes[id].app.now_s();
        self.emit(FleetEvent::Retired {
            id: dense_id(id),
            t_s,
        });
        true
    }

    /// The execution trace of instance `id` so far.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn trace(&self, id: usize) -> Vec<TraceSample> {
        self.nodes[id].app.trace().to_vec()
    }

    /// Virtual time of instance `id`, seconds.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn now_s(&self, id: usize) -> f64 {
        self.nodes[id].app.now_s()
    }

    /// Total energy drawn by instance `id`, joules.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn energy_j(&self, id: usize) -> f64 {
        self.nodes[id].app.energy_j()
    }

    /// Instance `id`'s current view of the shared knowledge.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node_knowledge(&self, id: usize) -> Knowledge<KnobConfig> {
        match &self.nodes[id].sync {
            NodeSync::Star(s) => s.cache.clone(),
            NodeSync::Gossip(g) => g.replica.knowledge(),
        }
    }

    /// Instance `id`'s per-shard epoch vector: broadcast versions in
    /// star mode, folded shard epochs in gossip mode. Equal across
    /// all connected nodes once the links drain.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn epoch_vector(&self, id: usize) -> Vec<u64> {
        match &self.nodes[id].sync {
            NodeSync::Star(s) => s.versions.clone(),
            NodeSync::Gossip(g) => g.replica.shard_epochs(),
        }
    }

    /// The authoritative effective knowledge: the broker's published
    /// knowledge (star) or the first active replica's fold (gossip;
    /// equal to everyone else's after [`drain`](Self::drain)). The
    /// design knowledge if the fleet is empty.
    pub fn authoritative_knowledge(&self) -> Knowledge<KnobConfig> {
        if let Some(broker) = &self.broker {
            return broker.published.clone();
        }
        for node in &self.nodes {
            if node.active {
                if let NodeSync::Gossip(g) = &node.sync {
                    return g.replica.knowledge();
                }
            }
        }
        self.enhanced.knowledge.clone()
    }

    /// Every observation the authoritative participant has logged, in
    /// canonical `(round, origin)` order — the input of the
    /// single-mutex reference fold the property tests compare
    /// against. Complete once [`drain`](Self::drain) returned.
    pub fn canonical_ops(&self) -> Vec<Observation> {
        if let Some(broker) = &self.broker {
            return broker.replica.ops().cloned().collect();
        }
        for node in &self.nodes {
            if node.active {
                if let NodeSync::Gossip(g) = &node.sync {
                    return g.replica.ops().cloned().collect();
                }
            }
        }
        Vec::new()
    }

    /// One synchronized round over all active instances; returns the
    /// number of steps taken.
    #[deprecated(
        since = "0.1.0",
        note = "use the FleetRuntime surface: run_events(1) runs one synchronized round"
    )]
    pub fn step_round(&mut self) -> usize {
        self.step_round_inner()
    }

    /// Steps rounds until every active instance advanced its own
    /// virtual clock by `duration_s` seconds (mirrors
    /// [`crate::Fleet::run_for`]).
    ///
    /// # Panics
    ///
    /// Panics if `duration_s` is not strictly positive.
    #[deprecated(
        since = "0.1.0",
        note = "use the FleetRuntime surface: run_until(t) advances to an absolute virtual time"
    )]
    pub fn run_for(&mut self, duration_s: f64) {
        assert!(duration_s > 0.0, "duration must be positive");
        let deadlines: Vec<f64> = self
            .nodes
            .iter()
            .map(|n| n.app.now_s() + duration_s)
            .collect();
        self.rounds_to_deadlines(&deadlines);
    }

    /// The non-deprecated internals of
    /// [`step_round`](Self::step_round), shared with the
    /// [`FleetRuntime`] surface.
    fn step_round_inner(&mut self) -> usize {
        let due: Vec<bool> = self.nodes.iter().map(|n| n.active).collect();
        self.round_with(&due)
    }

    /// Rounds until every active node has reached its own deadline;
    /// returns the rounds run.
    fn rounds_to_deadlines(&mut self, deadlines: &[f64]) -> u64 {
        let mut rounds = 0;
        loop {
            let due: Vec<bool> = self
                .nodes
                .iter()
                .zip(deadlines)
                .map(|(n, &deadline)| n.active && n.app.now_s() < deadline)
                .collect();
            if !due.iter().any(|&d| d) {
                return rounds;
            }
            self.round_with(&due);
            rounds += 1;
        }
    }

    /// Runs anti-entropy repair rounds — no application steps — until
    /// every connected node holds the same effective knowledge and
    /// nothing is left in flight; returns how many repair rounds that
    /// took. This is the "link drains" operation of the convergence
    /// contract: after it, [`converged`](Self::converged) holds and
    /// every node's knowledge equals the canonical fold of
    /// [`canonical_ops`](Self::canonical_ops).
    ///
    /// # Errors
    ///
    /// Returns a transport-stage error if convergence was not reached
    /// within [`DistributedConfig::max_drain_rounds`] (only possible
    /// under adversarial loss models; the seeded drop draws are
    /// independent per retransmission, so any `drop_prob < 1`
    /// converges with overwhelming probability).
    pub fn drain(&mut self) -> Result<u64, SocratesError> {
        for round in 0..self.dist.max_drain_rounds {
            self.net.tick();
            self.deliver_phase();
            self.adopt_phase();
            let content_ok = self.content_converged();
            let pending = self.exchange_pending();
            if content_ok && !pending && self.net.in_flight() == 0 {
                return Ok(round);
            }
            if !content_ok || pending {
                self.anti_entropy();
            }
            self.rounds += 1;
        }
        Err(SocratesError::transport(format!(
            "drain did not converge within {} repair rounds (loss model too adversarial \
             or max_drain_rounds too small)",
            self.dist.max_drain_rounds
        )))
    }

    /// Whether every connected node currently holds the same
    /// effective knowledge and epoch vector, with nothing in flight
    /// or pending retransmission.
    pub fn converged(&self) -> bool {
        self.content_converged() && !self.exchange_pending() && self.net.in_flight() == 0
    }

    // ---- round phases --------------------------------------------------

    fn round_with(&mut self, due: &[bool]) -> usize {
        assert_eq!(due.len(), self.nodes.len());
        self.net.tick();
        self.deliver_phase();
        self.adopt_phase();
        let stepped = self.step_phase(due);
        let steps = stepped.iter().filter(|s| s.is_some()).count();
        self.publish_phase(&stepped);
        self.rounds += 1;
        if !self.observers.is_empty() {
            // Sequential, after the barrier: observers see the round's
            // steps in node order, then each node's publish with its
            // own post-round epoch view. Pure consumers — the round is
            // bit-identical with or without them.
            for (idx, sample) in stepped.iter().enumerate() {
                let Some(sample) = sample else { continue };
                self.emit(FleetEvent::Stepped {
                    id: dense_id(idx),
                    t_start_s: sample.t_start_s,
                    time_s: sample.time_s,
                    power_w: sample.power_w,
                    forced: sample.forced,
                });
            }
            for (idx, sample) in stepped.iter().enumerate() {
                let Some(sample) = sample else { continue };
                // The distributed epoch is the node's own view: the
                // sum of its per-shard epoch vector (monotone under
                // broadcast/fold progress).
                let epoch = self.epoch_vector(idx).iter().sum();
                self.emit(FleetEvent::Published {
                    id: dense_id(idx),
                    t_s: sample.t_start_s + sample.time_s,
                    epoch,
                });
            }
        }
        steps
    }

    fn emit(&mut self, event: FleetEvent) {
        for observer in &mut self.observers {
            observer(&event);
        }
    }

    /// Hands out every due message in deterministic order, cascading
    /// broker flushes until the phase is quiescent (zero-latency
    /// replies deliver within the same phase — the property that
    /// makes an ideal link match the in-process barrier).
    fn deliver_phase(&mut self) {
        loop {
            let mut any = false;
            while let Some(env) = self.net.poll_due() {
                any = true;
                self.handle(env);
            }
            if self.flush_broker() {
                any = true;
            }
            if !any {
                break;
            }
        }
    }

    fn adopt_phase(&mut self) {
        for node in &mut self.nodes {
            if !node.active {
                continue;
            }
            match &mut node.sync {
                NodeSync::Star(s) => {
                    if s.dirty {
                        node.app.set_knowledge(s.cache.clone());
                        s.dirty = false;
                    }
                }
                NodeSync::Gossip(g) => {
                    g.replica.fold_pending();
                    let state = (g.replica.epoch(), g.replica.refolds());
                    if state != g.adopted {
                        node.app.set_knowledge(g.replica.knowledge());
                        g.adopted = state;
                    }
                }
            }
        }
    }

    fn step_phase(&mut self, due: &[bool]) -> Vec<Option<TraceSample>> {
        let cells: Vec<Mutex<&mut DistNode>> = self.nodes.iter_mut().map(Mutex::new).collect();
        let step_one = |i: usize| -> Option<TraceSample> {
            if !due[i] {
                return None;
            }
            let mut node = cells[i].lock().expect("each index locked exactly once");
            if !node.active {
                return None;
            }
            Some(node.app.step())
        };
        if self.config.parallel_step {
            (0..cells.len()).into_par_iter().map(step_one).collect()
        } else {
            (0..cells.len()).map(step_one).collect()
        }
    }

    fn publish_phase(&mut self, stepped: &[Option<TraceSample>]) {
        let round = self.rounds;
        let sync_due = round.is_multiple_of(self.dist.sync_interval);
        let active_ids: Vec<NodeId> = self
            .nodes
            .iter()
            .filter(|n| n.active)
            .map(|n| n.id)
            .collect();
        for (idx, sample) in stepped.iter().enumerate() {
            if !self.nodes[idx].active {
                continue;
            }
            let id = self.nodes[idx].id;
            // Emit this round's observation into the node's own side
            // of the exchange.
            if let Some(sample) = sample {
                let node = &mut self.nodes[idx];
                let op = Observation {
                    origin: id,
                    seq: node.seq,
                    round,
                    config: sample.config.clone(),
                    observed: sample.observed_metrics(),
                };
                node.seq += 1;
                match &mut node.sync {
                    NodeSync::Star(s) => {
                        s.unacked.insert(op.seq, op);
                    }
                    NodeSync::Gossip(g) => {
                        g.replica.insert(op.clone());
                        g.outbox.push(op);
                    }
                }
            }
            match &mut self.nodes[idx].sync {
                NodeSync::Star(s) => {
                    // Everything unacked goes (back) out every round;
                    // the broker deduplicates and acks a contiguous
                    // watermark.
                    if !s.unacked.is_empty() {
                        let ops: Vec<Observation> = s.unacked.values().cloned().collect();
                        self.net.send(id, BROKER, WireMessage::Ops { ops });
                    }
                    if sync_due {
                        let versions = s.versions.clone();
                        self.net
                            .send(id, BROKER, WireMessage::SyncRequest { versions });
                    }
                }
                NodeSync::Gossip(g) => {
                    let targets = gossip_targets(&active_ids, id, &self.dist.topology, round);
                    if !targets.is_empty() {
                        let outbox = std::mem::take(&mut g.outbox);
                        let summary = if sync_due {
                            Some(g.replica.summary())
                        } else {
                            None
                        };
                        for (i, &target) in targets.iter().enumerate() {
                            if !outbox.is_empty() {
                                self.net.send(
                                    id,
                                    target,
                                    WireMessage::Ops {
                                        ops: outbox.clone(),
                                    },
                                );
                            }
                            if i == 0 {
                                if let Some(counts) = &summary {
                                    self.net.send(
                                        id,
                                        target,
                                        WireMessage::Summary {
                                            counts: counts.clone(),
                                            reply: true,
                                        },
                                    );
                                }
                            }
                        }
                    } else {
                        g.outbox.clear();
                    }
                }
            }
            if !self.nodes[idx].joined && sync_due {
                self.resend_join(idx);
            }
        }
    }

    /// Drain-time repair traffic: resend everything pending and
    /// request reconciliation from every active node.
    fn anti_entropy(&mut self) {
        let round = self.rounds;
        let active_ids: Vec<NodeId> = self
            .nodes
            .iter()
            .filter(|n| n.active)
            .map(|n| n.id)
            .collect();
        for idx in 0..self.nodes.len() {
            if !self.nodes[idx].active {
                continue;
            }
            let id = self.nodes[idx].id;
            match &mut self.nodes[idx].sync {
                NodeSync::Star(s) => {
                    if !s.unacked.is_empty() {
                        let ops: Vec<Observation> = s.unacked.values().cloned().collect();
                        self.net.send(id, BROKER, WireMessage::Ops { ops });
                    }
                    let versions = s.versions.clone();
                    self.net
                        .send(id, BROKER, WireMessage::SyncRequest { versions });
                }
                NodeSync::Gossip(g) => {
                    let targets = gossip_targets(&active_ids, id, &self.dist.topology, round);
                    if let Some(&target) = targets.first() {
                        let outbox = std::mem::take(&mut g.outbox);
                        if !outbox.is_empty() {
                            self.net.send(id, target, WireMessage::Ops { ops: outbox });
                        }
                        self.net.send(
                            id,
                            target,
                            WireMessage::Summary {
                                counts: g.replica.summary(),
                                reply: true,
                            },
                        );
                    }
                }
            }
            if !self.nodes[idx].joined {
                self.resend_join(idx);
            }
        }
    }

    // ---- message handling ----------------------------------------------

    fn handle(&mut self, env: Envelope) {
        if env.to == BROKER {
            self.handle_broker(env);
            return;
        }
        let idx = env.to as usize;
        if idx >= self.nodes.len() {
            return;
        }
        match env.msg {
            WireMessage::Delta { shard, delta } => self.node_delta(idx, shard, &delta),
            WireMessage::SyncResponse {
                shard,
                version,
                points,
            } => self.node_sync_response(idx, shard, version, points),
            WireMessage::Welcome {
                knowledge,
                versions,
            } => self.node_welcome(idx, &knowledge, &versions),
            WireMessage::Ack { count } => {
                if let NodeSync::Star(s) = &mut self.nodes[idx].sync {
                    s.unacked.retain(|&seq, _| seq >= count);
                }
            }
            WireMessage::Ops { ops } => {
                if let NodeSync::Gossip(g) = &mut self.nodes[idx].sync {
                    for op in ops {
                        if g.replica.insert(op.clone()) {
                            // Fresh rumor: forward it on the next
                            // rotation.
                            g.outbox.push(op);
                        }
                    }
                }
            }
            WireMessage::Summary { counts, reply } => {
                let response = if let NodeSync::Gossip(g) = &self.nodes[idx].sync {
                    let missing = g.replica.missing_for(&counts);
                    let own = if reply {
                        Some(g.replica.summary())
                    } else {
                        None
                    };
                    Some((missing, own))
                } else {
                    None
                };
                if let Some((missing, own)) = response {
                    if !missing.is_empty() {
                        self.net
                            .send(env.to, env.from, WireMessage::Ops { ops: missing });
                    }
                    if let Some(counts) = own {
                        self.net.send(
                            env.to,
                            env.from,
                            WireMessage::Summary {
                                counts,
                                reply: false,
                            },
                        );
                    }
                }
            }
            WireMessage::WelcomeLog { ops } => {
                if let NodeSync::Gossip(g) = &mut self.nodes[idx].sync {
                    for op in ops {
                        g.replica.insert(op);
                    }
                }
                self.nodes[idx].joined = true;
            }
            WireMessage::Join { node } => {
                // A gossip peer asked us for a snapshot of the log.
                let ops: Option<Vec<Observation>> = match &self.nodes[idx].sync {
                    NodeSync::Gossip(g) => Some(g.replica.ops().cloned().collect()),
                    NodeSync::Star(_) => None,
                };
                if let Some(ops) = ops {
                    self.net.send(env.to, node, WireMessage::WelcomeLog { ops });
                }
            }
            WireMessage::Leave { .. } | WireMessage::SyncRequest { .. } => {}
        }
    }

    fn handle_broker(&mut self, env: Envelope) {
        let Some(broker) = self.broker.as_mut() else {
            return;
        };
        match env.msg {
            WireMessage::Ops { ops } => {
                for op in ops {
                    broker.replica.insert(op);
                }
                // Ack the sender's contiguous watermark so it can
                // stop retransmitting.
                let count = broker
                    .replica
                    .summary()
                    .iter()
                    .find(|(origin, _)| *origin == env.from)
                    .map_or(0, |&(_, count)| count);
                self.net.send(BROKER, env.from, WireMessage::Ack { count });
            }
            WireMessage::SyncRequest { versions } => {
                for shard in 0..self.shard_count {
                    let theirs = versions.get(shard).copied().unwrap_or(0);
                    if broker.versions[shard] > theirs {
                        let points: Vec<(usize, OperatingPoint<KnobConfig>)> = broker
                            .published
                            .points()
                            .iter()
                            .enumerate()
                            .filter(|(pos, _)| self.shard_map[*pos] == shard)
                            .map(|(pos, point)| (pos, point.clone()))
                            .collect();
                        self.net.send(
                            BROKER,
                            env.from,
                            WireMessage::SyncResponse {
                                shard,
                                version: broker.versions[shard],
                                points,
                            },
                        );
                    }
                }
            }
            WireMessage::Join { node } => {
                broker.members.insert(node);
                self.net.send(
                    BROKER,
                    node,
                    WireMessage::Welcome {
                        knowledge: broker.published.clone(),
                        versions: broker.versions.clone(),
                    },
                );
            }
            WireMessage::Leave { node } => {
                broker.members.remove(&node);
            }
            _ => {}
        }
    }

    fn node_delta(&mut self, idx: usize, shard: usize, delta: &KnowledgeDelta<KnobConfig>) {
        let NodeSync::Star(s) = &mut self.nodes[idx].sync else {
            return;
        };
        if shard >= s.versions.len() || delta.to_epoch <= s.versions[shard] {
            return; // stale or duplicated broadcast
        }
        if delta.from_epoch == s.versions[shard] && delta.apply_to(&mut s.cache) {
            s.versions[shard] = delta.to_epoch;
            s.dirty = true;
        } else {
            // A gap: at least one earlier broadcast for this shard
            // was lost or is still in flight. Ask for full state of
            // every stale shard.
            let versions = s.versions.clone();
            let id = self.nodes[idx].id;
            self.net
                .send(id, BROKER, WireMessage::SyncRequest { versions });
        }
    }

    fn node_sync_response(
        &mut self,
        idx: usize,
        shard: usize,
        version: u64,
        points: Vec<(usize, OperatingPoint<KnobConfig>)>,
    ) {
        let NodeSync::Star(s) = &mut self.nodes[idx].sync else {
            return;
        };
        if shard >= s.versions.len() || version <= s.versions[shard] {
            return; // already repaired by a newer response
        }
        for (pos, point) in points {
            s.cache.patch_point(pos, point);
        }
        s.versions[shard] = version;
        s.dirty = true;
    }

    fn node_welcome(&mut self, idx: usize, knowledge: &Knowledge<KnobConfig>, versions: &[u64]) {
        if let NodeSync::Star(s) = &mut self.nodes[idx].sync {
            let improved: Vec<usize> = (0..self.shard_count)
                .filter(|&shard| versions.get(shard).copied().unwrap_or(0) > s.versions[shard])
                .collect();
            if !improved.is_empty() {
                for (pos, point) in knowledge.points().iter().enumerate() {
                    if improved.contains(&self.shard_map[pos]) {
                        s.cache.patch_point(pos, point.clone());
                    }
                }
                for &shard in &improved {
                    s.versions[shard] = versions[shard];
                }
                s.dirty = true;
            }
        }
        self.nodes[idx].joined = true;
    }

    /// Folds the broker's newly arrived observations and broadcasts
    /// one per-shard delta for every changed shard. Returns whether
    /// anything progressed (so the deliver phase can cascade).
    fn flush_broker(&mut self) -> bool {
        let Some(broker) = self.broker.as_mut() else {
            return false;
        };
        broker.replica.fold_pending();
        let state = (broker.replica.epoch(), broker.replica.refolds());
        if state == broker.last_flush {
            return false;
        }
        broker.last_flush = state;
        let fresh = broker.replica.knowledge();
        let mut by_shard: BTreeMap<usize, Vec<(usize, OperatingPoint<KnobConfig>)>> =
            BTreeMap::new();
        for (pos, (old, new)) in broker
            .published
            .points()
            .iter()
            .zip(fresh.points())
            .enumerate()
        {
            if old != new {
                by_shard
                    .entry(self.shard_map[pos])
                    .or_default()
                    .push((pos, new.clone()));
            }
        }
        for (shard, changed) in by_shard {
            let from = broker.versions[shard];
            broker.versions[shard] = from + 1;
            let delta = KnowledgeDelta {
                from_epoch: from,
                to_epoch: from + 1,
                changed,
            };
            for &member in &broker.members {
                self.net.send(
                    BROKER,
                    member,
                    WireMessage::Delta {
                        shard,
                        delta: delta.clone(),
                    },
                );
            }
        }
        broker.published = fresh;
        true
    }

    fn resend_join(&mut self, idx: usize) {
        let id = self.nodes[idx].id;
        match self.dist.topology {
            DistTopology::BrokerStar => self.net.send(id, BROKER, WireMessage::Join { node: id }),
            DistTopology::Gossip { .. } => {
                if let Some(seed) = self.seed_peer(id) {
                    self.net.send(id, seed, WireMessage::Join { node: id });
                } else {
                    self.nodes[idx].joined = true;
                }
            }
        }
    }

    /// The lowest-id active node other than `id` (who a gossip joiner
    /// asks for its snapshot).
    fn seed_peer(&self, id: NodeId) -> Option<NodeId> {
        self.nodes
            .iter()
            .find(|n| n.active && n.id != id)
            .map(|n| n.id)
    }

    // ---- convergence ---------------------------------------------------

    /// Whether all connected participants expose the same effective
    /// knowledge and epoch vector.
    fn content_converged(&self) -> bool {
        match &self.broker {
            Some(broker) => {
                if broker.replica.pending() {
                    return false;
                }
                self.nodes
                    .iter()
                    .filter(|n| n.active)
                    .all(|n| match &n.sync {
                        NodeSync::Star(s) => {
                            n.joined && s.versions == broker.versions && s.cache == broker.published
                        }
                        NodeSync::Gossip(_) => false,
                    })
            }
            None => {
                /// A gossip replica's identity: the logged op-id set
                /// plus the folded shard epoch vector.
                type ReplicaState = (Vec<(u64, NodeId)>, Vec<u64>);
                let mut reference: Option<ReplicaState> = None;
                for node in self.nodes.iter().filter(|n| n.active) {
                    let NodeSync::Gossip(g) = &node.sync else {
                        return false;
                    };
                    if !node.joined || g.replica.pending() {
                        return false;
                    }
                    let state = (
                        g.replica.ops().map(Observation::op_id).collect::<Vec<_>>(),
                        g.replica.shard_epochs(),
                    );
                    match &reference {
                        None => reference = Some(state),
                        Some(r) => {
                            if *r != state {
                                return false;
                            }
                        }
                    }
                }
                true
            }
        }
    }

    /// Whether any node still has unacknowledged observations or
    /// unforwarded rumors.
    fn exchange_pending(&self) -> bool {
        self.nodes
            .iter()
            .filter(|n| n.active)
            .any(|n| match &n.sync {
                NodeSync::Star(s) => !s.unacked.is_empty(),
                NodeSync::Gossip(g) => !g.outbox.is_empty(),
            })
    }
}

impl FleetRuntime for DistributedFleet {
    /// Rounds until every active node's own virtual clock has reached
    /// the absolute time `t_s`; one scheduler event is one
    /// synchronized round (tick, deliver, adopt, step, publish). From
    /// a fresh boot this is exactly the historical `run_for(t_s)`
    /// round sequence, bit-identically.
    fn run_until(&mut self, t_s: f64) -> u64 {
        let deadlines = vec![t_s; self.nodes.len()];
        self.rounds_to_deadlines(&deadlines)
    }

    /// Runs `n` synchronized rounds (stopping early once no node is
    /// active); returns the rounds run.
    fn run_events(&mut self, n: u64) -> u64 {
        for done in 0..n {
            if self.step_round_inner() == 0 {
                return done;
            }
        }
        n
    }

    fn observe(&mut self, observer: EventObserver) {
        self.observers.push(observer);
    }

    /// The furthest virtual clock any node has reached.
    fn virtual_now_s(&self) -> f64 {
        self.nodes.iter().map(|n| n.app.now_s()).fold(0.0, f64::max)
    }

    fn active_count(&self) -> usize {
        self.active_instances()
    }
}

/// The rotation targets of gossip node `id` in `round`: `fanout`
/// distinct active peers, cycling through the whole peer set over
/// consecutive rounds so every pair reconciles periodically.
fn gossip_targets(
    active_ids: &[NodeId],
    id: NodeId,
    topology: &DistTopology,
    round: u64,
) -> Vec<NodeId> {
    let DistTopology::Gossip { fanout } = topology else {
        return Vec::new();
    };
    let peers: Vec<NodeId> = active_ids.iter().copied().filter(|&p| p != id).collect();
    if peers.is_empty() {
        return Vec::new();
    }
    let k = (*fanout).min(peers.len());
    let start = (round as usize).wrapping_mul(k) % peers.len();
    (0..k).map(|j| peers[(start + j) % peers.len()]).collect()
}

#[cfg(test)]
mod tests {
    // The pinned reference tests exercise the deprecated round surface
    // on purpose: it must stay bit-identical until removal.
    #![allow(deprecated)]

    use super::*;
    use crate::toolchain::Toolchain;
    use crate::transport::LinkConfig;
    use polybench::{App, Dataset};

    fn quick_enhanced() -> EnhancedApp {
        Toolchain {
            dataset: Dataset::Medium,
            dse_repetitions: 1,
            ..Toolchain::default()
        }
        .enhance(App::TwoMm)
        .unwrap()
    }

    fn dist_config(dist: DistributedConfig) -> FleetConfig {
        FleetConfig {
            exploration_interval: 0,
            distributed: Some(dist),
            ..FleetConfig::default()
        }
    }

    #[test]
    fn construction_rejects_unsupported_capabilities() {
        let enhanced = quick_enhanced();
        let missing = DistributedFleet::new(FleetConfig::default(), &enhanced);
        let err = missing.err().expect("distributed = None must be rejected");
        assert!(err.to_string().contains("distributed"), "{err}");

        let exploring = DistributedFleet::new(
            FleetConfig {
                exploration_interval: 4,
                distributed: Some(DistributedConfig::default()),
                ..FleetConfig::default()
            },
            &enhanced,
        );
        let err = exploring.err().expect("exploration must be rejected");
        assert!(err.to_string().contains("exploration_interval"), "{err}");

        let budgeted = DistributedFleet::new(
            FleetConfig {
                power_budget_w: Some(100.0),
                ..dist_config(DistributedConfig::default())
            },
            &enhanced,
        );
        let err = budgeted.err().expect("budget must be rejected");
        assert!(err.to_string().contains("power_budget_w"), "{err}");

        // And the in-process fleet rejects distributed configs.
        let wrong_door = crate::fleet::Fleet::new(dist_config(DistributedConfig::default()));
        let err = wrong_door.err().expect("Fleet must reject distributed");
        assert!(err.to_string().contains("DistributedFleet"), "{err}");
    }

    #[test]
    fn event_driven_schedules_cannot_go_distributed() {
        let enhanced = quick_enhanced();
        let err = DistributedFleet::new(
            FleetConfig {
                schedule: crate::fleet::Schedule::EventDriven,
                ..dist_config(DistributedConfig::default())
            },
            &enhanced,
        )
        .err()
        .expect("EventDriven + distributed is contradictory");
        assert!(err.to_string().contains("EventDriven"), "{err}");
        assert!(err.to_string().contains("Lockstep"), "{err}");
    }

    #[test]
    fn the_runtime_surface_matches_the_legacy_round_loop() {
        let enhanced = quick_enhanced();
        let boot = || {
            let mut fleet =
                DistributedFleet::new(dist_config(DistributedConfig::default()), &enhanced)
                    .unwrap();
            fleet.spawn(&Rank::throughput_per_watt2(), 9, 3);
            fleet
        };
        let mut legacy = boot();
        legacy.run_for(2.0);
        let mut unified = boot();
        let rounds = unified.run_until(2.0);
        assert!(rounds > 0);
        assert_eq!(unified.rounds(), legacy.rounds());
        assert!(unified.virtual_now_s() >= 2.0);
        assert_eq!(unified.active_count(), 3);
        for id in 0..3 {
            assert_eq!(unified.trace(id), legacy.trace(id), "node {id} diverged");
        }
        assert_eq!(
            unified.authoritative_knowledge(),
            legacy.authoritative_knowledge()
        );
        // run_events(n) is n synchronized rounds.
        let before = unified.rounds();
        assert_eq!(unified.run_events(2), 2);
        assert_eq!(unified.rounds(), before + 2);
    }

    #[test]
    fn observers_see_distributed_rounds_without_perturbing_them() {
        use std::sync::{Arc, Mutex};
        let enhanced = quick_enhanced();
        let run = |observe: bool| {
            let mut fleet =
                DistributedFleet::new(dist_config(DistributedConfig::default()), &enhanced)
                    .unwrap();
            let seen = Arc::new(Mutex::new(Vec::new()));
            if observe {
                let sink = Arc::clone(&seen);
                fleet.observe(Box::new(move |e: &FleetEvent| {
                    sink.lock().unwrap().push(e.clone());
                }));
            }
            fleet.spawn(&Rank::throughput_per_watt2(), 4, 2);
            fleet.run_events(3);
            fleet.retire_instance(0);
            let traces: Vec<_> = (0..2).map(|id| fleet.trace(id)).collect();
            drop(fleet);
            let events = Arc::try_unwrap(seen).unwrap().into_inner().unwrap();
            (traces, events)
        };
        let (plain, none) = run(false);
        let (observed, events) = run(true);
        assert!(none.is_empty());
        assert_eq!(plain, observed, "observers must not perturb the rounds");
        let arrived = events
            .iter()
            .filter(|e| matches!(e, FleetEvent::Arrived { .. }))
            .count();
        assert_eq!(arrived, 2);
        let stepped = events
            .iter()
            .filter(|e| matches!(e, FleetEvent::Stepped { .. }))
            .count();
        assert_eq!(stepped, 6, "2 nodes x 3 rounds");
        let published = events
            .iter()
            .filter(|e| matches!(e, FleetEvent::Published { .. }))
            .count();
        assert_eq!(published, 6, "every step publishes over the wire");
        assert!(events
            .iter()
            .any(|e| matches!(e, FleetEvent::Retired { id, .. } if *id == dense_id(0))));
    }

    #[test]
    fn construction_compiles_the_shared_kernel_on_both_engines() {
        let enhanced = quick_enhanced();
        let report = |engine: crate::ExecutionEngine| {
            DistributedFleet::new(
                FleetConfig {
                    engine,
                    ..dist_config(DistributedConfig::default())
                },
                &enhanced,
            )
            .unwrap()
            .kernel_report()
        };
        assert_eq!(
            report(crate::ExecutionEngine::Ast),
            report(crate::ExecutionEngine::Bytecode),
            "the distributed fleet's engines must be bit-identical"
        );
    }

    #[test]
    fn unbound_pragma_parameters_fail_fleet_construction() {
        // A weaved program whose pragma references a parameter the
        // functional spec does not bind: lowering must reject it when
        // the fleet is built, not mid-deployment.
        let mut enhanced = quick_enhanced();
        enhanced.app = App::Atax; // no baked kernel args
        enhanced.weaved = minic::parse(
            "double buf[N];\n\
             void kernel_free() {\n\
             #pragma omp parallel for num_threads(P_free)\n\
             for (int i = 0; i < N; i++) { buf[i] = 0.0; }\n\
             }\n",
        )
        .unwrap();
        enhanced.multiversioned.version_functions = vec!["kernel_free".to_string()];
        let err = DistributedFleet::new(dist_config(DistributedConfig::default()), &enhanced)
            .err()
            .expect("unbound pragma parameter must fail construction");
        assert_eq!(err.stage(), crate::StageId::Lower);
        assert!(err.to_string().contains("P_free"), "{err}");
    }

    #[test]
    fn ideal_star_fleet_steps_and_converges_every_round() {
        let enhanced = quick_enhanced();
        let mut fleet =
            DistributedFleet::new(dist_config(DistributedConfig::default()), &enhanced).unwrap();
        fleet.spawn(&Rank::throughput_per_watt2(), 3, 3);
        assert_eq!(fleet.active_instances(), 3);
        for _ in 0..4 {
            assert_eq!(fleet.step_round(), 3);
        }
        assert_eq!(fleet.drain().unwrap(), 0, "an ideal link has no backlog");
        assert!(fleet.converged());
        let authoritative = fleet.authoritative_knowledge();
        assert_ne!(
            authoritative, enhanced.knowledge,
            "merged observations must refresh expectations"
        );
        for id in 0..3 {
            assert_eq!(
                fleet.node_knowledge(id),
                authoritative,
                "node {id} diverged"
            );
            assert_eq!(fleet.epoch_vector(id), fleet.epoch_vector(0));
        }
        assert_eq!(fleet.canonical_ops().len(), 12);
    }

    #[test]
    fn lossy_gossip_fleet_converges_after_drain() {
        let enhanced = quick_enhanced();
        let dist = DistributedConfig {
            topology: DistTopology::Gossip { fanout: 1 },
            link: LinkConfig {
                seed: 11,
                min_latency: 0,
                max_latency: 3,
                drop_prob: 0.3,
                dup_prob: 0.1,
            },
            ..DistributedConfig::default()
        };
        let mut fleet = DistributedFleet::new(dist_config(dist), &enhanced).unwrap();
        fleet.spawn(&Rank::throughput_per_watt2(), 5, 4);
        for _ in 0..6 {
            fleet.step_round();
        }
        fleet.drain().expect("a 30% loss model must drain");
        assert!(fleet.converged());
        let reference = fleet.node_knowledge(0);
        for id in 1..4 {
            assert_eq!(fleet.node_knowledge(id), reference, "node {id} diverged");
            assert_eq!(fleet.epoch_vector(id), fleet.epoch_vector(0));
        }
        let stats = fleet.stats();
        assert!(stats.net.dropped > 0, "the loss model must have dropped");
        assert_eq!(stats.active, 4);
    }

    #[test]
    fn late_joiner_adopts_snapshot_and_catches_up() {
        let enhanced = quick_enhanced();
        let mut fleet =
            DistributedFleet::new(dist_config(DistributedConfig::default()), &enhanced).unwrap();
        fleet.spawn(&Rank::throughput_per_watt2(), 7, 2);
        for _ in 0..5 {
            fleet.step_round();
        }
        let late = fleet.add_instance(Rank::throughput_per_watt2(), enhanced.platform.machine(99));
        for _ in 0..5 {
            fleet.step_round();
        }
        fleet.drain().unwrap();
        assert_eq!(
            fleet.node_knowledge(late),
            fleet.authoritative_knowledge(),
            "the joiner must reach the fleet's knowledge exactly"
        );
        assert!(fleet.trace(late).len() >= 5, "the joiner stepped");
    }

    #[test]
    fn warm_started_nodes_and_late_joiners_boot_on_the_shipped_snapshot() {
        use crate::snapshot::SnapshotFingerprint;
        let enhanced = quick_enhanced();
        // A donor in-process fleet learns, then cuts the snapshot the
        // distributed deployment ships.
        let mut donor = crate::fleet::Fleet::new(FleetConfig::default()).unwrap();
        donor.spawn(&enhanced, &Rank::throughput_per_watt2(), 3, 2);
        donor.run_for(2.0);
        let snapshot = donor
            .knowledge_snapshot(
                App::TwoMm,
                SnapshotFingerprint::new(App::TwoMm.name(), "Medium", 0),
            )
            .unwrap();
        let warmed = snapshot.apply_to_design(&enhanced.knowledge);
        assert_ne!(warmed, enhanced.knowledge);

        let mut fleet = DistributedFleet::new(
            FleetConfig {
                warm_start: Some(snapshot),
                ..dist_config(DistributedConfig::default())
            },
            &enhanced,
        )
        .unwrap();
        fleet.spawn(&Rank::throughput_per_watt2(), 7, 2);
        assert_eq!(
            fleet.authoritative_knowledge(),
            warmed,
            "the broker publishes the warmed state from round zero"
        );
        for id in 0..2 {
            assert_eq!(fleet.node_knowledge(id), warmed, "node {id} booted cold");
        }
        fleet.step_round();
        // A churn joiner is welcomed with the warmed (and since
        // updated) knowledge, never the cold design state.
        let late = fleet.add_instance(Rank::throughput_per_watt2(), enhanced.platform.machine(42));
        fleet.step_round();
        fleet.drain().unwrap();
        assert_eq!(fleet.node_knowledge(late), fleet.authoritative_knowledge());
        assert_ne!(fleet.node_knowledge(late), enhanced.knowledge);
    }

    #[test]
    fn retired_instances_stop_stepping_but_the_rest_converge() {
        let enhanced = quick_enhanced();
        let mut fleet =
            DistributedFleet::new(dist_config(DistributedConfig::default()), &enhanced).unwrap();
        fleet.spawn(&Rank::throughput_per_watt2(), 3, 3);
        fleet.step_round();
        assert!(fleet.retire_instance(0));
        assert!(!fleet.retire_instance(0), "already retired");
        let frozen = fleet.trace(0).len();
        assert_eq!(fleet.step_round(), 2);
        assert_eq!(fleet.trace(0).len(), frozen);
        fleet.drain().unwrap();
        assert_eq!(fleet.node_knowledge(1), fleet.node_knowledge(2));
    }
}
