//! # socrates — seamless online compiler and system-runtime autotuning
//!
//! Rust reproduction of **SOCRATES** (Gadioli et al., DATE 2018): a
//! framework that takes a plain C application and — with *no manual
//! intervention* — produces an adaptive binary that selects compiler
//! options (CO), OpenMP thread count (TN) and binding policy (BP) at
//! runtime, according to changeable energy/performance requirements.
//!
//! The [`Toolchain`] reproduces the paper's Fig. 1 flow:
//!
//! 1. **GCC-Milepost** static kernel features → [`milepost`];
//! 2. **COBAYN** Bayesian-network flag prediction → [`cobayn`];
//! 3. **LARA/MANET** weaving (`Multiversioning` + `Autotuner`) → [`lara`];
//! 4. **mARGOt** profiling (full-factorial DSE) and runtime selection →
//!    [`dse`] + [`margot`];
//!
//! and the [`AdaptiveApplication`] replays the weaved binary's MAPE-K
//! loop on the simulated NUMA platform ([`platform_sim`]).
//!
//! ## Example
//!
//! ```no_run
//! use socrates::{AdaptiveApplication, Toolchain};
//! use margot::{Metric, Rank};
//! use polybench::App;
//!
//! let enhanced = Toolchain::default().enhance(App::TwoMm).unwrap();
//! println!("Table I row: {}", enhanced.metrics);
//!
//! let mut app = AdaptiveApplication::new(enhanced, Rank::throughput_per_watt2(), 42);
//! app.run_for(10.0); // ten virtual seconds of adaptive execution
//! app.set_rank(Rank::maximize(Metric::throughput()));
//! app.run_for(10.0);
//! ```

#![warn(missing_docs)]

mod error;
mod knowledge_io;
mod runtime;
mod toolchain;
mod trace;

pub use error::ToolchainError;
pub use knowledge_io::{
    knowledge_from_json, knowledge_to_json, load_knowledge, save_knowledge, KnowledgeIoError,
};
pub use runtime::{AdaptiveApplication, TraceSample};
pub use toolchain::{EnhancedApp, Toolchain};
pub use trace::{windowed_stats, TraceStats};
