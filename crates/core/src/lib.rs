//! # socrates — seamless online compiler and system-runtime autotuning
//!
//! Rust reproduction of **SOCRATES** (Gadioli et al., DATE 2018): a
//! framework that takes a plain C application and — with *no manual
//! intervention* — produces an adaptive binary that selects compiler
//! options (CO), OpenMP thread count (TN) and binding policy (BP) at
//! runtime, according to changeable energy/performance requirements.
//!
//! The design-time flow (paper Fig. 1) is a **staged pipeline** of
//! composable [`Stage`]s over a shared [`ArtifactStore`]:
//!
//! 1. **parse** the original C source → [`ParsedSource`] ([`minic`]);
//! 2. **features**: GCC-Milepost static kernel counters →
//!    [`KernelFeatures`] ([`milepost`]);
//! 3. **predict**: COBAYN Bayesian-network flag prediction, trained
//!    leave-one-out over the shared corpus → [`FlagPredictions`]
//!    ([`cobayn`]);
//! 4. **weave**: LARA/MANET `Multiversioning` + `Autotuner` →
//!    [`WeavedProgram`] ([`lara`]);
//! 5. **profile**: full-factorial DSE on the configured [`Platform`] →
//!    [`ProfiledKnowledge`] ([`dse`]);
//! 6. **assemble** everything into an [`EnhancedApp`].
//!
//! [`Toolchain::enhance`] runs the pipeline for one application;
//! [`Toolchain::enhance_all`] batches a whole suite with one shared
//! store (the COBAYN corpus is built once, not once per target) and
//! fans targets out over rayon, bit-identical to the serial path. The
//! [`AdaptiveApplication`] then replays the weaved binary's MAPE-K loop
//! on the simulated NUMA platform ([`platform_sim`]), and a [`Fleet`]
//! steps many such instances concurrently while they share a live,
//! epoch-versioned knowledge base ([`margot::SharedKnowledge`]),
//! sweep the design space cooperatively and split a global power
//! budget — the paper's *online* loop at deployment scale. A
//! [`DistributedFleet`] takes the same loop across process
//! boundaries: instances exchange serialised knowledge deltas over a
//! deterministic simulated transport ([`transport`]) with seeded
//! latency, reordering, drop and duplication, reconciling via
//! per-shard epoch vectors until every node converges onto the same
//! effective knowledge.
//!
//! All three runtimes share one stepping surface, [`FleetRuntime`]
//! (`run_until` / `run_events` / event-stream observers). Under
//! [`Schedule::EventDriven`] the round loop gives way to a
//! discrete-event scheduler ([`EventFleet`]): instances are sparse
//! slab entries with never-reused generational handles
//! ([`InstanceId`]), knowledge merges per publish event instead of at
//! barriers, and seeded [`WorkloadTrace`]s drive arrivals and
//! retirements as events — a million concurrent instances in one
//! process, replayable bit-identically from their seeds.
//!
//! ## Example
//!
//! ```no_run
//! use socrates::{AdaptiveApplication, Toolchain};
//! use margot::{Metric, Rank};
//! use polybench::App;
//!
//! // Batch-enhance two apps; the COBAYN corpus is shared.
//! let enhanced = Toolchain::default()
//!     .enhance_all(&[App::TwoMm, App::Mvt])
//!     .unwrap();
//! println!("Table I row: {}", enhanced[0].metrics);
//!
//! let mut app = AdaptiveApplication::new(
//!     enhanced.into_iter().next().unwrap(),
//!     Rank::throughput_per_watt2(),
//!     42,
//! );
//! app.run_for(10.0); // ten virtual seconds of adaptive execution
//! app.set_rank(Rank::maximize(Metric::throughput()));
//! app.run_for(10.0);
//! ```

#![warn(missing_docs)]

mod artifact;
mod engine;
mod error;
mod events;
mod fleet;
mod fleet_dist;
mod fleet_events;
mod knowledge_io;
mod pipeline;
mod platform;
mod runtime;
mod snapshot;
mod toolchain;
mod trace;
pub mod transport;

pub use artifact::{
    ArtifactStore, FlagPredictions, KernelFeatures, ParsedSource, ProfiledKnowledge, StoreStats,
    WeavedProgram, KNOWLEDGE_FORMAT_VERSION,
};
pub use engine::{
    analysis_prune, analyze_kernel, analyze_kernel_for, compile_kernel, compile_kernel_for,
    ensure_safe, full_scale_spec, functional_dims, functional_spec, CompiledKernel,
    ExecutionEngine, FUNCTIONAL_DIM_CAP,
};
pub use error::{KnowledgeIoError, SocratesError, StageId, ToolchainError};
pub use events::{EventObserver, FleetEvent, FleetRuntime, InstanceId};
pub use fleet::{
    Fleet, FleetConfig, FleetConfigBuilder, FleetStats, Schedule, FLEET_POWER_PRIORITY,
};
pub use fleet_dist::{DistStats, DistributedFleet};
pub use fleet_events::{Arrival, EventFleet, EventFleetStats, WorkloadCurve, WorkloadTrace};
pub use knowledge_io::{
    delta_from_bytes, delta_from_json, delta_to_bytes, delta_to_json, knowledge_from_json,
    knowledge_to_json, load_knowledge, save_knowledge, wire_from_bytes, wire_from_json,
    wire_to_bytes, wire_to_json, WIRE_MAGIC,
};
pub use minivm::ExecutionReport;
pub use pipeline::{socrates_pipeline, stages, Pipeline, Stage, StageContext};
pub use platform::Platform;
pub use runtime::{AdaptiveApplication, TraceSample};
pub use snapshot::{
    cosine_distance, nearest_neighbour, KnowledgeSnapshot, SnapshotDelta, SnapshotFingerprint,
    SNAPSHOT_DELTA_MAGIC, SNAPSHOT_FORMAT_VERSION, SNAPSHOT_MAGIC,
};
pub use toolchain::{EnhancedApp, Toolchain};
pub use trace::{trace_digest, windowed_stats, TraceStats};
pub use transport::{DistTopology, DistributedConfig, LinkConfig};
