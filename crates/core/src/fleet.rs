//! The fleet runtime orchestrator: SOCRATES' *online* loop at scale.
//!
//! After the design-time toolchain ships an enhanced binary, deployment
//! is not one process on one machine — it is many instances, on
//! heterogeneous machines, all running the same MAPE-K loop. A
//! [`Fleet`] boots N [`AdaptiveApplication`] instances and steps them
//! concurrently over rayon on the virtual clock, while a shared
//! [`margot::SharedKnowledge`] layer per application lets every
//! instance publish its monitor observations and pull the others'
//! discoveries (the Collective-Mind-style crowdsourced repository).
//!
//! Three fleet-level mechanisms ride on top of the per-instance loop:
//!
//! - **Online knowledge sharing** — each step's observation is merged
//!   into the shared knowledge at a deterministic round barrier; each
//!   instance detects refreshed knowledge with one epoch load and
//!   adopts it before its next plan step.
//! - **Cooperative exploration** — a [`dse::ExplorationSchedule`]
//!   assigns still-unobserved configurations round-robin across the
//!   instances, so the fleet sweeps the design space online once
//!   instead of N times (or never).
//! - **Power-budget arbitration** — a global watt budget is split
//!   evenly across active instances by adjusting each AS-RTM's power
//!   constraint as instances join and leave.
//!
//! Rounds are **bit-identical at any rayon thread count**: instances
//! only read shared state during the parallel phase, and all mutation
//! (publish + schedule bookkeeping) happens sequentially in instance
//! order at the barrier (pinned by `tests/fleet_equivalence.rs`).

use crate::error::SocratesError;
use crate::knowledge_io::save_knowledge;
use crate::runtime::{AdaptiveApplication, TraceSample};
use crate::toolchain::EnhancedApp;
use dse::ExplorationSchedule;
use margot::{Cmp, Constraint, Knowledge, Metric, Rank, SharedKnowledge};
use platform_sim::{KnobConfig, Machine};
use polybench::App;
use rayon::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Priority of the constraint the power arbiter manages on each
/// instance (higher than typical application constraints, so the global
/// budget wins when the feasible region empties).
pub const FLEET_POWER_PRIORITY: u32 = 50;

/// Fleet-level policy knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// Whether instances publish observations into (and pull refreshed
    /// points from) the shared knowledge. Off = the frozen
    /// design-time-knowledge baseline.
    pub share_knowledge: bool,
    /// Every `exploration_interval`-th step of an instance executes a
    /// coordinator-assigned unexplored configuration instead of the
    /// AS-RTM pick (0 disables cooperative exploration). Only active
    /// while `share_knowledge` is on — exploration without publishing
    /// would be pure overhead.
    pub exploration_interval: u64,
    /// Sliding-window length of the shared per-point observation merge.
    pub knowledge_window: usize,
    /// Observations a shared point needs before its window mean
    /// overrides the design-time expectation.
    pub min_observations: u64,
    /// Global power budget (watts) split across active instances;
    /// `None` leaves every instance unconstrained.
    pub power_budget_w: Option<f64>,
    /// Step rounds over rayon (`true`) or on the calling thread
    /// (`false`, the sequential reference the equivalence tests pin the
    /// parallel path against).
    pub parallel_step: bool,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            share_knowledge: true,
            exploration_interval: 4,
            knowledge_window: 8,
            min_observations: 1,
            power_budget_w: None,
            parallel_step: true,
        }
    }
}

/// One shared-knowledge pool: all instances of the same application
/// (same design-time knowledge) publish into and pull from it.
struct Pool {
    app: App,
    design: Knowledge<KnobConfig>,
    shared: SharedKnowledge<KnobConfig>,
    schedule: ExplorationSchedule<KnobConfig>,
    /// Effective-knowledge snapshot rebuilt **once per pool** at the
    /// round barrier (and only when the epoch moved); the parallel
    /// phase hands stale instances a clone of this without touching
    /// the pool lock.
    cache_epoch: u64,
    cache: Knowledge<KnobConfig>,
}

impl Pool {
    /// Refreshes the cached snapshot if publishes moved the epoch.
    /// Called only from barrier (sequential) code.
    fn refresh_cache(&mut self) {
        if self.shared.epoch() != self.cache_epoch {
            let (epoch, knowledge) = self.shared.snapshot();
            self.cache_epoch = epoch;
            self.cache = knowledge;
        }
    }
}

/// One fleet member.
struct Instance {
    app: AdaptiveApplication,
    pool: usize,
    /// Last shared-knowledge epoch this instance adopted.
    epoch: u64,
    steps: u64,
    /// Exploration configuration assigned for the next step.
    assigned: Option<KnobConfig>,
    active: bool,
    /// Whether the power arbiter installed a constraint on this
    /// instance (so budget removal only removes what the fleet added).
    arbited: bool,
}

/// A fleet of concurrently stepping adaptive-application instances
/// sharing a live knowledge base.
///
/// # Examples
///
/// ```no_run
/// use socrates::{Fleet, FleetConfig, Toolchain};
/// use margot::Rank;
/// use polybench::App;
///
/// let enhanced = Toolchain::default().enhance(App::TwoMm).unwrap();
/// let mut fleet = Fleet::new(FleetConfig::default());
/// fleet.spawn(&enhanced, &Rank::throughput_per_watt2(), 42, 8);
/// fleet.set_power_budget(Some(8.0 * 90.0));
/// fleet.run_for(60.0); // 60 virtual seconds of cooperative adaptation
/// ```
pub struct Fleet {
    config: FleetConfig,
    pools: Vec<Pool>,
    instances: Vec<Mutex<Instance>>,
    rounds: u64,
}

impl Default for Fleet {
    fn default() -> Self {
        Fleet::new(FleetConfig::default())
    }
}

impl Fleet {
    /// An empty fleet with the given policy.
    pub fn new(config: FleetConfig) -> Self {
        Fleet {
            config,
            pools: Vec::new(),
            instances: Vec::new(),
            rounds: 0,
        }
    }

    /// The fleet policy.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Number of instances ever added (including retired ones).
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// Whether the fleet has no instances.
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }

    /// Number of instances still stepping.
    pub fn active_instances(&self) -> usize {
        self.instances
            .iter()
            .filter(|m| m.lock().expect("instance poisoned").active)
            .count()
    }

    /// Rounds stepped so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Boots one instance on a specific machine (which may differ from
    /// the profiled platform — deployment drift) and returns its id.
    /// The instance immediately adopts the pool's current shared
    /// knowledge, inheriting everything the fleet already learned.
    pub fn add_instance(&mut self, enhanced: EnhancedApp, rank: Rank, machine: Machine) -> usize {
        let pool = self.pool_for(&enhanced);
        let mut app = AdaptiveApplication::with_machine(enhanced, rank, machine);
        let epoch = if self.config.share_knowledge {
            self.pools[pool].refresh_cache();
            app.set_knowledge(self.pools[pool].cache.clone());
            self.pools[pool].cache_epoch
        } else {
            0
        };
        self.instances.push(Mutex::new(Instance {
            app,
            pool,
            epoch,
            steps: 0,
            assigned: None,
            active: true,
            arbited: false,
        }));
        self.rebalance_power();
        self.instances.len() - 1
    }

    /// Boots `count` instances of one enhanced app on machines forked
    /// from the app's own platform (independent per-instance noise
    /// streams derived from `base_seed`); returns their ids.
    pub fn spawn(
        &mut self,
        enhanced: &EnhancedApp,
        rank: &Rank,
        base_seed: u64,
        count: usize,
    ) -> Vec<usize> {
        let base = enhanced.platform.machine(base_seed);
        self.spawn_on(enhanced, rank, &base, count)
    }

    /// Boots `count` instances on forks of an explicit base machine —
    /// how experiments deploy a fleet onto drifted hardware (e.g.
    /// [`crate::Platform::hotter`]). Fork streams are offset by the
    /// current fleet size, so repeated spawns (and mixed-app fleets)
    /// never hand two instances the same noise stream.
    pub fn spawn_on(
        &mut self,
        enhanced: &EnhancedApp,
        rank: &Rank,
        base: &Machine,
        count: usize,
    ) -> Vec<usize> {
        let stream_offset = self.instances.len() as u64;
        (0..count)
            .map(|i| {
                self.add_instance(
                    enhanced.clone(),
                    rank.clone(),
                    base.fork(stream_offset + i as u64),
                )
            })
            .collect()
    }

    /// Retires an instance: it stops stepping and its power share is
    /// redistributed to the remaining active instances. Returns `false`
    /// if it was already retired.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn retire_instance(&mut self, id: usize) -> bool {
        let inst = self.instances[id].get_mut().expect("instance poisoned");
        if !inst.active {
            return false;
        }
        inst.active = false;
        if inst.arbited {
            inst.app
                .manager_mut()
                .asrtm_mut()
                .remove_constraints_on(&Metric::power());
            inst.arbited = false;
        }
        self.rebalance_power();
        true
    }

    /// Sets (or clears) the global power budget and re-splits it across
    /// the active instances.
    ///
    /// The arbiter *owns* each instance's power constraint: do not add
    /// your own constraint on [`Metric::power`] to fleet members while
    /// a budget is active.
    pub fn set_power_budget(&mut self, budget_w: Option<f64>) {
        if let Some(w) = budget_w {
            assert!(
                w.is_finite() && w > 0.0,
                "power budget {w} W must be positive"
            );
        }
        self.config.power_budget_w = budget_w;
        self.rebalance_power();
    }

    /// Each active instance's current power allocation, watts.
    pub fn power_share_w(&self) -> Option<f64> {
        let active = self.active_instances();
        match self.config.power_budget_w {
            Some(w) if active > 0 => Some(w / active as f64),
            _ => None,
        }
    }

    /// One synchronized round: every active instance performs one
    /// MAPE-K (or exploration) step concurrently, then all observations
    /// are merged into the shared knowledge in instance order. Returns
    /// the number of steps taken.
    pub fn step_round(&mut self) -> usize {
        let due: Vec<bool> = self
            .instances
            .iter_mut()
            .map(|m| m.get_mut().expect("instance poisoned").active)
            .collect();
        self.round_with(&due)
    }

    /// Steps rounds until every active instance has advanced its own
    /// virtual clock by `duration_s` seconds (instances run at their
    /// own speed: faster ones take more invocations per wall round).
    ///
    /// # Panics
    ///
    /// Panics if `duration_s` is not strictly positive.
    pub fn run_for(&mut self, duration_s: f64) {
        assert!(duration_s > 0.0, "duration must be positive");
        let deadlines: Vec<f64> = self
            .instances
            .iter_mut()
            .map(|m| {
                let inst = m.get_mut().expect("instance poisoned");
                inst.app.now_s() + duration_s
            })
            .collect();
        loop {
            let due: Vec<bool> = self
                .instances
                .iter_mut()
                .zip(&deadlines)
                .map(|(m, &deadline)| {
                    let inst = m.get_mut().expect("instance poisoned");
                    inst.active && inst.app.now_s() < deadline
                })
                .collect();
            if !due.iter().any(|&d| d) {
                break;
            }
            self.round_with(&due);
        }
    }

    /// The execution trace of instance `id` so far.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn trace(&self, id: usize) -> Vec<TraceSample> {
        self.instances[id]
            .lock()
            .expect("instance poisoned")
            .app
            .trace()
            .to_vec()
    }

    /// Virtual time of instance `id`, seconds.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn now_s(&self, id: usize) -> f64 {
        self.instances[id]
            .lock()
            .expect("instance poisoned")
            .app
            .now_s()
    }

    /// Total energy drawn by instance `id`, joules.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn energy_j(&self, id: usize) -> f64 {
        self.instances[id]
            .lock()
            .expect("instance poisoned")
            .app
            .energy_j()
    }

    /// Runs `f` against instance `id`'s adaptive application (e.g. to
    /// switch its rank mid-run).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn with_instance_mut<R>(
        &mut self,
        id: usize,
        f: impl FnOnce(&mut AdaptiveApplication) -> R,
    ) -> R {
        f(&mut self.instances[id].get_mut().expect("instance poisoned").app)
    }

    /// The current merged (online) knowledge for `app`, or `None` if no
    /// instance of it was ever added. If several pools share the
    /// application (different design knowledge), the first-created
    /// pool is reported; use [`Fleet::persist_learned`] to export all.
    pub fn learned_knowledge(&self, app: App) -> Option<Knowledge<KnobConfig>> {
        self.pools
            .iter()
            .find(|p| p.app == app)
            .map(|p| p.shared.knowledge())
    }

    /// The shared-knowledge epoch for `app` (how many observations the
    /// fleet has merged), or `None` if unknown.
    pub fn knowledge_epoch(&self, app: App) -> Option<u64> {
        self.pools
            .iter()
            .find(|p| p.app == app)
            .map(|p| p.shared.epoch())
    }

    /// Online design-space coverage for `app`: `(covered, total)`
    /// operating points, or `None` if unknown.
    pub fn exploration_coverage(&self, app: App) -> Option<(usize, usize)> {
        self.pools.iter().find(|p| p.app == app).map(|p| {
            (
                p.schedule.total() - p.schedule.remaining(),
                p.schedule.total(),
            )
        })
    }

    /// Persists every pool's learned knowledge as
    /// `<dir>/<app>_learned.json` (loadable with
    /// [`crate::load_knowledge`], so a future toolchain run can seed
    /// from deployment experience); returns the written paths. When
    /// several pools share an application name (instances enhanced by
    /// different toolchain configurations), later pools get a
    /// `_<pool index>` suffix instead of overwriting the first.
    ///
    /// # Errors
    ///
    /// Returns a persist-stage [`SocratesError`] on I/O failure.
    pub fn persist_learned(&self, dir: impl AsRef<Path>) -> Result<Vec<PathBuf>, SocratesError> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir).map_err(|e| SocratesError::io(dir, e))?;
        let mut written: Vec<PathBuf> = Vec::with_capacity(self.pools.len());
        for (i, pool) in self.pools.iter().enumerate() {
            let first_of_app = self
                .pools
                .iter()
                .position(|p| p.app == pool.app)
                .expect("pool exists");
            let path = if first_of_app == i {
                dir.join(format!("{}_learned.json", pool.app.name()))
            } else {
                dir.join(format!("{}_learned_{i}.json", pool.app.name()))
            };
            save_knowledge(&pool.shared.knowledge(), &path)?;
            written.push(path);
        }
        Ok(written)
    }

    /// Finds (or creates) the shared pool for an enhanced app. Pools
    /// are keyed by application *and* design knowledge, so instances
    /// enhanced by different toolchain configurations never cross-feed
    /// incompatible operating points.
    fn pool_for(&mut self, enhanced: &EnhancedApp) -> usize {
        if let Some(i) = self
            .pools
            .iter()
            .position(|p| p.app == enhanced.app && p.design == enhanced.knowledge)
        {
            return i;
        }
        let configs: Vec<KnobConfig> = enhanced
            .knowledge
            .points()
            .iter()
            .map(|p| p.config.clone())
            .collect();
        self.pools.push(Pool {
            app: enhanced.app,
            design: enhanced.knowledge.clone(),
            shared: SharedKnowledge::new(enhanced.knowledge.clone(), self.config.knowledge_window)
                .with_min_observations(self.config.min_observations),
            schedule: ExplorationSchedule::new(configs),
            cache_epoch: 0,
            cache: enhanced.knowledge.clone(),
        });
        self.pools.len() - 1
    }

    /// Splits the global budget evenly across active instances.
    fn rebalance_power(&mut self) {
        let active = self
            .instances
            .iter_mut()
            .map(|m| m.get_mut().expect("instance poisoned").active)
            .filter(|&a| a)
            .count();
        let share = match self.config.power_budget_w {
            Some(w) if active > 0 => Some(w / active as f64),
            _ => None,
        };
        for m in &mut self.instances {
            let inst = m.get_mut().expect("instance poisoned");
            if !inst.active {
                continue;
            }
            match share {
                Some(per_instance) => {
                    if inst.arbited {
                        inst.app
                            .manager_mut()
                            .asrtm_mut()
                            .set_constraint_value(&Metric::power(), per_instance);
                    } else {
                        inst.app.add_constraint(Constraint::new(
                            Metric::power(),
                            Cmp::LessOrEqual,
                            per_instance,
                            FLEET_POWER_PRIORITY,
                        ));
                        inst.arbited = true;
                    }
                }
                None => {
                    if inst.arbited {
                        inst.app
                            .manager_mut()
                            .asrtm_mut()
                            .remove_constraints_on(&Metric::power());
                        inst.arbited = false;
                    }
                }
            }
        }
    }

    /// One round over the instances marked due: assign exploration
    /// slots (sequential), step (parallel), merge observations
    /// (sequential, instance order — the determinism barrier).
    fn round_with(&mut self, due: &[bool]) -> usize {
        assert_eq!(due.len(), self.instances.len());
        let interval = self.config.exploration_interval;
        if self.config.share_knowledge && interval > 0 {
            for (id, &is_due) in due.iter().enumerate() {
                if !is_due {
                    continue;
                }
                let (pool, explore) = {
                    let inst = self.instances[id].get_mut().expect("instance poisoned");
                    if !inst.active {
                        continue;
                    }
                    (inst.pool, inst.steps % interval == interval - 1)
                };
                if explore {
                    let assigned = self.pools[pool].schedule.next_unexplored();
                    self.instances[id]
                        .get_mut()
                        .expect("instance poisoned")
                        .assigned = assigned;
                }
            }
        }

        let pools = &self.pools;
        let config = &self.config;
        let instances = &self.instances;
        let step_one = |id: usize| -> Option<(usize, TraceSample)> {
            if !due[id] {
                return None;
            }
            let mut inst = instances[id].lock().expect("instance poisoned");
            if !inst.active {
                return None;
            }
            if config.share_knowledge {
                // Epoch probe against the pool's barrier-time cache:
                // no lock and no per-instance snapshot rebuild; the
                // clone only happens when the fleet actually learned
                // something since this instance last synced. In steady
                // state every round publishes, so this is one knowledge
                // clone per instance per round — the price of always
                // planning on fresh expectations.
                let pool = &pools[inst.pool];
                if pool.cache_epoch != inst.epoch {
                    inst.app.set_knowledge(pool.cache.clone());
                    inst.epoch = pool.cache_epoch;
                }
            }
            let sample = match inst.assigned.take() {
                Some(cfg) => inst
                    .app
                    .step_forced(cfg)
                    .expect("exploration configs come from the pool's own knowledge"),
                None => inst.app.step(),
            };
            inst.steps += 1;
            Some((inst.pool, sample))
        };
        let stepped: Vec<Option<(usize, TraceSample)>> = if self.config.parallel_step {
            (0..self.instances.len())
                .into_par_iter()
                .map(step_one)
                .collect()
        } else {
            (0..self.instances.len()).map(step_one).collect()
        };

        let mut steps = 0;
        for (pool, sample) in stepped.into_iter().flatten() {
            steps += 1;
            if self.config.share_knowledge {
                let pool = &mut self.pools[pool];
                pool.shared
                    .publish(&sample.config, &sample.observed_metrics());
                pool.schedule.mark_explored(&sample.config);
            }
        }
        if self.config.share_knowledge {
            for pool in &mut self.pools {
                pool.refresh_cache();
            }
        }
        self.rounds += 1;
        steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toolchain::Toolchain;
    use polybench::Dataset;

    fn quick_enhanced(app: App) -> EnhancedApp {
        Toolchain {
            dataset: Dataset::Medium,
            dse_repetitions: 1,
            ..Toolchain::default()
        }
        .enhance(app)
        .unwrap()
    }

    fn rank() -> Rank {
        Rank::throughput_per_watt2()
    }

    #[test]
    fn spawn_boots_instances_with_independent_noise() {
        let enhanced = quick_enhanced(App::TwoMm);
        let mut fleet = Fleet::new(FleetConfig::default());
        let ids = fleet.spawn(&enhanced, &rank(), 7, 3);
        assert_eq!(ids, vec![0, 1, 2]);
        assert_eq!(fleet.active_instances(), 3);
        fleet.step_round();
        let t0 = fleet.trace(0)[0].time_s;
        let t1 = fleet.trace(1)[0].time_s;
        assert_ne!(t0, t1, "forked machines must see distinct noise");
    }

    #[test]
    fn observations_propagate_through_shared_knowledge() {
        let enhanced = quick_enhanced(App::TwoMm);
        let mut fleet = Fleet::new(FleetConfig::default());
        fleet.spawn(&enhanced, &rank(), 3, 2);
        assert_eq!(fleet.knowledge_epoch(App::TwoMm), Some(0));
        let steps = fleet.step_round();
        assert_eq!(steps, 2);
        assert_eq!(fleet.knowledge_epoch(App::TwoMm), Some(2));
        let learned = fleet.learned_knowledge(App::TwoMm).unwrap();
        assert_ne!(
            learned, enhanced.knowledge,
            "merged observations must refresh expectations"
        );
    }

    #[test]
    fn frozen_fleet_never_touches_the_shared_knowledge() {
        let enhanced = quick_enhanced(App::TwoMm);
        let mut fleet = Fleet::new(FleetConfig {
            share_knowledge: false,
            ..FleetConfig::default()
        });
        fleet.spawn(&enhanced, &rank(), 3, 2);
        fleet.run_for(1.0);
        assert_eq!(fleet.knowledge_epoch(App::TwoMm), Some(0));
        assert_eq!(
            fleet.learned_knowledge(App::TwoMm).unwrap(),
            enhanced.knowledge
        );
    }

    #[test]
    fn cooperative_exploration_covers_distinct_configs() {
        let enhanced = quick_enhanced(App::TwoMm);
        let mut fleet = Fleet::new(FleetConfig {
            exploration_interval: 1, // every step explores
            ..FleetConfig::default()
        });
        fleet.spawn(&enhanced, &rank(), 3, 4);
        let total = enhanced.knowledge.len();
        for _ in 0..8 {
            fleet.step_round();
        }
        let (covered, t) = fleet.exploration_coverage(App::TwoMm).unwrap();
        assert_eq!(t, total);
        // 4 instances × 8 exploration rounds = 32 distinct configs.
        assert_eq!(covered, 32, "the sweep must not revisit configs");
    }

    #[test]
    fn power_budget_splits_and_rebalances_on_membership_changes() {
        let enhanced = quick_enhanced(App::TwoMm);
        let mut fleet = Fleet::new(FleetConfig::default());
        fleet.spawn(&enhanced, &rank(), 3, 4);
        fleet.set_power_budget(Some(400.0));
        assert_eq!(fleet.power_share_w(), Some(100.0));
        assert!(fleet.retire_instance(3));
        assert!(!fleet.retire_instance(3), "already retired");
        let share = fleet.power_share_w().unwrap();
        assert!((share - 400.0 / 3.0).abs() < 1e-9, "{share}");
        // A joining instance shrinks everyone's slice.
        let machine = enhanced.platform.machine(99);
        fleet.add_instance(enhanced.clone(), rank(), machine);
        assert_eq!(fleet.power_share_w(), Some(100.0));
        fleet.set_power_budget(None);
        assert_eq!(fleet.power_share_w(), None);
    }

    #[test]
    fn power_budget_constrains_selected_points() {
        let enhanced = quick_enhanced(App::TwoMm);
        let mut fleet = Fleet::new(FleetConfig {
            exploration_interval: 0, // pure AS-RTM selection
            ..FleetConfig::default()
        });
        fleet.spawn(&enhanced, &Rank::minimize(Metric::exec_time()), 3, 2);
        // 2 instances × 70 W each: the unconstrained pick draws >100 W.
        fleet.set_power_budget(Some(140.0));
        fleet.run_for(3.0);
        for id in 0..2 {
            for s in fleet.trace(id) {
                assert!(
                    s.power_w < 70.0 * 1.2,
                    "instance {id} draws {:.1} W over its 70 W share",
                    s.power_w
                );
            }
        }
    }

    #[test]
    fn retired_instances_stop_stepping() {
        let enhanced = quick_enhanced(App::TwoMm);
        let mut fleet = Fleet::new(FleetConfig::default());
        fleet.spawn(&enhanced, &rank(), 3, 2);
        fleet.step_round();
        fleet.retire_instance(0);
        let frozen_len = fleet.trace(0).len();
        assert_eq!(fleet.step_round(), 1, "only instance 1 steps");
        assert_eq!(fleet.trace(0).len(), frozen_len);
        assert_eq!(fleet.active_instances(), 1);
    }

    #[test]
    fn late_joiners_inherit_the_learned_knowledge() {
        let enhanced = quick_enhanced(App::TwoMm);
        let mut fleet = Fleet::new(FleetConfig::default());
        fleet.spawn(&enhanced, &rank(), 3, 2);
        fleet.run_for(2.0);
        let learned = fleet.learned_knowledge(App::TwoMm).unwrap();
        let machine = enhanced.platform.machine(123);
        let id = fleet.add_instance(enhanced.clone(), rank(), machine);
        let adopted = fleet.with_instance_mut(id, |app| app.manager().asrtm().knowledge().clone());
        assert_eq!(adopted, learned);
    }

    #[test]
    fn mixed_app_fleet_keeps_separate_pools() {
        let twomm = quick_enhanced(App::TwoMm);
        let mvt = quick_enhanced(App::Mvt);
        let mut fleet = Fleet::new(FleetConfig::default());
        fleet.spawn(&twomm, &rank(), 3, 2);
        fleet.spawn(&mvt, &rank(), 3, 2);
        fleet.run_for(1.0);
        let k2 = fleet.learned_knowledge(App::TwoMm).unwrap();
        let km = fleet.learned_knowledge(App::Mvt).unwrap();
        assert_ne!(k2, km);
        assert!(fleet.knowledge_epoch(App::TwoMm).unwrap() > 0);
        assert!(fleet.knowledge_epoch(App::Mvt).unwrap() > 0);
    }

    #[test]
    fn persist_learned_round_trips_through_knowledge_io() {
        let enhanced = quick_enhanced(App::TwoMm);
        let mut fleet = Fleet::new(FleetConfig::default());
        fleet.spawn(&enhanced, &rank(), 3, 2);
        fleet.run_for(1.0);
        let dir = std::env::temp_dir().join(format!("socrates-fleet-{}", std::process::id()));
        let written = fleet.persist_learned(&dir).unwrap();
        assert_eq!(written.len(), 1);
        let loaded = crate::knowledge_io::load_knowledge(&written[0]).unwrap();
        assert_eq!(loaded, fleet.learned_knowledge(App::TwoMm).unwrap());
        std::fs::remove_dir_all(&dir).ok();
    }
}
