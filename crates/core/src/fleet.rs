//! The fleet runtime orchestrator: SOCRATES' *online* loop at scale.
//!
//! After the design-time toolchain ships an enhanced binary, deployment
//! is not one process on one machine — it is many instances, on
//! heterogeneous machines, all running the same MAPE-K loop. A
//! [`Fleet`] boots N [`AdaptiveApplication`] instances and steps them
//! concurrently over rayon on the virtual clock, while a shared
//! [`margot::SharedKnowledge`] layer per application lets every
//! instance publish its monitor observations and pull the others'
//! discoveries (the Collective-Mind-style crowdsourced repository).
//!
//! Three fleet-level mechanisms ride on top of the per-instance loop:
//!
//! - **Online knowledge sharing** — each step's observation is merged
//!   into the shared knowledge at a deterministic round barrier; each
//!   instance detects refreshed knowledge with one epoch load and
//!   adopts it before its next plan step.
//! - **Cooperative exploration** — a [`dse::ExplorationSchedule`]
//!   assigns still-unobserved configurations round-robin across the
//!   instances, so the fleet sweeps the design space online once
//!   instead of N times (or never).
//! - **Power-budget arbitration** — a global watt budget is split
//!   evenly across active instances by adjusting each AS-RTM's power
//!   constraint as instances join and leave.
//!
//! # Scaling: sharded knowledge, incremental refresh
//!
//! The shared knowledge is **lock-sharded** ([`SharedKnowledge`] with
//! [`FleetConfig::knowledge_shards`] shards): publishes to different
//! operating points contend only within a shard, and the round's
//! observations are merged **as one batch per shard** under a single
//! lock acquisition. The pool's barrier-time cache is refreshed
//! **incrementally** — the changed points are drained straight out of
//! the columnar arena into the cache
//! ([`SharedKnowledge::drain_changes_into`]) — and the cache itself is
//! copy-on-write ([`Knowledge`] is `Arc`-backed), so a stale instance
//! adopts it with a reference-count bump instead of a deep clone. Set
//! [`FleetConfig::incremental_refresh`] to `false` for the
//! full-rebuild reference path the equivalence tests pin the
//! incremental path against.
//!
//! # Failure isolation
//!
//! A panic inside one instance's step no longer aborts the fleet: the
//! panic is caught, the poisoned instance lock is recovered, and the
//! failed instance is deactivated and counted in [`Fleet::stats`]
//! while its power share is redistributed to the survivors.
//!
//! Rounds are **bit-identical at any rayon thread count**: instances
//! only read shared state during the parallel phase, and all mutation
//! (publish + schedule bookkeeping) happens sequentially in instance
//! order at the barrier (pinned by `tests/fleet_equivalence.rs`).

use crate::engine::{CompiledKernel, ExecutionEngine};
use crate::error::SocratesError;
use crate::events::{EventObserver, FleetEvent, FleetRuntime, InstanceId};
use crate::knowledge_io::save_knowledge;
use crate::runtime::{AdaptiveApplication, TraceSample};
use crate::snapshot::{KnowledgeSnapshot, SnapshotFingerprint};
use crate::toolchain::EnhancedApp;
use dse::ExplorationSchedule;
use margot::{Cmp, Constraint, Knowledge, Metric, MetricValues, Rank, SharedKnowledge};
use minic::TranslationUnit;
use minivm::ExecutionReport;
use platform_sim::{KnobConfig, Machine};
use polybench::{App, Dataset};
use rayon::prelude::*;
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Priority of the constraint the power arbiter manages on each
/// instance (higher than typical application constraints, so the global
/// budget wins when the feasible region empties).
pub const FLEET_POWER_PRIORITY: u32 = 50;

/// Warm boot re-validates the shipped snapshot's *head*: every covered
/// configuration whose seeded rank value is within this fraction of the
/// seeded best. Those are the configurations planned selection will
/// actually arbitrate between; everything below the band only ever
/// loses, so single fresh sweep samples on it cannot reorder the top.
const WARM_HEAD_BAND: f64 = 0.9;

/// Upper bound on the warm-boot validation head, so a pathologically
/// flat snapshot (hundreds of near-ties) cannot turn the boot burst
/// into a full cold-start sweep.
const WARM_HEAD_CAP: usize = 64;

/// Re-validation passes over the head during the boot burst. Eight real
/// samples per head configuration are enough to flag a grossly wrong
/// seed; with wide knowledge windows the remaining seed copies act as a
/// deliberate prior anchor, so the burst does not try to displace them
/// all — its length must stay in the seconds, not scale with the
/// window.
pub(crate) const WARM_HEAD_PASSES: usize = 8;

/// Fleet-level policy knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// Whether instances publish observations into (and pull refreshed
    /// points from) the shared knowledge. Off = the frozen
    /// design-time-knowledge baseline.
    pub share_knowledge: bool,
    /// Every `exploration_interval`-th step of an instance executes a
    /// coordinator-assigned unexplored configuration instead of the
    /// AS-RTM pick (0 disables cooperative exploration). Only active
    /// while `share_knowledge` is on — exploration without publishing
    /// would be pure overhead.
    pub exploration_interval: u64,
    /// Sliding-window length of the shared per-point observation merge.
    /// Must be ≥ 1 ([`FleetConfig::validate`]).
    pub knowledge_window: usize,
    /// Observations a shared point needs before its window mean
    /// overrides the design-time expectation. Must be ≥ 1
    /// ([`FleetConfig::validate`]).
    pub min_observations: u64,
    /// Lock shards of each pool's [`SharedKnowledge`]. 1 reproduces the
    /// single-mutex reference; the default
    /// ([`margot::DEFAULT_SHARDS`]) lets concurrent publishes to
    /// different points proceed without contention. Must be ≥ 1
    /// ([`FleetConfig::validate`]).
    pub knowledge_shards: usize,
    /// Refresh the pool's barrier-time cache incrementally (patch only
    /// the changed points; instances adopt [`margot::KnowledgeDelta`]s
    /// when they kept up with the epoch). `false` selects the
    /// full-rebuild/full-clone reference path — bit-identical output,
    /// kept for equivalence tests and baseline benchmarks.
    pub incremental_refresh: bool,
    /// Global power budget (watts) split across active instances;
    /// `None` leaves every instance unconstrained.
    pub power_budget_w: Option<f64>,
    /// Step rounds over rayon (`true`) or on the calling thread
    /// (`false`, the sequential reference the equivalence tests pin the
    /// parallel path against).
    pub parallel_step: bool,
    /// Which functional engine compiles the pool kernels. Kernels are
    /// lowered once per `(pool, thread count)` at the round barrier and
    /// cached ([`FleetStats::kernel_builds`] /
    /// [`FleetStats::kernel_cache_hits`]); instances never compile in
    /// their step. The default is the bytecode backend; the AST
    /// interpreter is the bit-identical reference.
    pub engine: ExecutionEngine,
    /// Prune each pool's cooperative exploration schedule with the
    /// static analyzer before the sweep starts
    /// ([`crate::analysis_prune`]): configurations whose specialization
    /// the analyzer rejects as unsafe are dropped, and feasible points
    /// that are strictly Pareto-dominated on the static `(time, power)`
    /// expectation (over the analyzer's cost counters, extrapolated to
    /// the full dataset scale) are skipped. The shared *knowledge*
    /// keeps every design-time point — pruning only shrinks what the
    /// fleet spends exploration slots on, so the AS-RTM can still
    /// select any profiled configuration. Off by default (the
    /// full-sweep reference).
    pub analysis_prune: bool,
    /// A shipped knowledge snapshot to warm-start every pool from
    /// ([`KnowledgeSnapshot`], typically loaded via
    /// [`crate::ArtifactStore::warm_start_snapshot`]). The snapshot's
    /// learned metrics are merged over each pool's design-time
    /// knowledge before the first instance boots, so joiners start
    /// from deployment experience instead of the empty state. The
    /// snapshot may come from a *different* application (cross-app
    /// transfer seeding): only configurations present in the target's
    /// design space are adopted.
    pub warm_start: Option<KnowledgeSnapshot>,
    /// `Some` selects the *distributed* deployment mode: instances
    /// exchange knowledge as messages over a simulated lossy transport
    /// ([`crate::transport`]) instead of a shared address space. Such
    /// configurations boot through [`crate::DistributedFleet::new`];
    /// the in-process [`Fleet::new`] rejects them.
    pub distributed: Option<crate::transport::DistributedConfig>,
    /// How the runtime advances the fleet's virtual clock — lockstep
    /// rounds (the reference semantics, bit-identical to the historical
    /// `step_round` loop) or the sparse discrete-event scheduler.
    /// [`Schedule::EventDriven`] configurations boot through
    /// [`crate::EventFleet::new`]; [`Fleet::new`] rejects them.
    pub schedule: Schedule,
}

/// How a fleet runtime advances its virtual clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Schedule {
    /// Synchronized rounds: every due instance steps once, then all
    /// observations merge at a sequential barrier in instance order.
    /// The reference semantics — bit-identical to the historical
    /// `step_round`/`run_for` loop at any rayon thread count.
    #[default]
    Lockstep,
    /// A discrete-event scheduler on the virtual clock: each instance
    /// is a sparse pool entry whose next step is a heap event keyed by
    /// its own kernel runtime, knowledge merges happen per publish
    /// event instead of at barriers, and arrivals/retirements are
    /// events themselves. Scales to millions of concurrent sparse
    /// instances in one process ([`crate::EventFleet`]).
    EventDriven,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            share_knowledge: true,
            exploration_interval: 4,
            knowledge_window: 8,
            min_observations: 1,
            knowledge_shards: margot::DEFAULT_SHARDS,
            incremental_refresh: true,
            power_budget_w: None,
            parallel_step: true,
            engine: ExecutionEngine::default(),
            analysis_prune: false,
            warm_start: None,
            distributed: None,
            schedule: Schedule::Lockstep,
        }
    }
}

impl FleetConfig {
    /// Checks the policy for values that would panic deep inside the
    /// runtime (`knowledge_window = 0` inside [`SharedKnowledge::new`])
    /// or be silently reinterpreted (`min_observations = 0` used to be
    /// clamped to 1).
    ///
    /// # Errors
    ///
    /// Returns a runtime-stage [`SocratesError`] naming the offending
    /// field.
    pub fn validate(&self) -> Result<(), SocratesError> {
        check_knowledge_window(self.knowledge_window)?;
        check_min_observations(self.min_observations)?;
        check_knowledge_shards(self.knowledge_shards)?;
        check_power_budget(self.power_budget_w)?;
        check_warm_start(self.warm_start.as_ref())?;
        check_distributed(self.distributed.as_ref())?;
        if self.schedule == Schedule::EventDriven && self.distributed.is_some() {
            return Err(SocratesError::invalid_config(
                "schedule = EventDriven cannot combine with distributed = Some: the \
                 distributed runtime synchronizes at round barriers (Schedule::Lockstep); \
                 run the event-driven scheduler in-process through EventFleet::new",
            ));
        }
        Ok(())
    }

    /// Starts a [`FleetConfigBuilder`] from the defaults — the
    /// construction path that surfaces an invalid value at the setter
    /// that introduced it instead of at `Fleet::new`.
    pub fn builder() -> FleetConfigBuilder {
        FleetConfigBuilder {
            config: FleetConfig::default(),
        }
    }

    /// How many identical samples a warm boot stuffs into each shipped
    /// point's observation rings: a full window, so one fresh (noisy)
    /// observation moves the mean by only `1/window` of its deviation,
    /// and never fewer than `min_observations`, so the override gate
    /// opens immediately.
    pub(crate) fn warm_seed_copies(&self) -> usize {
        self.knowledge_window
            .max(usize::try_from(self.min_observations).unwrap_or(usize::MAX))
    }

    /// Ring copies for `app`'s warm boot, scaled by trust. A snapshot
    /// cut from the *same* application is evidence and gets the
    /// fully-observed boot above; a foreign (cross-app) snapshot is
    /// only a hint — its values still merge over the design
    /// predictions, but the rings stay empty (zero copies) so the
    /// first real observation of each configuration displaces the
    /// neighbour's guess outright instead of fighting a full window
    /// of it.
    pub(crate) fn warm_seed_copies_for(&self, app: App) -> usize {
        match &self.warm_start {
            Some(snapshot) if snapshot.fingerprint.app == app.name() => self.warm_seed_copies(),
            _ => 0,
        }
    }
}

fn check_knowledge_window(window: usize) -> Result<(), SocratesError> {
    if window == 0 {
        return Err(SocratesError::invalid_config(
            "knowledge_window must be >= 1: a zero-length sliding window cannot hold \
             any observation",
        ));
    }
    Ok(())
}

fn check_min_observations(min_observations: u64) -> Result<(), SocratesError> {
    if min_observations == 0 {
        return Err(SocratesError::invalid_config(
            "min_observations must be >= 1: a window mean cannot override the design-time \
             expectation before at least one observation exists",
        ));
    }
    Ok(())
}

fn check_knowledge_shards(shards: usize) -> Result<(), SocratesError> {
    if shards == 0 {
        return Err(SocratesError::invalid_config(
            "knowledge_shards must be >= 1: the shared knowledge needs at least one lock \
             shard (1 = the single-mutex reference)",
        ));
    }
    Ok(())
}

fn check_power_budget(budget_w: Option<f64>) -> Result<(), SocratesError> {
    if let Some(w) = budget_w {
        if !(w.is_finite() && w > 0.0) {
            return Err(SocratesError::invalid_config(format!(
                "power_budget_w = {w} must be a positive, finite wattage (or None for \
                 unconstrained instances)"
            )));
        }
    }
    Ok(())
}

fn check_warm_start(snapshot: Option<&KnowledgeSnapshot>) -> Result<(), SocratesError> {
    if let Some(snapshot) = snapshot {
        if snapshot.knowledge.is_empty() {
            return Err(SocratesError::invalid_config(
                "warm_start snapshot holds no operating points: an empty snapshot cannot \
                 seed a pool (omit warm_start for a cold boot)",
            ));
        }
    }
    Ok(())
}

fn check_distributed(
    dist: Option<&crate::transport::DistributedConfig>,
) -> Result<(), SocratesError> {
    if let Some(dist) = dist {
        dist.validate()?;
    }
    Ok(())
}

/// Builder-style [`FleetConfig`] construction with **per-setter
/// validation**: a bad value errors at the setter that introduced it,
/// with the same diagnostics [`FleetConfig::validate`] would raise at
/// boot, instead of surfacing later at `Fleet::new`. Fallible setters
/// return `Result<Self, _>` so a chain reads `builder().x(..)?.y(..)?`;
/// knobs that accept any value of their type stay infallible.
/// [`build`](Self::build) re-runs the full validation, which also
/// covers cross-field rules (e.g. `EventDriven` + `distributed`).
///
/// The struct-literal path (`FleetConfig { .. }` + validation at
/// `Fleet::new`) remains supported as a compatibility shim.
///
/// # Examples
///
/// ```
/// use socrates::{FleetConfig, Schedule};
///
/// let config = FleetConfig::builder()
///     .knowledge_window(16)?
///     .power_budget_w(Some(400.0))?
///     .schedule(Schedule::EventDriven)
///     .build()?;
/// assert_eq!(config.knowledge_window, 16);
/// # Ok::<(), socrates::SocratesError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FleetConfigBuilder {
    config: FleetConfig,
}

impl FleetConfigBuilder {
    /// Sets [`FleetConfig::share_knowledge`].
    #[must_use]
    pub fn share_knowledge(mut self, share: bool) -> Self {
        self.config.share_knowledge = share;
        self
    }

    /// Sets [`FleetConfig::exploration_interval`] (0 disables
    /// cooperative exploration — every interval is valid).
    #[must_use]
    pub fn exploration_interval(mut self, every: u64) -> Self {
        self.config.exploration_interval = every;
        self
    }

    /// Sets [`FleetConfig::knowledge_window`].
    ///
    /// # Errors
    ///
    /// Rejects a zero-length window.
    pub fn knowledge_window(mut self, window: usize) -> Result<Self, SocratesError> {
        check_knowledge_window(window)?;
        self.config.knowledge_window = window;
        Ok(self)
    }

    /// Sets [`FleetConfig::min_observations`].
    ///
    /// # Errors
    ///
    /// Rejects zero.
    pub fn min_observations(mut self, min: u64) -> Result<Self, SocratesError> {
        check_min_observations(min)?;
        self.config.min_observations = min;
        Ok(self)
    }

    /// Sets [`FleetConfig::knowledge_shards`].
    ///
    /// # Errors
    ///
    /// Rejects zero shards.
    pub fn knowledge_shards(mut self, shards: usize) -> Result<Self, SocratesError> {
        check_knowledge_shards(shards)?;
        self.config.knowledge_shards = shards;
        Ok(self)
    }

    /// Sets [`FleetConfig::incremental_refresh`].
    #[must_use]
    pub fn incremental_refresh(mut self, incremental: bool) -> Self {
        self.config.incremental_refresh = incremental;
        self
    }

    /// Sets [`FleetConfig::power_budget_w`].
    ///
    /// # Errors
    ///
    /// Rejects a budget that is not positive and finite.
    pub fn power_budget_w(mut self, budget_w: Option<f64>) -> Result<Self, SocratesError> {
        check_power_budget(budget_w)?;
        self.config.power_budget_w = budget_w;
        Ok(self)
    }

    /// Sets [`FleetConfig::parallel_step`].
    #[must_use]
    pub fn parallel_step(mut self, parallel: bool) -> Self {
        self.config.parallel_step = parallel;
        self
    }

    /// Sets [`FleetConfig::engine`].
    #[must_use]
    pub fn engine(mut self, engine: ExecutionEngine) -> Self {
        self.config.engine = engine;
        self
    }

    /// Sets [`FleetConfig::analysis_prune`].
    #[must_use]
    pub fn analysis_prune(mut self, prune: bool) -> Self {
        self.config.analysis_prune = prune;
        self
    }

    /// Sets [`FleetConfig::warm_start`].
    ///
    /// # Errors
    ///
    /// Rejects an empty snapshot.
    pub fn warm_start(
        mut self,
        snapshot: Option<KnowledgeSnapshot>,
    ) -> Result<Self, SocratesError> {
        check_warm_start(snapshot.as_ref())?;
        self.config.warm_start = snapshot;
        Ok(self)
    }

    /// Sets [`FleetConfig::distributed`].
    ///
    /// # Errors
    ///
    /// Rejects an invalid distributed configuration
    /// ([`crate::transport::DistributedConfig::validate`]).
    pub fn distributed(
        mut self,
        dist: Option<crate::transport::DistributedConfig>,
    ) -> Result<Self, SocratesError> {
        check_distributed(dist.as_ref())?;
        self.config.distributed = dist;
        Ok(self)
    }

    /// Sets [`FleetConfig::schedule`].
    #[must_use]
    pub fn schedule(mut self, schedule: Schedule) -> Self {
        self.config.schedule = schedule;
        self
    }

    /// Finishes the build, re-running the **full** validation — the
    /// cross-field rules (event-driven excludes distributed) can only
    /// be checked here.
    ///
    /// # Errors
    ///
    /// Everything [`FleetConfig::validate`] rejects.
    pub fn build(self) -> Result<FleetConfig, SocratesError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

/// Builds the warm-boot re-validation queue: the snapshot's covered
/// configurations whose seeded rank value sits within
/// [`WARM_HEAD_BAND`] of the seeded best (at most [`WARM_HEAD_CAP`]),
/// best first, each repeated `passes` times in round-robin order so a
/// drained queue leaves every head configuration with several real
/// local observations next to its shipped seed. Points the rank cannot
/// score (missing or non-finite metrics) are skipped — they cannot win
/// a selection, so they need no early validation.
pub(crate) fn warm_validation_queue(
    snapshot: &KnowledgeSnapshot,
    rank: &Rank,
    passes: usize,
) -> VecDeque<KnobConfig> {
    let mut head: Vec<(KnobConfig, f64)> = snapshot
        .knowledge
        .points()
        .iter()
        .filter_map(|p| {
            let value = rank.value_with(|m| p.metric(m))?;
            value.is_finite().then(|| (p.config.clone(), value))
        })
        .collect();
    head.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite rank values"));
    let Some(&(_, best)) = head.first() else {
        return VecDeque::new();
    };
    head.truncate(WARM_HEAD_CAP);
    if best > 0.0 {
        while head.last().is_some_and(|&(_, v)| v < best * WARM_HEAD_BAND) {
            head.pop();
        }
    }
    let mut queue = VecDeque::with_capacity(head.len() * passes.max(1));
    for _ in 0..passes.max(1) {
        queue.extend(head.iter().map(|(config, _)| config.clone()));
    }
    queue
}

/// One shared-knowledge pool: all instances of the same application
/// (same design-time knowledge) publish into and pull from it.
struct Pool {
    app: App,
    design: Knowledge<KnobConfig>,
    shared: SharedKnowledge<KnobConfig>,
    schedule: ExplorationSchedule<KnobConfig>,
    /// Warm-boot re-validation queue (empty for cold pools): the
    /// snapshot's head — see [`WARM_HEAD_BAND`] — queued `window` times
    /// per configuration, best first. Served ahead of the cooperative
    /// sweep at *every* step until drained, so the configurations that
    /// will drive selection trade their shipped seeds for real local
    /// observations in the first seconds of the run instead of ambushing
    /// the fleet with frozen near-ties mid-flight.
    burst: VecDeque<KnobConfig>,
    /// Effective-knowledge snapshot maintained **once per pool** at the
    /// round barrier (and only when the epoch moved); the parallel
    /// phase hands stale instances this knowledge without touching
    /// the pool locks.
    cache_epoch: u64,
    cache: Knowledge<KnobConfig>,
    /// The weaved program the pool's kernels are lowered from, and the
    /// clone they enter through.
    weaved: TranslationUnit,
    entry: String,
    dataset: Dataset,
    /// Config-specialized compiled kernels, one per observed thread
    /// count (the only knob that changes the specialization constants).
    /// `None` tombstones a failed lowering so it is not retried every
    /// round. Mutated only from barrier/sequential code, so the whole
    /// fleet of N instances compiles each specialization once.
    kernels: HashMap<u32, Option<Arc<CompiledKernel>>>,
    kernel_builds: u64,
    kernel_cache_hits: u64,
    /// Configurations the static analyzer removed from this pool's
    /// exploration schedule at creation (0 unless
    /// [`FleetConfig::analysis_prune`] is on).
    pruned_infeasible: u64,
    pruned_dominated: u64,
}

impl Pool {
    /// Compiles (or reuses) the config-specialized kernel for one
    /// thread count. Called only from barrier/sequential code.
    fn ensure_kernel(&mut self, engine: ExecutionEngine, threads: u32) {
        use std::collections::hash_map::Entry;
        match self.kernels.entry(threads) {
            Entry::Occupied(_) => self.kernel_cache_hits += 1,
            Entry::Vacant(slot) => {
                self.kernel_builds += 1;
                let compiled = crate::engine::compile_kernel_for(
                    engine,
                    &self.weaved,
                    &self.entry,
                    self.app,
                    self.dataset,
                    threads,
                )
                .ok()
                .map(Arc::new);
                slot.insert(compiled);
            }
        }
    }

    /// Refreshes the cached snapshot. Called only from barrier
    /// (sequential) code.
    fn refresh_cache(&mut self, incremental: bool) {
        if incremental {
            // Dirty inserts are always paired with an epoch bump, so an
            // unmoved epoch means there is nothing to drain — skip the
            // per-shard lock sweep entirely.
            if self.shared.epoch() == self.cache_epoch {
                return;
            }
            // Patch only the points whose effective values changed
            // since the last barrier, straight out of the arena;
            // O(changed) instead of O(points), with no intermediate
            // point list.
            let (to_epoch, _patched) = self.shared.drain_changes_into(&mut self.cache);
            self.cache_epoch = to_epoch;
        } else if self.shared.epoch() != self.cache_epoch {
            // Reference path: full effective-knowledge rebuild.
            let (epoch, knowledge) = self.shared.snapshot();
            self.cache_epoch = epoch;
            self.cache = knowledge;
        }
    }
}

/// One fleet member.
struct Instance {
    app: AdaptiveApplication,
    pool: usize,
    /// Last shared-knowledge epoch this instance adopted.
    epoch: u64,
    steps: u64,
    /// Exploration configuration assigned for the next step.
    assigned: Option<KnobConfig>,
    active: bool,
    /// Whether this instance was deactivated by a panic in its step
    /// (as opposed to an orderly [`Fleet::retire_instance`]).
    failed: bool,
    /// The recovered panic message of a failed instance, for diagnosis
    /// ([`Fleet::failure_reason`]).
    failure: Option<String>,
    /// Whether the power arbiter installed a constraint on this
    /// instance (so budget removal only removes what the fleet added).
    arbited: bool,
}

/// Recovers a possibly poisoned instance lock: a panic in one
/// instance's step poisons only that instance's mutex, and the instance
/// is deactivated — the data under the lock stays consistent enough to
/// read (trace, clock, energy) and must not take the fleet down.
fn lock_instance(m: &Mutex<Instance>) -> MutexGuard<'_, Instance> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The `&mut self` counterpart of [`lock_instance`].
fn instance_mut(m: &mut Mutex<Instance>) -> &mut Instance {
    m.get_mut().unwrap_or_else(PoisonError::into_inner)
}

/// What one instance did in a round's parallel phase.
enum StepOutcome {
    /// A MAPE-K (or exploration) step producing an observation. `stale`
    /// carries an exploration assignment that could not be executed
    /// (no compiled version) so the barrier returns it to the sweep.
    Stepped {
        pool: usize,
        sample: TraceSample,
        stale: Option<KnobConfig>,
    },
    /// The step panicked; the instance was deactivated. `stale` carries
    /// its unexecuted exploration assignment, if any.
    Failed {
        pool: usize,
        stale: Option<KnobConfig>,
    },
}

/// Fleet membership and health counters (see [`Fleet::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetStats {
    /// Instances ever added (including retired and failed ones).
    pub instances: usize,
    /// Instances still stepping.
    pub active: usize,
    /// Instances deactivated by a panic inside their step.
    pub failed: usize,
    /// Rounds stepped so far.
    pub rounds: u64,
    /// Config-specialized kernel lowerings across all pools — one per
    /// `(pool, thread count)` ever observed, however many instances
    /// share it.
    pub kernel_builds: u64,
    /// Barrier-time kernel lookups satisfied by the pool cache.
    pub kernel_cache_hits: u64,
    /// Configurations dropped from the pools' exploration schedules as
    /// statically infeasible (0 unless [`FleetConfig::analysis_prune`]).
    pub schedule_pruned_infeasible: u64,
    /// Configurations skipped as statically Pareto-dominated (0 unless
    /// [`FleetConfig::analysis_prune`]).
    pub schedule_pruned_dominated: u64,
}

/// A fleet of concurrently stepping adaptive-application instances
/// sharing a live knowledge base.
///
/// # Examples
///
/// ```no_run
/// use socrates::{Fleet, FleetConfig, FleetRuntime, Toolchain};
/// use margot::Rank;
/// use polybench::App;
///
/// let enhanced = Toolchain::default().enhance(App::TwoMm).unwrap();
/// let mut fleet = Fleet::new(FleetConfig::default()).unwrap();
/// fleet.spawn(&enhanced, &Rank::throughput_per_watt2(), 42, 8);
/// fleet.set_power_budget(Some(8.0 * 90.0));
/// fleet.run_until(60.0); // 60 virtual seconds of cooperative adaptation
/// ```
pub struct Fleet {
    config: FleetConfig,
    pools: Vec<Pool>,
    instances: Vec<Mutex<Instance>>,
    rounds: u64,
    /// Registered event-stream observers ([`FleetRuntime::observe`]).
    /// Only touched from sequential (barrier) code; pure consumers, so
    /// rounds stay bit-identical with or without them.
    observers: Vec<EventObserver>,
}

impl Default for Fleet {
    fn default() -> Self {
        Fleet::new(FleetConfig::default()).expect("default fleet config is valid")
    }
}

impl Fleet {
    /// An empty fleet with the given policy.
    ///
    /// # Errors
    ///
    /// Returns a runtime-stage [`SocratesError`] if the policy is
    /// invalid ([`FleetConfig::validate`]) — e.g. `knowledge_window =
    /// 0`, which would otherwise panic deep inside
    /// [`SharedKnowledge::new`] on the first spawned instance.
    pub fn new(config: FleetConfig) -> Result<Self, SocratesError> {
        config.validate()?;
        if config.distributed.is_some() {
            return Err(SocratesError::invalid_config(
                "this configuration selects the distributed mode (distributed = Some): boot \
                 it through DistributedFleet::new, which runs the knowledge exchange over \
                 the simulated transport instead of the in-process shared knowledge",
            ));
        }
        if config.schedule == Schedule::EventDriven {
            return Err(SocratesError::invalid_config(
                "this configuration selects the event-driven schedule (schedule = \
                 EventDriven): boot it through EventFleet::new, which runs the sparse \
                 discrete-event scheduler instead of synchronized lockstep rounds",
            ));
        }
        Ok(Fleet {
            config,
            pools: Vec::new(),
            instances: Vec::new(),
            rounds: 0,
            observers: Vec::new(),
        })
    }

    /// The fleet policy.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Number of instances ever added (including retired ones).
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// Whether the fleet has no instances.
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }

    /// Number of instances still stepping.
    pub fn active_instances(&self) -> usize {
        self.instances
            .iter()
            .filter(|m| lock_instance(m).active)
            .count()
    }

    /// Number of instances deactivated by a panic inside their step.
    pub fn failed_instances(&self) -> usize {
        self.instances
            .iter()
            .filter(|m| lock_instance(m).failed)
            .count()
    }

    /// The recovered panic message of a failed instance, or `None` if
    /// the instance never failed.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn failure_reason(&self, id: usize) -> Option<String> {
        lock_instance(&self.instances[id]).failure.clone()
    }

    /// Membership and health counters in one consistent read.
    pub fn stats(&self) -> FleetStats {
        let mut active = 0;
        let mut failed = 0;
        for m in &self.instances {
            let inst = lock_instance(m);
            active += usize::from(inst.active);
            failed += usize::from(inst.failed);
        }
        let (kernel_builds, kernel_cache_hits) = self.pools.iter().fold((0, 0), |(b, h), p| {
            (b + p.kernel_builds, h + p.kernel_cache_hits)
        });
        let (schedule_pruned_infeasible, schedule_pruned_dominated) =
            self.pools.iter().fold((0, 0), |(i, d), p| {
                (i + p.pruned_infeasible, d + p.pruned_dominated)
            });
        FleetStats {
            instances: self.instances.len(),
            active,
            failed,
            rounds: self.rounds,
            kernel_builds,
            kernel_cache_hits,
            schedule_pruned_infeasible,
            schedule_pruned_dominated,
        }
    }

    /// The functional execution report of `app`'s compiled kernel
    /// specialized for `threads`, or `None` if that specialization was
    /// never built (or its lowering failed). Reports are bit-identical
    /// across [`ExecutionEngine`]s and across thread counts — the
    /// thread knob is configuration, not data.
    pub fn kernel_report(&self, app: App, threads: u32) -> Option<ExecutionReport> {
        self.pools
            .iter()
            .find(|p| p.app == app)
            .and_then(|p| p.kernels.get(&threads))
            .and_then(|k| k.as_deref())
            .map(|k| k.report)
    }

    /// Rounds stepped so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Boots one instance on a specific machine (which may differ from
    /// the profiled platform — deployment drift) and returns its id.
    /// The instance immediately adopts the pool's current shared
    /// knowledge, inheriting everything the fleet already learned.
    pub fn add_instance(&mut self, enhanced: EnhancedApp, rank: Rank, machine: Machine) -> usize {
        let pool = self.pool_for(&enhanced, &rank);
        let mut app = AdaptiveApplication::with_machine(enhanced, rank, machine);
        let epoch = if self.config.share_knowledge {
            self.pools[pool].refresh_cache(self.config.incremental_refresh);
            app.set_knowledge(self.pools[pool].cache.clone());
            self.pools[pool].cache_epoch
        } else {
            0
        };
        let t_s = app.now_s();
        self.instances.push(Mutex::new(Instance {
            app,
            pool,
            epoch,
            steps: 0,
            assigned: None,
            active: true,
            failed: false,
            failure: None,
            arbited: false,
        }));
        self.rebalance_power();
        let id = self.instances.len() - 1;
        self.emit(FleetEvent::Arrived {
            id: dense_id(id),
            t_s,
        });
        id
    }

    /// Boots `count` instances of one enhanced app on machines forked
    /// from the app's own platform (independent per-instance noise
    /// streams derived from `base_seed`); returns their ids.
    pub fn spawn(
        &mut self,
        enhanced: &EnhancedApp,
        rank: &Rank,
        base_seed: u64,
        count: usize,
    ) -> Vec<usize> {
        let base = enhanced.platform.machine(base_seed);
        self.spawn_on(enhanced, rank, &base, count)
    }

    /// Boots `count` instances on forks of an explicit base machine —
    /// how experiments deploy a fleet onto drifted hardware (e.g.
    /// [`crate::Platform::hotter`]). Fork streams are offset by the
    /// current fleet size, so repeated spawns (and mixed-app fleets)
    /// never hand two instances the same noise stream.
    pub fn spawn_on(
        &mut self,
        enhanced: &EnhancedApp,
        rank: &Rank,
        base: &Machine,
        count: usize,
    ) -> Vec<usize> {
        let stream_offset = self.instances.len() as u64;
        (0..count)
            .map(|i| {
                self.add_instance(
                    enhanced.clone(),
                    rank.clone(),
                    base.fork(stream_offset + i as u64),
                )
            })
            .collect()
    }

    /// Retires an instance: it stops stepping and its power share is
    /// redistributed to the remaining active instances. Returns `false`
    /// if it was already retired.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn retire_instance(&mut self, id: usize) -> bool {
        let inst = instance_mut(&mut self.instances[id]);
        if !inst.active {
            return false;
        }
        inst.active = false;
        if inst.arbited {
            inst.app
                .manager_mut()
                .asrtm_mut()
                .remove_constraints_on(&Metric::power());
            inst.arbited = false;
        }
        let t_s = inst.app.now_s();
        self.rebalance_power();
        self.emit(FleetEvent::Retired {
            id: dense_id(id),
            t_s,
        });
        true
    }

    /// Sets (or clears) the global power budget and re-splits it across
    /// the active instances.
    ///
    /// The arbiter *owns* each instance's power constraint: do not add
    /// your own constraint on [`Metric::power`] to fleet members while
    /// a budget is active.
    ///
    /// # Panics
    ///
    /// Panics if the budget is not positive and finite (use
    /// [`FleetConfig::validate`] to reject such budgets with an error
    /// instead).
    pub fn set_power_budget(&mut self, budget_w: Option<f64>) {
        if let Some(w) = budget_w {
            assert!(
                w.is_finite() && w > 0.0,
                "power budget {w} W must be positive"
            );
        }
        self.config.power_budget_w = budget_w;
        self.rebalance_power();
    }

    /// Each active instance's current power allocation, watts.
    pub fn power_share_w(&self) -> Option<f64> {
        let active = self.active_instances();
        match self.config.power_budget_w {
            Some(w) if active > 0 => Some(w / active as f64),
            _ => None,
        }
    }

    /// One synchronized round: every active instance performs one
    /// MAPE-K (or exploration) step concurrently, then all observations
    /// are merged into the shared knowledge in instance order. Returns
    /// the number of steps taken.
    #[deprecated(note = "use the FleetRuntime surface: run_events(1) is one synchronized round")]
    pub fn step_round(&mut self) -> usize {
        self.step_round_inner()
    }

    /// Steps rounds until every active instance has advanced its own
    /// virtual clock by `duration_s` seconds (instances run at their
    /// own speed: faster ones take more invocations per wall round).
    ///
    /// # Panics
    ///
    /// Panics if `duration_s` is not strictly positive.
    #[deprecated(
        note = "use the FleetRuntime surface: run_until(t) advances to an absolute virtual time"
    )]
    pub fn run_for(&mut self, duration_s: f64) {
        self.run_for_inner(duration_s);
    }

    /// The non-deprecated internals of [`step_round`](Self::step_round).
    fn step_round_inner(&mut self) -> usize {
        let due: Vec<bool> = self
            .instances
            .iter_mut()
            .map(|m| instance_mut(m).active)
            .collect();
        self.round_with(&due)
    }

    /// The non-deprecated internals of [`run_for`](Self::run_for):
    /// rounds against per-instance deadlines `now + duration`.
    fn run_for_inner(&mut self, duration_s: f64) -> u64 {
        assert!(duration_s > 0.0, "duration must be positive");
        let deadlines: Vec<f64> = self
            .instances
            .iter_mut()
            .map(|m| {
                let inst = instance_mut(m);
                inst.app.now_s() + duration_s
            })
            .collect();
        self.rounds_to_deadlines(&deadlines)
    }

    /// Rounds until every active instance has reached its own absolute
    /// deadline; returns the number of rounds (scheduler events).
    fn rounds_to_deadlines(&mut self, deadlines: &[f64]) -> u64 {
        let mut rounds = 0;
        loop {
            let due: Vec<bool> = self
                .instances
                .iter_mut()
                .zip(deadlines)
                .map(|(m, &deadline)| {
                    let inst = instance_mut(m);
                    inst.active && inst.app.now_s() < deadline
                })
                .collect();
            if !due.iter().any(|&d| d) {
                break;
            }
            self.round_with(&due);
            rounds += 1;
        }
        rounds
    }

    /// The execution trace of instance `id` so far.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn trace(&self, id: usize) -> Vec<TraceSample> {
        lock_instance(&self.instances[id]).app.trace().to_vec()
    }

    /// Virtual time of instance `id`, seconds.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn now_s(&self, id: usize) -> f64 {
        lock_instance(&self.instances[id]).app.now_s()
    }

    /// Total energy drawn by instance `id`, joules.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn energy_j(&self, id: usize) -> f64 {
        lock_instance(&self.instances[id]).app.energy_j()
    }

    /// Runs `f` against instance `id`'s adaptive application (e.g. to
    /// switch its rank mid-run).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn with_instance_mut<R>(
        &mut self,
        id: usize,
        f: impl FnOnce(&mut AdaptiveApplication) -> R,
    ) -> R {
        f(&mut instance_mut(&mut self.instances[id]).app)
    }

    /// The current merged (online) knowledge for `app`, or `None` if no
    /// instance of it was ever added. If several pools share the
    /// application (different design knowledge), the first-created
    /// pool is reported; use [`Fleet::persist_learned`] to export all.
    pub fn learned_knowledge(&self, app: App) -> Option<Knowledge<KnobConfig>> {
        self.pools
            .iter()
            .find(|p| p.app == app)
            .map(|p| p.shared.knowledge())
    }

    /// Cuts a shippable [`KnowledgeSnapshot`] of `app`'s pool — the
    /// live shared knowledge with its epoch vector, stamped with
    /// `fingerprint` — or `None` if no instance of `app` was ever
    /// added. Persist it with [`crate::ArtifactStore::save_snapshot`]
    /// (or [`KnowledgeSnapshot::save`]) and ship it as the
    /// [`FleetConfig::warm_start`] of the next deployment.
    pub fn knowledge_snapshot(
        &self,
        app: App,
        fingerprint: SnapshotFingerprint,
    ) -> Option<KnowledgeSnapshot> {
        self.pools
            .iter()
            .find(|p| p.app == app)
            .map(|p| KnowledgeSnapshot::capture(&p.shared, fingerprint))
    }

    /// The shared-knowledge epoch for `app` (how many publishes changed
    /// an effective value), or `None` if unknown.
    pub fn knowledge_epoch(&self, app: App) -> Option<u64> {
        self.pools
            .iter()
            .find(|p| p.app == app)
            .map(|p| p.shared.epoch())
    }

    /// Online design-space coverage for `app`: `(covered, total)`
    /// operating points, or `None` if unknown.
    pub fn exploration_coverage(&self, app: App) -> Option<(usize, usize)> {
        self.pools.iter().find(|p| p.app == app).map(|p| {
            (
                p.schedule.total() - p.schedule.remaining(),
                p.schedule.total(),
            )
        })
    }

    /// Persists every pool's learned knowledge as
    /// `<dir>/<app>_learned.json` (loadable with
    /// [`crate::load_knowledge`], so a future toolchain run can seed
    /// from deployment experience); returns the written paths. When
    /// several pools share an application name (instances enhanced by
    /// different toolchain configurations), later pools get a
    /// `_<pool index>` suffix instead of overwriting the first.
    ///
    /// # Errors
    ///
    /// Returns a persist-stage [`SocratesError`] on I/O failure.
    pub fn persist_learned(&self, dir: impl AsRef<Path>) -> Result<Vec<PathBuf>, SocratesError> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir).map_err(|e| SocratesError::io(dir, e))?;
        let mut written: Vec<PathBuf> = Vec::with_capacity(self.pools.len());
        for (i, pool) in self.pools.iter().enumerate() {
            let first_of_app = self
                .pools
                .iter()
                .position(|p| p.app == pool.app)
                .expect("pool exists");
            let path = if first_of_app == i {
                dir.join(format!("{}_learned.json", pool.app.name()))
            } else {
                dir.join(format!("{}_learned_{i}.json", pool.app.name()))
            };
            save_knowledge(&pool.shared.knowledge(), &path)?;
            written.push(path);
        }
        Ok(written)
    }

    /// Finds (or creates) the shared pool for an enhanced app. Pools
    /// are keyed by application *and* design knowledge, so instances
    /// enhanced by different toolchain configurations never cross-feed
    /// incompatible operating points.
    fn pool_for(&mut self, enhanced: &EnhancedApp, rank: &Rank) -> usize {
        if let Some(i) = self
            .pools
            .iter()
            .position(|p| p.app == enhanced.app && p.design == enhanced.knowledge)
        {
            return i;
        }
        let mut configs: Vec<KnobConfig> = enhanced
            .knowledge
            .points()
            .iter()
            .map(|p| p.config.clone())
            .collect();
        // Analysis-driven schedule pruning: the static analyzer shrinks
        // what the fleet cooperatively sweeps. The shared knowledge
        // below still carries every design-time point, so selection is
        // unaffected — only exploration slots are saved.
        let (mut pruned_infeasible, mut pruned_dominated) = (0u64, 0u64);
        if self.config.analysis_prune {
            let pruned = crate::engine::analysis_prune(enhanced, configs);
            pruned_infeasible = pruned.infeasible as u64;
            pruned_dominated = pruned.dominated as u64;
            configs = pruned.kept;
        }
        let entry = enhanced
            .multiversioned
            .version_functions
            .first()
            .cloned()
            .unwrap_or_else(|| enhanced.app.kernel_name());
        // Warm-start seeding: merge the shipped snapshot's learned
        // metrics over the design-time expectations. The pool stays
        // keyed by the *original* design knowledge (`design`), so warm
        // and cold joiners of the same enhanced app share one pool.
        let seeded = match &self.config.warm_start {
            Some(snapshot) => snapshot.apply_to_design(&enhanced.knowledge),
            None => enhanced.knowledge.clone(),
        };
        let shared = SharedKnowledge::new(seeded.clone(), self.config.knowledge_window)
            .with_min_observations(self.config.min_observations)
            .with_shards(self.config.knowledge_shards);
        let mut burst = VecDeque::new();
        if let Some(snapshot) = &self.config.warm_start {
            // Fill the shipped points' observation windows too (same-app
            // seeds only — see `warm_seed_copies_for`): with empty
            // rings, the first few (noisy) online samples would
            // displace the seed the moment the min_observations gate
            // opens, and the fleet would relive the cold-start
            // transient the snapshot exists to eliminate.
            let copies = self.config.warm_seed_copies_for(enhanced.app);
            if copies > 0 {
                shared.seed_observations(&snapshot.knowledge, copies);
            }
            burst = warm_validation_queue(
                snapshot,
                rank,
                self.config.knowledge_window.min(WARM_HEAD_PASSES),
            );
        }
        self.pools.push(Pool {
            app: enhanced.app,
            design: enhanced.knowledge.clone(),
            shared,
            schedule: ExplorationSchedule::new(configs),
            burst,
            cache_epoch: 0,
            cache: seeded,
            weaved: enhanced.weaved.clone(),
            entry,
            dataset: enhanced.dataset,
            kernels: HashMap::new(),
            kernel_builds: 0,
            kernel_cache_hits: 0,
            pruned_infeasible,
            pruned_dominated,
        });
        let engine = self.config.engine;
        let pool = self.pools.len() - 1;
        // Warm the single-thread specialization at pool creation: the
        // common boot configuration runs compiled from round one.
        self.pools[pool].ensure_kernel(engine, 1);
        pool
    }

    /// Splits the global budget evenly across active instances.
    fn rebalance_power(&mut self) {
        let active = self
            .instances
            .iter_mut()
            .map(|m| instance_mut(m).active)
            .filter(|&a| a)
            .count();
        let share = match self.config.power_budget_w {
            Some(w) if active > 0 => Some(w / active as f64),
            _ => None,
        };
        for m in &mut self.instances {
            let inst = instance_mut(m);
            if !inst.active {
                continue;
            }
            match share {
                Some(per_instance) => {
                    if inst.arbited {
                        inst.app
                            .manager_mut()
                            .asrtm_mut()
                            .set_constraint_value(&Metric::power(), per_instance);
                    } else {
                        inst.app.add_constraint(Constraint::new(
                            Metric::power(),
                            Cmp::LessOrEqual,
                            per_instance,
                            FLEET_POWER_PRIORITY,
                        ));
                        inst.arbited = true;
                    }
                }
                None => {
                    if inst.arbited {
                        inst.app
                            .manager_mut()
                            .asrtm_mut()
                            .remove_constraints_on(&Metric::power());
                        inst.arbited = false;
                    }
                }
            }
        }
    }

    /// One round over the instances marked due: assign exploration
    /// slots (sequential), step (parallel), merge observations
    /// (sequential, instance order — the determinism barrier).
    fn round_with(&mut self, due: &[bool]) -> usize {
        assert_eq!(due.len(), self.instances.len());
        let interval = self.config.exploration_interval;
        if self.config.share_knowledge && interval > 0 {
            for (id, &is_due) in due.iter().enumerate() {
                if !is_due {
                    continue;
                }
                let (pool, explore) = {
                    let inst = instance_mut(&mut self.instances[id]);
                    if !inst.active {
                        continue;
                    }
                    (inst.pool, inst.steps % interval == interval - 1)
                };
                // Warm-boot validation outranks the interval: while the
                // snapshot head's burst queue is non-empty, every step
                // is a forced re-validation sample. The queue is a few
                // hundred entries fleet-wide, so this window is over in
                // the first seconds of the run.
                let assigned = match self.pools[pool].burst.pop_front() {
                    Some(cfg) => Some(cfg),
                    None if explore => self.pools[pool].schedule.next_unexplored(),
                    None => None,
                };
                if assigned.is_some() {
                    instance_mut(&mut self.instances[id]).assigned = assigned;
                }
            }
        }

        let pools = &self.pools;
        let config = &self.config;
        let instances = &self.instances;
        let step_one = |id: usize| -> Option<StepOutcome> {
            if !due[id] {
                return None;
            }
            // One instance's panic must not take the fleet down: catch
            // it, recover the (now poisoned) lock and deactivate the
            // instance; survivors keep stepping.
            let stepped = catch_unwind(AssertUnwindSafe(|| {
                let mut inst = lock_instance(&instances[id]);
                if !inst.active {
                    return None;
                }
                if config.share_knowledge {
                    // Epoch probe against the pool's barrier-time
                    // cache: no pool lock and no per-instance snapshot
                    // rebuild. The cache is copy-on-write, so a stale
                    // instance adopts it with a reference-count bump —
                    // per-instance delta patching would force a deep
                    // copy of the instance's own point list and is
                    // strictly worse here.
                    let pool = &pools[inst.pool];
                    if pool.cache_epoch != inst.epoch {
                        inst.app.set_knowledge(pool.cache.clone());
                        inst.epoch = pool.cache_epoch;
                    }
                }
                // Cloned, not taken: if the step panics mid-flight the
                // assignment survives in `inst.assigned` for the
                // failure path to return to the sweep.
                let (sample, stale) = match inst.assigned.clone() {
                    // A stale assignment (e.g. a configuration with no
                    // compiled version after a knowledge refresh) falls
                    // back to a normal AS-RTM step instead of aborting;
                    // the barrier returns the config to the sweep so
                    // coverage is not over-reported.
                    Some(cfg) => match inst.app.step_forced(cfg.clone()) {
                        Ok(sample) => (sample, None),
                        Err(_) => (inst.app.step(), Some(cfg)),
                    },
                    None => (inst.app.step(), None),
                };
                inst.assigned = None;
                inst.steps += 1;
                Some(StepOutcome::Stepped {
                    pool: inst.pool,
                    sample,
                    stale,
                })
            }));
            match stepped {
                Ok(outcome) => outcome,
                Err(payload) => {
                    // Keep the panic message: an operator seeing a
                    // failed instance in the stats needs to know why
                    // it died (this also preserves evidence should the
                    // panic be a fleet bug rather than an instance
                    // bug).
                    let reason = payload
                        .downcast_ref::<&'static str>()
                        .map(|s| (*s).to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "non-string panic payload".to_string());
                    let mut inst = lock_instance(&instances[id]);
                    inst.active = false;
                    inst.failed = true;
                    inst.failure = Some(reason);
                    // An assignment the panicking step never consumed
                    // goes back to the sweep at the barrier.
                    let stale = inst.assigned.take();
                    Some(StepOutcome::Failed {
                        pool: inst.pool,
                        stale,
                    })
                }
            }
        };
        let stepped: Vec<Option<StepOutcome>> = if self.config.parallel_step {
            (0..self.instances.len())
                .into_par_iter()
                .map(step_one)
                .collect()
        } else {
            (0..self.instances.len()).map(step_one).collect()
        };

        // The barrier: group the round's observations by pool in
        // instance order, merge each pool's batch with one lock
        // acquisition per knowledge shard, then refresh each pool's
        // cache incrementally from the changed points.
        let mut steps = 0;
        let mut any_failed = false;
        let mut per_pool: Vec<Vec<(KnobConfig, MetricValues)>> =
            (0..self.pools.len()).map(|_| Vec::new()).collect();
        let mut requeues: Vec<Vec<KnobConfig>> =
            (0..self.pools.len()).map(|_| Vec::new()).collect();
        let mut kernel_tns: Vec<Vec<u32>> = (0..self.pools.len()).map(|_| Vec::new()).collect();
        // Event emission is observer-only bookkeeping: nothing below
        // reads these, so rounds stay bit-identical without observers.
        let observing = !self.observers.is_empty();
        let mut step_events: Vec<FleetEvent> = Vec::new();
        let mut publishers: Vec<(usize, usize)> = Vec::new();
        for (id, outcome) in stepped.into_iter().enumerate() {
            match outcome {
                Some(StepOutcome::Stepped {
                    pool,
                    sample,
                    stale,
                }) => {
                    steps += 1;
                    kernel_tns[pool].push(sample.config.tn);
                    if observing {
                        step_events.push(FleetEvent::Stepped {
                            id: dense_id(id),
                            t_start_s: sample.t_start_s,
                            time_s: sample.time_s,
                            power_w: sample.power_w,
                            forced: sample.forced,
                        });
                        if self.config.share_knowledge {
                            publishers.push((id, pool));
                        }
                    }
                    if self.config.share_knowledge {
                        let observed = sample.observed_metrics();
                        per_pool[pool].push((sample.config, observed));
                    }
                    if let Some(cfg) = stale {
                        requeues[pool].push(cfg);
                    }
                }
                Some(StepOutcome::Failed { pool, stale }) => {
                    any_failed = true;
                    if let Some(cfg) = stale {
                        requeues[pool].push(cfg);
                    }
                }
                None => {}
            }
        }
        if self.config.share_knowledge {
            for ((pool, batch), requeue) in self.pools.iter_mut().zip(&per_pool).zip(&requeues) {
                // Unexecuted assignments rejoin the sweep *before* this
                // round's organic coverage is folded in: a config
                // another instance genuinely observed this round stays
                // covered.
                for cfg in requeue {
                    pool.schedule.requeue(cfg);
                }
                if !batch.is_empty() {
                    pool.shared
                        .publish_batch(batch.iter().map(|(config, m)| (config, m)));
                    pool.schedule
                        .mark_explored_batch(batch.iter().map(|(config, _)| config));
                }
                pool.refresh_cache(self.config.incremental_refresh);
            }
        }
        // Kernel specialization happens here at the barrier — never in
        // an instance's step — so a fleet of N instances running the
        // same configuration lowers it exactly once, even with
        // knowledge sharing off.
        let engine = self.config.engine;
        for (pool, tns) in self.pools.iter_mut().zip(&kernel_tns) {
            for &tn in tns {
                pool.ensure_kernel(engine, tn);
            }
        }
        if any_failed {
            // Failed instances leave the fleet like retirees: the
            // survivors inherit their power share.
            self.rebalance_power();
        }
        self.rounds += 1;
        if observing {
            // Steps first (instance order), then the round's publishes
            // with each pool's post-batch epoch — the order state
            // actually changed in.
            let epochs: Vec<u64> = self.pools.iter().map(|p| p.shared.epoch()).collect();
            for event in step_events {
                self.emit(event);
            }
            for (id, pool) in publishers {
                let t_s = lock_instance(&self.instances[id]).app.now_s();
                self.emit(FleetEvent::Published {
                    id: dense_id(id),
                    t_s,
                    epoch: epochs[pool],
                });
            }
        }
        steps
    }

    /// Delivers one event to every registered observer, in
    /// registration order. Sequential code only.
    fn emit(&mut self, event: FleetEvent) {
        for observer in &mut self.observers {
            observer(&event);
        }
    }
}

/// A dense lockstep index as a never-reused handle: dense runtimes
/// never reuse an index, so generation 0 is faithful.
pub(crate) fn dense_id(id: usize) -> InstanceId {
    InstanceId::new(u32::try_from(id).expect("dense fleet ids fit in u32"), 0)
}

impl FleetRuntime for Fleet {
    /// Rounds until every active instance's own virtual clock has
    /// reached the absolute time `t_s`; one scheduler event is one
    /// synchronized round. From a fresh boot (all clocks at zero) this
    /// is exactly the historical `run_for(t_s)` round sequence.
    fn run_until(&mut self, t_s: f64) -> u64 {
        let deadlines = vec![t_s; self.instances.len()];
        self.rounds_to_deadlines(&deadlines)
    }

    /// Runs `n` synchronized rounds (stopping early once no instance
    /// is active); returns the rounds run.
    fn run_events(&mut self, n: u64) -> u64 {
        for done in 0..n {
            if self.step_round_inner() == 0 {
                return done;
            }
        }
        n
    }

    fn observe(&mut self, observer: EventObserver) {
        self.observers.push(observer);
    }

    /// The furthest virtual clock any instance has reached (instances
    /// advance at their own speed inside a round).
    fn virtual_now_s(&self) -> f64 {
        self.instances
            .iter()
            .map(|m| lock_instance(m).app.now_s())
            .fold(0.0, f64::max)
    }

    fn active_count(&self) -> usize {
        self.active_instances()
    }
}

#[cfg(test)]
mod tests {
    // The pinned reference tests exercise the deprecated round surface
    // on purpose: it must stay bit-identical until removal.
    #![allow(deprecated)]

    use super::*;
    use crate::toolchain::Toolchain;
    use polybench::Dataset;

    fn quick_enhanced(app: App) -> EnhancedApp {
        Toolchain {
            dataset: Dataset::Medium,
            dse_repetitions: 1,
            ..Toolchain::default()
        }
        .enhance(app)
        .unwrap()
    }

    fn rank() -> Rank {
        Rank::throughput_per_watt2()
    }

    fn fleet_with(config: FleetConfig) -> Fleet {
        Fleet::new(config).expect("valid fleet config")
    }

    #[test]
    fn spawn_boots_instances_with_independent_noise() {
        let enhanced = quick_enhanced(App::TwoMm);
        let mut fleet = fleet_with(FleetConfig::default());
        let ids = fleet.spawn(&enhanced, &rank(), 7, 3);
        assert_eq!(ids, vec![0, 1, 2]);
        assert_eq!(fleet.active_instances(), 3);
        fleet.step_round();
        let t0 = fleet.trace(0)[0].time_s;
        let t1 = fleet.trace(1)[0].time_s;
        assert_ne!(t0, t1, "forked machines must see distinct noise");
    }

    #[test]
    fn observations_propagate_through_shared_knowledge() {
        let enhanced = quick_enhanced(App::TwoMm);
        let mut fleet = fleet_with(FleetConfig::default());
        fleet.spawn(&enhanced, &rank(), 3, 2);
        assert_eq!(fleet.knowledge_epoch(App::TwoMm), Some(0));
        let steps = fleet.step_round();
        assert_eq!(steps, 2);
        assert_eq!(fleet.knowledge_epoch(App::TwoMm), Some(2));
        let learned = fleet.learned_knowledge(App::TwoMm).unwrap();
        assert_ne!(
            learned, enhanced.knowledge,
            "merged observations must refresh expectations"
        );
    }

    #[test]
    fn invalid_configs_are_rejected_at_construction() {
        let zero_window = Fleet::new(FleetConfig {
            knowledge_window: 0,
            ..FleetConfig::default()
        });
        let err = zero_window.err().expect("zero window must be rejected");
        assert_eq!(err.stage(), crate::error::StageId::Runtime);
        assert!(err.to_string().contains("knowledge_window"), "{err}");

        let zero_min_obs = Fleet::new(FleetConfig {
            min_observations: 0,
            ..FleetConfig::default()
        });
        let err = zero_min_obs
            .err()
            .expect("zero min_observations must be rejected, not clamped");
        assert!(err.to_string().contains("min_observations"), "{err}");

        let zero_shards = Fleet::new(FleetConfig {
            knowledge_shards: 0,
            ..FleetConfig::default()
        });
        let err = zero_shards.err().expect("zero shards must be rejected");
        assert!(err.to_string().contains("knowledge_shards"), "{err}");

        let bad_budget = Fleet::new(FleetConfig {
            power_budget_w: Some(-3.0),
            ..FleetConfig::default()
        });
        let err = bad_budget.err().expect("negative budget must be rejected");
        assert!(err.to_string().contains("power_budget_w"), "{err}");
    }

    #[test]
    fn the_builder_rejects_every_invalid_knob_at_its_setter() {
        // Field errors surface at the setter that introduced them, with
        // the same diagnostics the struct-literal path raises at boot.
        let err = FleetConfig::builder().knowledge_window(0).err().unwrap();
        assert!(err.to_string().contains("knowledge_window"), "{err}");

        let err = FleetConfig::builder().min_observations(0).err().unwrap();
        assert!(err.to_string().contains("min_observations"), "{err}");

        let err = FleetConfig::builder().knowledge_shards(0).err().unwrap();
        assert!(err.to_string().contains("knowledge_shards"), "{err}");

        for bad in [-3.0, 0.0, f64::NAN, f64::INFINITY] {
            let err = FleetConfig::builder()
                .power_budget_w(Some(bad))
                .err()
                .unwrap();
            assert!(err.to_string().contains("power_budget_w"), "{bad}: {err}");
        }

        let empty = crate::snapshot::KnowledgeSnapshot {
            fingerprint: crate::snapshot::SnapshotFingerprint::new("twomm", "Medium", 0),
            epoch: 0,
            shard_epochs: Vec::new(),
            knowledge: Knowledge::new(),
        };
        let err = FleetConfig::builder()
            .warm_start(Some(empty))
            .err()
            .unwrap();
        assert!(err.to_string().contains("warm_start"), "{err}");

        let bad_dist = crate::transport::DistributedConfig {
            sync_interval: 0,
            ..Default::default()
        };
        let err = FleetConfig::builder()
            .distributed(Some(bad_dist))
            .err()
            .unwrap();
        assert!(err.to_string().contains("sync_interval"), "{err}");

        // The cross-field rule only triggers at build().
        let err = FleetConfig::builder()
            .schedule(Schedule::EventDriven)
            .distributed(Some(crate::transport::DistributedConfig::default()))
            .unwrap()
            .build()
            .expect_err("EventDriven + distributed must fail at build()");
        assert!(err.to_string().contains("EventDriven"), "{err}");

        // A fully-valid chain builds, and every knob landed.
        let config = FleetConfig::builder()
            .share_knowledge(false)
            .exploration_interval(7)
            .knowledge_window(16)
            .unwrap()
            .min_observations(2)
            .unwrap()
            .knowledge_shards(4)
            .unwrap()
            .incremental_refresh(false)
            .power_budget_w(Some(400.0))
            .unwrap()
            .parallel_step(false)
            .engine(ExecutionEngine::Bytecode)
            .analysis_prune(true)
            .schedule(Schedule::EventDriven)
            .build()
            .unwrap();
        assert!(!config.share_knowledge);
        assert_eq!(config.exploration_interval, 7);
        assert_eq!(config.knowledge_window, 16);
        assert_eq!(config.min_observations, 2);
        assert_eq!(config.knowledge_shards, 4);
        assert!(!config.incremental_refresh);
        assert_eq!(config.power_budget_w, Some(400.0));
        assert!(!config.parallel_step);
        assert_eq!(config.engine, ExecutionEngine::Bytecode);
        assert!(config.analysis_prune);
        assert_eq!(config.schedule, Schedule::EventDriven);

        // The struct-literal compatibility shim still boots the same
        // fleet the builder output would.
        let literal = FleetConfig {
            knowledge_window: 16,
            ..FleetConfig::default()
        };
        assert!(Fleet::new(literal).is_ok());
    }

    #[test]
    fn the_runtime_surface_matches_the_legacy_round_loop() {
        let enhanced = quick_enhanced(App::TwoMm);
        let boot = || {
            let mut fleet = fleet_with(FleetConfig::default());
            fleet.spawn(&enhanced, &rank(), 7, 3);
            fleet
        };
        // From a fresh boot (all clocks at zero) run_until(t) is the
        // historical run_for(t) round sequence, bit for bit.
        let mut legacy = boot();
        legacy.run_for(2.0);
        let mut unified = boot();
        let rounds = unified.run_until(2.0);
        assert!(rounds > 0);
        assert_eq!(unified.rounds(), legacy.rounds());
        assert!(unified.virtual_now_s() >= 2.0);
        assert_eq!(unified.active_count(), 3);
        for id in 0..3 {
            assert_eq!(
                unified.trace(id).to_vec(),
                legacy.trace(id).to_vec(),
                "instance {id} diverged"
            );
        }
        assert_eq!(
            unified.learned_knowledge(App::TwoMm),
            legacy.learned_knowledge(App::TwoMm)
        );
        // run_events(n) is n synchronized rounds.
        let before = unified.rounds();
        assert_eq!(unified.run_events(2), 2);
        assert_eq!(unified.rounds(), before + 2);
    }

    #[test]
    fn observers_see_lockstep_rounds_without_perturbing_them() {
        use crate::events::FleetEvent;
        use std::sync::{Arc, Mutex};
        let enhanced = quick_enhanced(App::TwoMm);
        let run = |observe: bool| {
            let mut fleet = fleet_with(FleetConfig::default());
            let seen = Arc::new(Mutex::new(Vec::new()));
            if observe {
                let sink = Arc::clone(&seen);
                fleet.observe(Box::new(move |e: &FleetEvent| {
                    sink.lock().unwrap().push(e.clone());
                }));
            }
            fleet.spawn(&enhanced, &rank(), 5, 2);
            fleet.run_events(3);
            fleet.retire_instance(1);
            let traces: Vec<_> = (0..2).map(|id| fleet.trace(id).to_vec()).collect();
            drop(fleet);
            let events = Arc::try_unwrap(seen).unwrap().into_inner().unwrap();
            (traces, events)
        };
        let (plain, none) = run(false);
        let (observed, events) = run(true);
        assert!(none.is_empty());
        assert_eq!(plain, observed, "observers must not perturb the rounds");
        let arrived: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                FleetEvent::Arrived { id, .. } => Some(*id),
                _ => None,
            })
            .collect();
        assert_eq!(arrived, vec![dense_id(0), dense_id(1)]);
        let stepped = events
            .iter()
            .filter(|e| matches!(e, FleetEvent::Stepped { .. }))
            .count();
        assert_eq!(stepped, 6, "2 instances x 3 rounds");
        let published = events
            .iter()
            .filter(|e| matches!(e, FleetEvent::Published { .. }))
            .count();
        assert_eq!(published, 6, "knowledge sharing publishes every step");
        assert!(events
            .iter()
            .any(|e| matches!(e, FleetEvent::Retired { id, .. } if *id == dense_id(1))));
        // Within one round, all Published events report the same
        // post-batch epoch (the barrier merges the round as one batch).
        let epochs: Vec<u64> = events
            .iter()
            .filter_map(|e| match e {
                FleetEvent::Published { epoch, .. } => Some(*epoch),
                _ => None,
            })
            .collect();
        for round in epochs.chunks(2) {
            assert_eq!(round[0], round[1], "one batch per round");
        }
    }

    #[test]
    fn a_panicking_instance_is_deactivated_not_fatal() {
        let enhanced = quick_enhanced(App::TwoMm);
        // Knowledge sharing off: with it on, the adoption path would
        // repair the emptied knowledge before the step could panic.
        let mut fleet = fleet_with(FleetConfig {
            share_knowledge: false,
            ..FleetConfig::default()
        });
        fleet.spawn(&enhanced, &rank(), 3, 3);
        fleet.set_power_budget(Some(300.0));
        assert_eq!(fleet.power_share_w(), Some(100.0));
        fleet.step_round();
        // Emptying the knowledge makes the next plan step panic inside
        // the MAPE-K loop ("toolchain produced non-empty knowledge") —
        // a deterministic stand-in for any instance-level bug.
        fleet.with_instance_mut(0, |app| app.set_knowledge(Knowledge::new()));
        let steps = fleet.step_round();
        assert_eq!(steps, 2, "the two healthy instances keep stepping");
        let stats = fleet.stats();
        assert_eq!(stats.instances, 3);
        assert_eq!(stats.active, 2);
        assert_eq!(stats.failed, 1);
        assert_eq!(fleet.failed_instances(), 1);
        // The recovered panic message is kept for diagnosis.
        let reason = fleet.failure_reason(0).expect("failure recorded");
        assert!(reason.contains("non-empty knowledge"), "{reason}");
        assert_eq!(fleet.failure_reason(1), None);
        // The failed instance's power share went back into the pot.
        assert_eq!(fleet.power_share_w(), Some(150.0));
        // The fleet keeps running; the failed instance's trace is
        // frozen but still readable through its recovered lock.
        let frozen = fleet.trace(0).len();
        fleet.run_for(0.5);
        assert_eq!(fleet.trace(0).len(), frozen);
        assert!(fleet.trace(1).len() > 1);
    }

    #[test]
    fn stale_exploration_assignment_falls_back_to_a_planned_step() {
        let enhanced = quick_enhanced(App::TwoMm);
        let mut fleet = fleet_with(FleetConfig {
            exploration_interval: 1, // every step explores
            ..FleetConfig::default()
        });
        // A doctored twin: same app and design knowledge (so it joins
        // the same pool and the same exploration schedule) but its
        // version table lost the second enumeration entry — the config
        // the schedule will assign to instance 1 in round one has no
        // compiled version, exactly the shape of a stale assignment.
        let mut doctored = enhanced.clone();
        let missing = enhanced.knowledge.points()[1].config.clone();
        doctored
            .versions
            .retain(|(co, bp)| !(*co == missing.co && *bp == missing.bp));
        assert!(doctored.try_version_of(&missing).is_err());
        fleet.add_instance(enhanced.clone(), rank(), enhanced.platform.machine(1));
        fleet.add_instance(doctored, rank(), enhanced.platform.machine(2));
        let steps = fleet.step_round();
        assert_eq!(steps, 2, "the stale assignment must not panic");
        let trace = fleet.trace(1);
        assert_eq!(trace.len(), 1);
        assert!(
            !trace[0].forced,
            "the fallback is a normal AS-RTM step, not the stale exploration"
        );
        assert_eq!(fleet.failed_instances(), 0);
        // The unexecuted config went back into the sweep: coverage
        // counts only what was actually observed (instance 0's forced
        // config + the two organic fallback/planned selections), and
        // the requeued config stays available for a later retry at the
        // back of the enumeration order (it is never starved out nor
        // over-reported).
        let (covered, total) = fleet.exploration_coverage(App::TwoMm).unwrap();
        assert!(covered <= 3, "unexecuted assignment counted as covered");
        assert!(covered < total);
    }

    #[test]
    fn empty_observations_do_not_spin_the_epoch() {
        let enhanced = quick_enhanced(App::TwoMm);
        let mut fleet = fleet_with(FleetConfig::default());
        fleet.spawn(&enhanced, &rank(), 3, 2);
        fleet.step_round();
        let epoch = fleet.knowledge_epoch(App::TwoMm).unwrap();
        // Publishing an empty bundle directly against the pool's shared
        // knowledge is accepted but changes nothing — no epoch bump,
        // so no fleet-wide snapshot adoption is triggered.
        let learned = fleet.learned_knowledge(App::TwoMm).unwrap();
        let pool = &fleet.pools[0];
        let config = learned.points()[0].config.clone();
        assert!(pool.shared.publish(&config, &MetricValues::new()));
        assert_eq!(fleet.knowledge_epoch(App::TwoMm), Some(epoch));
    }

    #[test]
    fn incremental_and_full_refresh_agree() {
        let enhanced = quick_enhanced(App::TwoMm);
        let run = |incremental_refresh: bool, knowledge_shards: usize| {
            let mut fleet = fleet_with(FleetConfig {
                incremental_refresh,
                knowledge_shards,
                ..FleetConfig::default()
            });
            fleet.spawn(&enhanced, &rank(), 3, 4);
            fleet.run_for(2.0);
            let traces: Vec<_> = (0..4).map(|id| fleet.trace(id)).collect();
            (
                traces,
                fleet.learned_knowledge(App::TwoMm).unwrap(),
                fleet.knowledge_epoch(App::TwoMm).unwrap(),
            )
        };
        let incremental = run(true, margot::DEFAULT_SHARDS);
        let reference = run(false, 1);
        assert_eq!(incremental, reference);
    }

    #[test]
    fn frozen_fleet_never_touches_the_shared_knowledge() {
        let enhanced = quick_enhanced(App::TwoMm);
        let mut fleet = fleet_with(FleetConfig {
            share_knowledge: false,
            ..FleetConfig::default()
        });
        fleet.spawn(&enhanced, &rank(), 3, 2);
        fleet.run_for(1.0);
        assert_eq!(fleet.knowledge_epoch(App::TwoMm), Some(0));
        assert_eq!(
            fleet.learned_knowledge(App::TwoMm).unwrap(),
            enhanced.knowledge
        );
    }

    #[test]
    fn cooperative_exploration_covers_distinct_configs() {
        let enhanced = quick_enhanced(App::TwoMm);
        let mut fleet = fleet_with(FleetConfig {
            exploration_interval: 1, // every step explores
            ..FleetConfig::default()
        });
        fleet.spawn(&enhanced, &rank(), 3, 4);
        let total = enhanced.knowledge.len();
        for _ in 0..8 {
            fleet.step_round();
        }
        let (covered, t) = fleet.exploration_coverage(App::TwoMm).unwrap();
        assert_eq!(t, total);
        // 4 instances × 8 exploration rounds = 32 distinct configs.
        assert_eq!(covered, 32, "the sweep must not revisit configs");
    }

    #[test]
    fn power_budget_splits_and_rebalances_on_membership_changes() {
        let enhanced = quick_enhanced(App::TwoMm);
        let mut fleet = fleet_with(FleetConfig::default());
        fleet.spawn(&enhanced, &rank(), 3, 4);
        fleet.set_power_budget(Some(400.0));
        assert_eq!(fleet.power_share_w(), Some(100.0));
        assert!(fleet.retire_instance(3));
        assert!(!fleet.retire_instance(3), "already retired");
        let share = fleet.power_share_w().unwrap();
        assert!((share - 400.0 / 3.0).abs() < 1e-9, "{share}");
        // A joining instance shrinks everyone's slice.
        let machine = enhanced.platform.machine(99);
        fleet.add_instance(enhanced.clone(), rank(), machine);
        assert_eq!(fleet.power_share_w(), Some(100.0));
        fleet.set_power_budget(None);
        assert_eq!(fleet.power_share_w(), None);
    }

    #[test]
    fn power_budget_constrains_selected_points() {
        let enhanced = quick_enhanced(App::TwoMm);
        let mut fleet = fleet_with(FleetConfig {
            exploration_interval: 0, // pure AS-RTM selection
            ..FleetConfig::default()
        });
        fleet.spawn(&enhanced, &Rank::minimize(Metric::exec_time()), 3, 2);
        // 2 instances × 70 W each: the unconstrained pick draws >100 W.
        fleet.set_power_budget(Some(140.0));
        fleet.run_for(3.0);
        for id in 0..2 {
            for s in fleet.trace(id) {
                assert!(
                    s.power_w < 70.0 * 1.2,
                    "instance {id} draws {:.1} W over its 70 W share",
                    s.power_w
                );
            }
        }
    }

    #[test]
    fn retired_instances_stop_stepping() {
        let enhanced = quick_enhanced(App::TwoMm);
        let mut fleet = fleet_with(FleetConfig::default());
        fleet.spawn(&enhanced, &rank(), 3, 2);
        fleet.step_round();
        fleet.retire_instance(0);
        let frozen_len = fleet.trace(0).len();
        assert_eq!(fleet.step_round(), 1, "only instance 1 steps");
        assert_eq!(fleet.trace(0).len(), frozen_len);
        assert_eq!(fleet.active_instances(), 1);
        // An orderly retirement is not a failure.
        assert_eq!(fleet.failed_instances(), 0);
    }

    #[test]
    fn late_joiners_inherit_the_learned_knowledge() {
        let enhanced = quick_enhanced(App::TwoMm);
        let mut fleet = fleet_with(FleetConfig::default());
        fleet.spawn(&enhanced, &rank(), 3, 2);
        fleet.run_for(2.0);
        let learned = fleet.learned_knowledge(App::TwoMm).unwrap();
        let machine = enhanced.platform.machine(123);
        let id = fleet.add_instance(enhanced.clone(), rank(), machine);
        let adopted = fleet.with_instance_mut(id, |app| app.manager().asrtm().knowledge().clone());
        assert_eq!(adopted, learned);
    }

    #[test]
    fn analysis_prune_shrinks_the_exploration_schedule_only() {
        let enhanced = quick_enhanced(App::Mvt);
        let mut fleet = fleet_with(FleetConfig {
            analysis_prune: true,
            ..FleetConfig::default()
        });
        fleet.spawn(&enhanced, &rank(), 5, 2);
        let stats = fleet.stats();
        assert_eq!(
            stats.schedule_pruned_infeasible, 0,
            "all polybench specializations are statically safe"
        );
        assert!(
            stats.schedule_pruned_dominated > 0,
            "a full-factorial space has statically dominated points"
        );
        let (_, total) = fleet.exploration_coverage(App::Mvt).unwrap();
        assert_eq!(
            total as u64 + stats.schedule_pruned_dominated,
            enhanced.knowledge.len() as u64,
            "schedule + pruned must account for the whole design space"
        );
        // Pruning never touches the shared knowledge: every design-time
        // point stays selectable by the AS-RTM.
        let learned = fleet.learned_knowledge(App::Mvt).unwrap();
        assert_eq!(learned.len(), enhanced.knowledge.len());
        // And the pruned fleet still steps normally.
        assert_eq!(fleet.step_round(), 2);

        // The default configuration prunes nothing.
        let mut plain = fleet_with(FleetConfig::default());
        plain.spawn(&enhanced, &rank(), 5, 1);
        let plain_stats = plain.stats();
        assert_eq!(plain_stats.schedule_pruned_dominated, 0);
        assert_eq!(plain_stats.schedule_pruned_infeasible, 0);
        let (_, plain_total) = plain.exploration_coverage(App::Mvt).unwrap();
        assert_eq!(plain_total, enhanced.knowledge.len());
    }

    #[test]
    fn mixed_app_fleet_keeps_separate_pools() {
        let twomm = quick_enhanced(App::TwoMm);
        let mvt = quick_enhanced(App::Mvt);
        let mut fleet = fleet_with(FleetConfig::default());
        fleet.spawn(&twomm, &rank(), 3, 2);
        fleet.spawn(&mvt, &rank(), 3, 2);
        fleet.run_for(1.0);
        let k2 = fleet.learned_knowledge(App::TwoMm).unwrap();
        let km = fleet.learned_knowledge(App::Mvt).unwrap();
        assert_ne!(k2, km);
        assert!(fleet.knowledge_epoch(App::TwoMm).unwrap() > 0);
        assert!(fleet.knowledge_epoch(App::Mvt).unwrap() > 0);
    }

    #[test]
    fn kernels_compile_once_per_thread_count_fleet_wide() {
        let enhanced = quick_enhanced(App::TwoMm);
        let mut fleet = fleet_with(FleetConfig::default());
        fleet.spawn(&enhanced, &rank(), 3, 4);
        let boot = fleet.stats();
        assert_eq!(boot.kernel_builds, 1, "pool creation warms threads=1");
        fleet.run_for(2.0);
        let stats = fleet.stats();
        // One lowering per distinct thread count the fleet ran; every
        // other (instance, round) pair hit the pool cache.
        let distinct_tns: std::collections::HashSet<u32> = (0..4)
            .flat_map(|id| fleet.trace(id))
            .map(|s| s.config.tn)
            .collect();
        assert!(stats.kernel_builds <= 1 + distinct_tns.len() as u64);
        assert!(
            stats.kernel_cache_hits > stats.kernel_builds,
            "shared configs must reuse the pool kernel: {stats:?}"
        );
        // Reports are exposed per specialization and identical across
        // thread counts — the thread knob is configuration, not data.
        let reference = fleet.kernel_report(App::TwoMm, 1).expect("warm kernel");
        for tn in distinct_tns {
            assert_eq!(fleet.kernel_report(App::TwoMm, tn), Some(reference));
        }
        assert_eq!(fleet.kernel_report(App::Mvt, 1), None);
    }

    #[test]
    fn ast_and_bytecode_fleets_agree_on_kernel_reports() {
        let enhanced = quick_enhanced(App::Atax);
        let run = |engine: ExecutionEngine| {
            let mut fleet = fleet_with(FleetConfig {
                engine,
                ..FleetConfig::default()
            });
            fleet.spawn(&enhanced, &rank(), 3, 2);
            fleet.run_for(1.0);
            (fleet.kernel_report(App::Atax, 1).unwrap(), fleet.trace(0))
        };
        let (ast_report, ast_trace) = run(ExecutionEngine::Ast);
        let (byte_report, byte_trace) = run(ExecutionEngine::Bytecode);
        assert_eq!(ast_report, byte_report, "engines must be bit-identical");
        assert_eq!(
            ast_trace, byte_trace,
            "the engine never perturbs the MAPE-K loop"
        );
    }

    #[test]
    fn warm_started_pools_adopt_the_shipped_snapshot() {
        let enhanced = quick_enhanced(App::TwoMm);
        // A donor fleet learns for a while, then cuts a snapshot.
        let mut donor = fleet_with(FleetConfig::default());
        donor.spawn(&enhanced, &rank(), 3, 2);
        donor.run_for(2.0);
        let fingerprint = SnapshotFingerprint::new(App::TwoMm.name(), "Medium", 0);
        let snapshot = donor
            .knowledge_snapshot(App::TwoMm, fingerprint)
            .expect("donor has a TwoMm pool");
        assert!(!snapshot.knowledge.is_empty());
        assert_ne!(snapshot.knowledge, enhanced.knowledge);

        // A warm fleet boots every joiner from the shipped state.
        let mut warm = fleet_with(FleetConfig {
            warm_start: Some(snapshot.clone()),
            ..FleetConfig::default()
        });
        let id = warm.spawn(&enhanced, &rank(), 7, 1)[0];
        let expected = snapshot.apply_to_design(&enhanced.knowledge);
        // The effective knowledge (and the cache the joiner adopts)
        // reads back the seeded observation rings, whose window mean
        // of n identical samples can differ from the shipped value in
        // the last ulp — compare values to within float-summation
        // rounding, configs exactly.
        let assert_shipped = |got: &Knowledge<KnobConfig>, what: &str| {
            for (l, e) in got.points().iter().zip(expected.points().iter()) {
                assert_eq!(l.config, e.config, "{what}");
                for (metric, want) in e.metrics.iter() {
                    let got = l.metric(metric).expect("seeded metric present");
                    assert!(
                        (got - want).abs() <= want.abs() * 1e-12,
                        "{what}: {metric} of {:?}: {got} vs shipped {want}",
                        l.config
                    );
                }
            }
        };
        assert_shipped(&warm.learned_knowledge(App::TwoMm).unwrap(), "pool");
        let adopted = warm.with_instance_mut(id, |app| app.manager().asrtm().knowledge().clone());
        assert_shipped(&adopted, "the joiner's warm cache");
        // The warm pool keeps learning on top of the seed.
        warm.step_round();
        assert!(warm.knowledge_epoch(App::TwoMm).unwrap() > 0);
    }

    #[test]
    fn foreign_snapshots_merge_values_but_seed_no_observations() {
        let enhanced = quick_enhanced(App::TwoMm);
        let mut donor = fleet_with(FleetConfig::default());
        donor.spawn(&enhanced, &rank(), 3, 2);
        donor.run_for(2.0);
        let snapshot = donor
            .knowledge_snapshot(
                App::TwoMm,
                SnapshotFingerprint::new(App::TwoMm.name(), "M", 0),
            )
            .expect("donor has a TwoMm pool");
        let config = FleetConfig {
            warm_start: Some(snapshot.clone()),
            ..FleetConfig::default()
        };
        // Same app: the full ring seed. Any other app: the snapshot
        // is a hint — values merge, but the rings stay empty so real
        // samples displace the guesses outright.
        assert_eq!(
            config.warm_seed_copies_for(App::TwoMm),
            config.warm_seed_copies()
        );
        assert!(config.warm_seed_copies() > 0);
        assert_eq!(config.warm_seed_copies_for(App::ThreeMm), 0);
        assert_eq!(FleetConfig::default().warm_seed_copies_for(App::TwoMm), 0);

        // A ThreeMm fleet warm-started from the TwoMm snapshot still
        // adopts the merged values at boot (the hint is visible)...
        let foreign = quick_enhanced(App::ThreeMm);
        let mut warm = fleet_with(config);
        let id = warm.spawn(&foreign, &rank(), 7, 1)[0];
        let merged = snapshot.apply_to_design(&foreign.knowledge);
        assert_eq!(warm.learned_knowledge(App::ThreeMm).unwrap(), merged);
        // ...but one real observation of a config fully replaces the
        // foreign guess instead of averaging against a seeded window.
        warm.step_round();
        let after = warm.learned_knowledge(App::ThreeMm).unwrap();
        let sampled = warm
            .with_instance_mut(id, |app| app.trace().last().map(|s| s.config.clone()))
            .expect("the instance sampled a config");
        let live = after
            .points()
            .iter()
            .find(|p| p.config == sampled)
            .expect("sampled config is in the design");
        let hint = merged
            .points()
            .iter()
            .find(|p| p.config == sampled)
            .expect("sampled config was hinted");
        assert_ne!(
            live.metrics, hint.metrics,
            "a real sample must displace the foreign hint outright"
        );
    }

    #[test]
    fn empty_warm_start_snapshots_are_rejected() {
        use crate::snapshot::KnowledgeSnapshot;
        let empty = KnowledgeSnapshot {
            fingerprint: SnapshotFingerprint::new("twomm", "Medium", 0),
            epoch: 0,
            shard_epochs: vec![0; margot::DEFAULT_SHARDS],
            knowledge: Knowledge::new(),
        };
        let err = Fleet::new(FleetConfig {
            warm_start: Some(empty),
            ..FleetConfig::default()
        })
        .err()
        .expect("empty warm-start snapshot must be rejected");
        assert!(err.to_string().contains("warm_start"), "{err}");
    }

    #[test]
    fn persist_learned_round_trips_through_knowledge_io() {
        let enhanced = quick_enhanced(App::TwoMm);
        let mut fleet = fleet_with(FleetConfig::default());
        fleet.spawn(&enhanced, &rank(), 3, 2);
        fleet.run_for(1.0);
        let dir = std::env::temp_dir().join(format!("socrates-fleet-{}", std::process::id()));
        let written = fleet.persist_learned(&dir).unwrap();
        assert_eq!(written.len(), 1);
        let loaded = crate::knowledge_io::load_knowledge(&written[0]).unwrap();
        assert_eq!(loaded, fleet.learned_knowledge(App::TwoMm).unwrap());
        std::fs::remove_dir_all(&dir).ok();
    }
}
