//! Distributed knowledge exchange over a deterministic simulated
//! transport — the layer that turns the online runtime from one
//! process into a system.
//!
//! SOCRATES' online phase is *crowdsourced*: many deployed instances
//! exchange runtime observations through a remote knowledge service,
//! not a shared address space. This module provides the three pieces
//! the [`crate::DistributedFleet`] builds on:
//!
//! - [`SimNet`] — a simulated message transport driven by the fleet's
//!   virtual clock (one tick per synchronized round). Every link gets
//!   a seeded per-link RNG drawing latency (which reorders messages),
//!   drops and duplicates, so any lossy schedule is **deterministic
//!   and replayable** from the [`LinkConfig`] seed.
//! - [`WireMessage`] — the serialisable protocol: observations, acks,
//!   per-shard [`margot::KnowledgeDelta`]s, epoch-vector sync
//!   requests/responses, gossip summaries and join/snapshot messages.
//!   On the wire, messages travel as length-prefixed **binary frames**
//!   ([`crate::wire_to_bytes`]) — [`SimNet::send`] encodes once and
//!   [`SimNet::poll_due`] decodes on delivery, so every distributed
//!   test exercises the codec. The JSON encoding remains as the pinned
//!   compatibility layer (golden files under `tests/golden/`,
//!   serialisation helpers: [`crate::wire_to_json`]).
//! - [`Replica`] — a replicated observation log with a **canonical
//!   fold order**. Observations are totally ordered by `(round,
//!   origin)`; a replica folds its log into a [`SharedKnowledge`] in
//!   that order regardless of arrival order (late arrivals trigger a
//!   refold). Two replicas holding the same set of observations
//!   therefore expose bit-identical effective knowledge *and*
//!   per-shard epoch vectors — the invariant every reconciliation
//!   path reduces to, and the one the transport property tests pin
//!   against a single-mutex [`SharedKnowledge`] reference.
//!
//! Reconciliation works per topology ([`DistTopology`]):
//!
//! - **Broker-star** — nodes send observations to a broker (resent
//!   until acked); the broker folds them canonically and broadcasts
//!   one [`margot::KnowledgeDelta`] per touched knowledge shard,
//!   stamped with that shard's monotone version. Each node keeps a
//!   **per-shard epoch vector**: a delta chaining exactly from the
//!   local version applies in place; a gap (a dropped or reordered
//!   delta) triggers a [`WireMessage::SyncRequest`] carrying the whole
//!   vector, answered with full state for every stale shard.
//! - **Gossip** — every node holds a full [`Replica`] and rumors new
//!   observations to a rotating set of peers; periodic
//!   [`WireMessage::Summary`] exchanges (per-origin contiguous
//!   sequence watermarks) let any pair retransmit exactly what the
//!   other is missing, so the logs — and
//!   with them the folded knowledge — converge once the links drain.

use crate::error::SocratesError;
use margot::{Knowledge, KnowledgeDelta, MetricValues, OperatingPoint, SharedKnowledge};
use platform_sim::KnobConfig;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use std::ops::Bound::{Excluded, Unbounded};

/// Identifies one participant of the exchange. Instance nodes are
/// numbered in spawn order (so the canonical observation order matches
/// the in-process fleet's instance order); the broker is [`BROKER`].
pub type NodeId = u32;

/// The knowledge broker's address in a [`DistTopology::BrokerStar`]
/// deployment.
pub const BROKER: NodeId = NodeId::MAX;

/// One runtime observation on the wire: which node observed which
/// metrics under which configuration, in which synchronized round.
///
/// `(round, origin)` is the observation's identity *and* its position
/// in the canonical fold order; `seq` is the origin's contiguous
/// per-node counter (what summaries and acks watermark against).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Observation {
    /// The node that measured this observation.
    pub origin: NodeId,
    /// The origin's own contiguous observation counter (0, 1, 2, …).
    pub seq: u64,
    /// The synchronized round the observation was taken in.
    pub round: u64,
    /// The software-knob configuration that was running.
    pub config: KnobConfig,
    /// The measured metric values.
    pub observed: MetricValues,
}

impl Observation {
    /// The observation's identity and canonical-order key.
    pub fn op_id(&self) -> (u64, NodeId) {
        (self.round, self.origin)
    }
}

/// The serialisable knowledge-exchange protocol. JSON (de)serialisation
/// lives in [`crate::wire_to_json`] / [`crate::wire_from_json`];
/// the schema is pinned by
/// `tests/golden/wire_messages.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WireMessage {
    /// A node announces itself (mid-run churn); answered with
    /// [`WireMessage::Welcome`] (star) or [`WireMessage::WelcomeLog`]
    /// (gossip). Resent until a snapshot arrives.
    Join {
        /// The joining node.
        node: NodeId,
    },
    /// A node retires; the broker stops broadcasting to it.
    Leave {
        /// The leaving node.
        node: NodeId,
    },
    /// A batch of observations (node → broker publishes, gossip rumor
    /// forwarding, and anti-entropy retransmissions).
    Ops {
        /// The observations, in canonical `(round, origin)` order.
        ops: Vec<Observation>,
    },
    /// Broker → node: all of your observations with `seq <
    /// count` have been merged — stop retransmitting them.
    Ack {
        /// The contiguous per-origin sequence watermark.
        count: u64,
    },
    /// Broker → nodes: one knowledge shard moved. The payload's
    /// `from_epoch`/`to_epoch` are the shard's monotone broadcast
    /// versions; a receiver whose epoch vector holds exactly
    /// `from_epoch` for this shard applies the patch in place, anyone
    /// else detects the gap and resynchronises.
    Delta {
        /// The knowledge shard the changed points belong to.
        shard: usize,
        /// The changed operating points plus the shard version chain.
        delta: KnowledgeDelta<KnobConfig>,
    },
    /// Node → broker: my per-shard epoch vector; send me full state
    /// for every shard where I am behind.
    SyncRequest {
        /// The requester's per-shard epoch vector.
        versions: Vec<u64>,
    },
    /// Broker → node: authoritative full state of one stale shard.
    SyncResponse {
        /// The shard being repaired.
        shard: usize,
        /// The shard's current broadcast version.
        version: u64,
        /// Every operating point of the shard, as `(position, point)`.
        points: Vec<(usize, OperatingPoint<KnobConfig>)>,
    },
    /// Gossip anti-entropy: what the sender's replica holds, as
    /// per-origin contiguous sequence watermarks. The receiver
    /// retransmits what the sender is missing, and if `reply` is set
    /// answers with its own summary so one exchange reconciles both
    /// directions.
    Summary {
        /// `(origin, contiguous count)`: the sender holds every
        /// observation of `origin` with `seq < count`.
        counts: Vec<(NodeId, u64)>,
        /// Whether the receiver should answer with its own summary.
        reply: bool,
    },
    /// Broker → joining node: a snapshot of the published knowledge
    /// plus the per-shard epoch vector it corresponds to; subsequent
    /// [`WireMessage::Delta`]s chain from these versions.
    Welcome {
        /// The published effective knowledge.
        knowledge: Knowledge<KnobConfig>,
        /// The per-shard epoch vector of the snapshot.
        versions: Vec<u64>,
    },
    /// Gossip peer → joining node: a snapshot of the full observation
    /// log; the joiner folds it and catches up via gossiped ops.
    WelcomeLog {
        /// Every observation the peer holds, in canonical order.
        ops: Vec<Observation>,
    },
}

/// The seeded loss/latency model applied independently to every
/// directed link of a [`SimNet`].
///
/// Latencies are in **virtual-clock ticks** (the fleet ticks once per
/// synchronized round). A latency of 0 delivers in the next round's
/// delivery phase — or within the *same* phase for replies generated
/// while delivering, which is what makes an ideal link behave exactly
/// like the in-process barrier.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkConfig {
    /// Seed of the per-link RNG streams (links are independent:
    /// traffic on one link never perturbs another's schedule).
    pub seed: u64,
    /// Minimum per-message latency, ticks.
    pub min_latency: u64,
    /// Maximum per-message latency, ticks (uniform in
    /// `min..=max`; jitter is what reorders messages).
    pub max_latency: u64,
    /// Probability a message copy is silently dropped. Must be `< 1`.
    pub drop_prob: f64,
    /// Probability a message is transmitted twice (each copy with its
    /// own latency and drop draw).
    pub dup_prob: f64,
}

impl LinkConfig {
    /// A lossless, zero-latency, duplicate-free link: the wire
    /// equivalent of the in-process round barrier.
    pub fn ideal(seed: u64) -> Self {
        LinkConfig {
            seed,
            min_latency: 0,
            max_latency: 0,
            drop_prob: 0.0,
            dup_prob: 0.0,
        }
    }

    /// Checks the model for values that could never converge (drop
    /// probability 1) or are malformed (inverted latency range,
    /// non-finite probabilities).
    ///
    /// # Errors
    ///
    /// Returns a transport-stage [`SocratesError`] naming the field.
    pub fn validate(&self) -> Result<(), SocratesError> {
        if self.min_latency > self.max_latency {
            return Err(SocratesError::transport(format!(
                "link min_latency {} exceeds max_latency {}",
                self.min_latency, self.max_latency
            )));
        }
        let p = self.drop_prob;
        if !(p.is_finite() && (0.0..1.0).contains(&p)) {
            return Err(SocratesError::transport(format!(
                "link drop_prob = {p} must be a finite probability in [0, 1) \
                 (1 would mean no message is ever delivered)"
            )));
        }
        let p = self.dup_prob;
        if !(p.is_finite() && (0.0..=1.0).contains(&p)) {
            return Err(SocratesError::transport(format!(
                "link dup_prob = {p} must be a finite probability in [0, 1] \
                 (1 duplicates every message — replicas deduplicate, so that is a \
                 legitimate stress model)"
            )));
        }
        Ok(())
    }
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig::ideal(0)
    }
}

/// How the participants are wired.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DistTopology {
    /// All nodes talk to a central knowledge broker that owns the
    /// authoritative merge and broadcasts per-shard deltas.
    BrokerStar,
    /// No broker: every node holds a full replica and rumors new
    /// observations to `fanout` rotating peers per round, with
    /// summary-based anti-entropy repairing drops.
    Gossip {
        /// Peers contacted per round (clamped to the peer count;
        /// `fanout >= peers` is a full broadcast mesh).
        fanout: usize,
    },
}

/// Policy of a distributed deployment ([`crate::DistributedFleet`]),
/// carried inside [`crate::FleetConfig::distributed`].
#[derive(Debug, Clone, PartialEq)]
pub struct DistributedConfig {
    /// Who talks to whom.
    pub topology: DistTopology,
    /// The seeded loss/latency model of every link.
    pub link: LinkConfig,
    /// Anti-entropy cadence, rounds: how often nodes proactively
    /// resynchronise (star: epoch-vector sync requests; gossip:
    /// summaries). Must be ≥ 1.
    pub sync_interval: u64,
    /// Round budget of [`crate::DistributedFleet::drain`] before it
    /// gives up with a transport error. Must be ≥ 1.
    pub max_drain_rounds: u64,
}

impl Default for DistributedConfig {
    fn default() -> Self {
        DistributedConfig {
            topology: DistTopology::BrokerStar,
            link: LinkConfig::default(),
            sync_interval: 4,
            max_drain_rounds: 10_000,
        }
    }
}

impl DistributedConfig {
    /// Checks the policy ([`LinkConfig::validate`] plus the cadence
    /// and fan-out bounds).
    ///
    /// # Errors
    ///
    /// Returns a transport-stage [`SocratesError`] naming the field.
    pub fn validate(&self) -> Result<(), SocratesError> {
        self.link.validate()?;
        if self.sync_interval == 0 {
            return Err(SocratesError::transport(
                "sync_interval must be >= 1: without periodic anti-entropy, dropped \
                 messages are never repaired",
            ));
        }
        if self.max_drain_rounds == 0 {
            return Err(SocratesError::transport(
                "max_drain_rounds must be >= 1: a drain needs at least one round",
            ));
        }
        if let DistTopology::Gossip { fanout } = self.topology {
            if fanout == 0 {
                return Err(SocratesError::transport(
                    "gossip fanout must be >= 1: a node that contacts nobody never \
                     disseminates its observations",
                ));
            }
        }
        Ok(())
    }
}

/// Message counters of a [`SimNet`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Messages handed to [`SimNet::send`].
    pub sent: u64,
    /// Message copies delivered to their destination.
    pub delivered: u64,
    /// Message copies dropped by the loss model.
    pub dropped: u64,
    /// Messages the duplication model transmitted twice.
    pub duplicated: u64,
    /// Encoded frame bytes handed to the wire (per transmitted copy).
    pub bytes_sent: u64,
    /// Encoded frame bytes delivered to their destination.
    pub bytes_delivered: u64,
}

/// One in-flight (or delivered) message.
#[derive(Debug, Clone)]
pub struct Envelope {
    /// Sending participant.
    pub from: NodeId,
    /// Receiving participant.
    pub to: NodeId,
    /// Payload.
    pub msg: WireMessage,
}

/// A queued message copy in its on-the-wire form: the binary frame,
/// encoded once at [`SimNet::send`] time.
#[derive(Debug, Clone)]
struct WireEnvelope {
    from: NodeId,
    to: NodeId,
    bytes: Vec<u8>,
}

/// The deterministic simulated transport: bounded virtual-clock
/// message queues with seeded per-link latency, reordering, drop and
/// duplication.
///
/// Determinism contract: given the same [`LinkConfig`] and the same
/// sequence of [`send`](Self::send) calls at the same ticks, the
/// delivery schedule — order, timing, drops, duplicates — is
/// bit-identical. Messages become deliverable once the clock reaches
/// their scheduled tick and are handed out in `(deliver_tick,
/// send_sequence)` order.
#[derive(Debug)]
pub struct SimNet {
    config: LinkConfig,
    now: u64,
    seq: u64,
    queue: BTreeMap<(u64, u64), WireEnvelope>,
    links: HashMap<(NodeId, NodeId), ChaCha8Rng>,
    stats: NetStats,
}

impl SimNet {
    /// An empty network under the given link model.
    pub fn new(config: LinkConfig) -> Self {
        SimNet {
            config,
            now: 0,
            seq: 0,
            queue: BTreeMap::new(),
            links: HashMap::new(),
            stats: NetStats::default(),
        }
    }

    /// The virtual clock, ticks.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Advances the virtual clock by one tick (one synchronized
    /// round).
    pub fn tick(&mut self) {
        self.now += 1;
    }

    /// Messages scheduled but not yet delivered (including ones due
    /// now).
    pub fn in_flight(&self) -> usize {
        self.queue.len()
    }

    /// Message counters so far.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// Transmits `msg` from `from` to `to` through the link's seeded
    /// loss/latency model. A duplicated message is transmitted twice;
    /// every copy draws its own latency and drop.
    ///
    /// The message is encoded to its binary frame **once** here;
    /// duplicate copies share the encoding, and [`Self::poll_due`]
    /// decodes on delivery — the simulated wire carries bytes, not
    /// in-memory structures.
    pub fn send(&mut self, from: NodeId, to: NodeId, msg: WireMessage) {
        self.stats.sent += 1;
        let bytes = crate::knowledge_io::wire_to_bytes(&msg)
            .expect("binary wire encoding is total over well-formed messages");
        let config = &self.config;
        let rng = self.links.entry((from, to)).or_insert_with(|| {
            // Independent stream per directed link, derived from the
            // shared seed so the whole schedule replays from one
            // number.
            let mut state =
                config.seed ^ (u64::from(from) << 32) ^ u64::from(to) ^ 0x9e37_79b9_7f4a_7c15;
            ChaCha8Rng::seed_from_u64(rand::split_mix_64(&mut state))
        });
        let copies = if config.dup_prob > 0.0 && rng.gen_bool(config.dup_prob) {
            self.stats.duplicated += 1;
            2
        } else {
            1
        };
        for _ in 0..copies {
            self.stats.bytes_sent += bytes.len() as u64;
            let latency = if config.max_latency > config.min_latency {
                rng.gen_range(config.min_latency..=config.max_latency)
            } else {
                config.min_latency
            };
            let dropped = config.drop_prob > 0.0 && rng.gen_bool(config.drop_prob);
            if dropped {
                self.stats.dropped += 1;
                continue;
            }
            let key = (self.now + latency, self.seq);
            self.seq += 1;
            self.queue.insert(
                key,
                WireEnvelope {
                    from,
                    to,
                    bytes: bytes.clone(),
                },
            );
        }
    }

    /// Pops the next message due at (or before) the current tick, in
    /// deterministic `(deliver_tick, send_sequence)` order; `None`
    /// once everything deliverable now has been handed out. The frame
    /// is decoded from its wire bytes here.
    pub fn poll_due(&mut self) -> Option<Envelope> {
        let (&key, _) = self.queue.iter().next()?;
        if key.0 > self.now {
            return None;
        }
        let env = self.queue.remove(&key).expect("key just observed");
        self.stats.delivered += 1;
        self.stats.bytes_delivered += env.bytes.len() as u64;
        let msg = crate::knowledge_io::wire_from_bytes(&env.bytes)
            .expect("decoding a frame this SimNet encoded");
        Some(Envelope {
            from: env.from,
            to: env.to,
            msg,
        })
    }
}

/// Fold-state checkpoint cadence: one checkpoint every this many
/// folded observations.
const CHECKPOINT_EVERY: usize = 8;

/// Bound on retained checkpoints; beyond it the oldest is dropped
/// (rollbacks below the retained range fall back to a full refold).
const MAX_CHECKPOINTS: usize = 32;

/// A snapshot of the canonical fold after a prefix of the log: the
/// fold of every logged observation with key ≤ `key`. An insertion at
/// or below a checkpoint's key invalidates it (the checkpoint no
/// longer covers its prefix) and is dropped, so every *retained*
/// checkpoint stays exact — rolling back to one and replaying the
/// suffix is bit-identical to a full refold from design knowledge.
#[derive(Debug)]
struct Checkpoint {
    key: (u64, NodeId),
    folded: SharedKnowledge<KnobConfig>,
    ops_folded: usize,
}

/// A replicated observation log folded into a [`SharedKnowledge`] in
/// the canonical `(round, origin)` order.
///
/// The fold is a pure function of the log *set*: observations that
/// arrive out of canonical order roll the fold back — to the newest
/// retained checkpoint below the insertion, or to the design
/// knowledge when none remains (both counted in
/// [`refolds`](Self::refolds)) — and replay the suffix, so two
/// replicas holding the same observations always expose bit-identical
/// effective knowledge and per-shard epoch vectors, no matter how the
/// network interleaved, dropped or duplicated the messages in
/// between. Checkpointing makes the usual late arrival cost
/// proportional to the *suffix* behind it, not to the whole log
/// (replayed work is surfaced by
/// [`refold_ops_replayed`](Self::refold_ops_replayed)).
#[derive(Debug)]
pub struct Replica {
    design: Knowledge<KnobConfig>,
    window: usize,
    min_observations: u64,
    shards: usize,
    /// Warm-boot seed applied before any log replay (and re-applied on
    /// every full refold): `(snapshot knowledge, copies per point)`.
    /// Part of the fold recipe, so the fold stays a pure function of
    /// `(design, seed, log set)`.
    seed: Option<(Knowledge<KnobConfig>, usize)>,
    log: BTreeMap<(u64, NodeId), Observation>,
    /// origin → (seq → round): the per-origin index summaries and
    /// retransmissions work from.
    per_origin: BTreeMap<NodeId, BTreeMap<u64, u64>>,
    folded: SharedKnowledge<KnobConfig>,
    frontier: Option<(u64, NodeId)>,
    /// Prefix-fold snapshots, ascending by key.
    checkpoints: Vec<Checkpoint>,
    /// Observations folded into `folded` since the last full refold.
    ops_folded: usize,
    needs_refold: bool,
    refolds: u64,
    refold_ops_replayed: u64,
}

impl Replica {
    /// An empty replica over `design` knowledge, folding observations
    /// through sliding windows of `window` samples, overriding design
    /// values after `min_observations`, across `shards` lock shards
    /// (the shard count fixes the epoch-vector layout).
    ///
    /// # Panics
    ///
    /// Panics if `window` or `shards` is zero (same contracts as
    /// [`SharedKnowledge::new`] / `with_shards`); the fleet validates
    /// these through [`crate::FleetConfig::validate`] first.
    pub fn new(
        design: Knowledge<KnobConfig>,
        window: usize,
        min_observations: u64,
        shards: usize,
    ) -> Self {
        let folded = Self::fresh(&design, window, min_observations, shards);
        Replica {
            design,
            window,
            min_observations,
            shards,
            seed: None,
            log: BTreeMap::new(),
            per_origin: BTreeMap::new(),
            folded,
            frontier: None,
            checkpoints: Vec::new(),
            ops_folded: 0,
            needs_refold: false,
            refolds: 0,
            refold_ops_replayed: 0,
        }
    }

    fn fresh(
        design: &Knowledge<KnobConfig>,
        window: usize,
        min_observations: u64,
        shards: usize,
    ) -> SharedKnowledge<KnobConfig> {
        SharedKnowledge::new(design.clone(), window)
            .with_min_observations(min_observations)
            .with_shards(shards)
    }

    /// Builder-style: warm-boots the fold from a shipped snapshot,
    /// filling every shipped point's observation windows with `copies`
    /// identical samples ([`SharedKnowledge::seed_observations`])
    /// *before* any logged observation replays over them. The seed is
    /// part of the fold recipe — full refolds re-apply it — so two
    /// replicas constructed with the same `(design, seed, log set)`
    /// stay bit-identical no matter how the network reorders delivery.
    ///
    /// # Panics
    ///
    /// Panics if observations were already logged: a seed slid under
    /// an existing log would not be reproduced by the checkpoints
    /// taken before it existed.
    #[must_use]
    pub fn with_warm_seed(mut self, seed: Knowledge<KnobConfig>, copies: usize) -> Self {
        assert!(
            self.log.is_empty(),
            "warm seed must be installed before the first logged observation"
        );
        self.folded.seed_observations(&seed, copies);
        self.seed = Some((seed, copies));
        self
    }

    /// Records one observation; returns `false` for duplicates (same
    /// `(round, origin)`), which merge idempotently. An observation
    /// sorting at or before the fold frontier rolls the fold back to
    /// the newest checkpoint below it (or schedules a full refold when
    /// none remains); only the suffix is then replayed.
    pub fn insert(&mut self, op: Observation) -> bool {
        let key = op.op_id();
        if self.log.contains_key(&key) {
            return false;
        }
        if let Some(frontier) = self.frontier {
            if key <= frontier && !self.needs_refold {
                match self.checkpoints.iter().rposition(|c| c.key < key) {
                    Some(i) => {
                        // Roll back to the newest prefix fold that the
                        // insertion leaves intact; checkpoints above it
                        // no longer cover their prefix and are dropped.
                        let cp = &self.checkpoints[i];
                        self.refold_ops_replayed += (self.ops_folded - cp.ops_folded) as u64;
                        self.folded = cp.folded.fork();
                        self.frontier = Some(cp.key);
                        self.ops_folded = cp.ops_folded;
                        self.checkpoints.truncate(i + 1);
                        self.refolds += 1;
                    }
                    None => self.needs_refold = true,
                }
            }
        }
        self.per_origin
            .entry(op.origin)
            .or_default()
            .insert(op.seq, op.round);
        self.log.insert(key, op);
        true
    }

    /// Folds every logged observation that is not yet reflected in
    /// the effective knowledge, in canonical order. Cheap when the
    /// log grew only past the frontier (or rolled back to a
    /// checkpoint); a full refold from design knowledge otherwise.
    pub fn fold_pending(&mut self) {
        if self.needs_refold {
            self.refold_ops_replayed += self.ops_folded as u64;
            self.folded = Self::fresh(
                &self.design,
                self.window,
                self.min_observations,
                self.shards,
            );
            if let Some((seed, copies)) = &self.seed {
                self.folded.seed_observations(seed, *copies);
            }
            self.checkpoints.clear();
            self.ops_folded = 0;
            self.frontier = None;
            self.refolds += 1;
            self.needs_refold = false;
        }
        let range = match self.frontier {
            Some(frontier) => self.log.range((Excluded(frontier), Unbounded)),
            None => self.log.range(..),
        };
        for (key, op) in range {
            self.folded.publish(&op.config, &op.observed);
            self.ops_folded += 1;
            if self.ops_folded.is_multiple_of(CHECKPOINT_EVERY) {
                if self.checkpoints.len() == MAX_CHECKPOINTS {
                    self.checkpoints.remove(0);
                }
                self.checkpoints.push(Checkpoint {
                    key: *key,
                    folded: self.folded.fork(),
                    ops_folded: self.ops_folded,
                });
            }
        }
        self.frontier = self.log.keys().next_back().copied();
    }

    /// Whether observations are logged but not yet folded.
    pub fn pending(&self) -> bool {
        self.needs_refold || self.frontier != self.log.keys().next_back().copied()
    }

    /// The folded knowledge epoch (meaningful relative to
    /// [`refolds`](Self::refolds): a refold restarts the count).
    pub fn epoch(&self) -> u64 {
        self.folded.epoch()
    }

    /// How many times an out-of-canonical-order arrival rolled the
    /// fold back (to a checkpoint or, when none covered the insertion,
    /// all the way to design knowledge).
    pub fn refolds(&self) -> u64 {
        self.refolds
    }

    /// Total observations re-folded by rollbacks: the replay overhead
    /// late arrivals actually cost, as opposed to the first-time folds.
    /// With checkpointing this grows with the *suffix* behind each late
    /// arrival, not with the whole log.
    pub fn refold_ops_replayed(&self) -> u64 {
        self.refold_ops_replayed
    }

    /// The folded per-shard epoch vector: bit-identical across
    /// replicas holding the same observations.
    pub fn shard_epochs(&self) -> Vec<u64> {
        (0..self.folded.shard_count())
            .map(|s| self.folded.shard_epoch(s))
            .collect()
    }

    /// The effective knowledge under the canonical fold.
    pub fn knowledge(&self) -> Knowledge<KnobConfig> {
        self.folded.knowledge()
    }

    /// The knowledge shard `config` lives in, or `None` for unknown
    /// configurations.
    pub fn shard_of(&self, config: &KnobConfig) -> Option<usize> {
        self.folded.shard_of(config)
    }

    /// Per-origin contiguous watermarks: `(origin, count)` meaning
    /// every observation of `origin` with `seq < count` is present.
    pub fn summary(&self) -> Vec<(NodeId, u64)> {
        self.per_origin
            .iter()
            .map(|(&origin, seqs)| {
                let mut count = 0u64;
                for &seq in seqs.keys() {
                    if seq == count {
                        count += 1;
                    } else {
                        break;
                    }
                }
                (origin, count)
            })
            .collect()
    }

    /// The observations this replica holds that a peer summarising
    /// itself as `counts` provably lacks, in canonical order (the
    /// anti-entropy retransmission set; gaps above a peer's watermark
    /// may cause benign re-sends, which deduplicate on insert).
    pub fn missing_for(&self, counts: &[(NodeId, u64)]) -> Vec<Observation> {
        let theirs: BTreeMap<NodeId, u64> = counts.iter().copied().collect();
        let mut out = Vec::new();
        for (&origin, seqs) in &self.per_origin {
            let have = theirs.get(&origin).copied().unwrap_or(0);
            for (_, &round) in seqs.range(have..) {
                out.push(self.log[&(round, origin)].clone());
            }
        }
        out.sort_by_key(Observation::op_id);
        out
    }

    /// Every logged observation, in canonical order.
    pub fn ops(&self) -> impl Iterator<Item = &Observation> {
        self.log.values()
    }

    /// Number of logged observations.
    pub fn len(&self) -> usize {
        self.log.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.log.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use margot::Metric;
    use platform_sim::{BindingPolicy, CompilerOptions, OptLevel};

    fn cfg(tn: u32) -> KnobConfig {
        KnobConfig::new(
            CompilerOptions::level(OptLevel::O2),
            tn,
            BindingPolicy::Close,
        )
    }

    fn design() -> Knowledge<KnobConfig> {
        [1u32, 2, 4, 8]
            .into_iter()
            .map(|tn| {
                OperatingPoint::new(
                    cfg(tn),
                    MetricValues::new()
                        .with(Metric::exec_time(), 1.0 / f64::from(tn))
                        .with(Metric::power(), 50.0 + f64::from(tn)),
                )
            })
            .collect()
    }

    fn op(origin: NodeId, seq: u64, round: u64, tn: u32, power: f64) -> Observation {
        Observation {
            origin,
            seq,
            round,
            config: cfg(tn),
            observed: MetricValues::new().with(Metric::power(), power),
        }
    }

    #[test]
    fn ideal_links_deliver_next_tick_in_send_order() {
        let mut net = SimNet::new(LinkConfig::ideal(7));
        net.send(0, 1, WireMessage::Ack { count: 1 });
        net.send(2, 1, WireMessage::Ack { count: 2 });
        assert!(net.poll_due().is_some(), "due at the current tick");
        // Remaining message still in flight until polled.
        assert_eq!(net.in_flight(), 1);
        net.tick();
        let env = net.poll_due().expect("second message due");
        assert_eq!(env.from, 2);
        assert!(net.poll_due().is_none());
        assert_eq!(net.stats().delivered, 2);
        assert_eq!(net.stats().dropped, 0);
    }

    #[test]
    fn lossy_schedules_replay_bit_identically_from_the_seed() {
        let lossy = LinkConfig {
            seed: 42,
            min_latency: 0,
            max_latency: 5,
            drop_prob: 0.4,
            dup_prob: 0.2,
        };
        let run = || {
            let mut net = SimNet::new(lossy.clone());
            let mut deliveries = Vec::new();
            for t in 0..30u64 {
                net.send(0, 1, WireMessage::Ack { count: t });
                net.send(1, 0, WireMessage::Ack { count: t });
                while let Some(env) = net.poll_due() {
                    deliveries.push((net.now(), env.from, env.msg));
                }
                net.tick();
            }
            (deliveries, net.stats())
        };
        let (a, sa) = run();
        let (b, sb) = run();
        assert_eq!(a, b, "the delivery schedule must replay exactly");
        assert_eq!(sa, sb);
        assert!(sa.dropped > 0, "a 40% loss model must drop something");
        assert!(sa.duplicated > 0, "a 20% dup model must duplicate");
    }

    #[test]
    fn link_config_rejects_certain_loss() {
        assert!(LinkConfig {
            drop_prob: 1.0,
            ..LinkConfig::ideal(0)
        }
        .validate()
        .is_err());
        assert!(LinkConfig {
            min_latency: 3,
            max_latency: 1,
            ..LinkConfig::ideal(0)
        }
        .validate()
        .is_err());
        assert!(LinkConfig::ideal(0).validate().is_ok());
    }

    #[test]
    fn replica_fold_is_independent_of_arrival_order() {
        let ops = vec![
            op(0, 0, 0, 1, 60.0),
            op(1, 0, 0, 1, 70.0),
            op(0, 1, 1, 2, 90.0),
            op(1, 1, 1, 1, 80.0),
        ];
        let mut canonical = Replica::new(design(), 4, 1, 3);
        for o in &ops {
            canonical.insert(o.clone());
        }
        canonical.fold_pending();
        // Reversed arrival (with a duplicate thrown in) must converge
        // to the same knowledge AND the same shard epoch vector.
        let mut scrambled = Replica::new(design(), 4, 1, 3);
        for o in ops.iter().rev() {
            scrambled.insert(o.clone());
            scrambled.fold_pending();
        }
        assert!(!scrambled.insert(ops[2].clone()), "duplicate is idempotent");
        scrambled.fold_pending();
        assert!(scrambled.refolds() > 0, "late arrivals must refold");
        assert_eq!(canonical.refolds(), 0);
        assert_eq!(canonical.knowledge(), scrambled.knowledge());
        assert_eq!(canonical.shard_epochs(), scrambled.shard_epochs());
        assert_eq!(canonical.epoch(), scrambled.epoch());
    }

    #[test]
    fn replica_matches_the_single_mutex_reference() {
        let ops = vec![
            op(0, 0, 0, 1, 60.0),
            op(1, 0, 0, 1, 70.0),
            op(0, 1, 1, 2, 90.0),
        ];
        let mut replica = Replica::new(design(), 4, 1, 5);
        for o in ops.iter().rev() {
            replica.insert(o.clone());
        }
        replica.fold_pending();
        let reference = SharedKnowledge::new(design(), 4).with_shards(1);
        for o in &ops {
            reference.publish(&o.config, &o.observed);
        }
        assert_eq!(replica.knowledge(), reference.knowledge());
    }

    #[test]
    fn summaries_and_missing_sets_reconcile_two_replicas() {
        let mut a = Replica::new(design(), 4, 1, 2);
        let mut b = Replica::new(design(), 4, 1, 2);
        let ops = vec![
            op(0, 0, 0, 1, 60.0),
            op(0, 1, 1, 2, 61.0),
            op(1, 0, 0, 4, 62.0),
            op(1, 1, 1, 8, 63.0),
        ];
        // a holds everything; b holds a gap (missing (0, seq 0)).
        for o in &ops {
            a.insert(o.clone());
        }
        b.insert(ops[1].clone());
        b.insert(ops[2].clone());
        assert_eq!(b.summary(), vec![(0, 0), (1, 1)], "gap keeps watermark 0");
        let missing = a.missing_for(&b.summary());
        // Everything above b's watermarks: both origin-0 ops (benign
        // re-send of seq 1) and origin-1 seq 1.
        assert_eq!(missing.len(), 3);
        for o in missing {
            b.insert(o);
        }
        a.fold_pending();
        b.fold_pending();
        assert_eq!(a.knowledge(), b.knowledge());
        assert_eq!(a.shard_epochs(), b.shard_epochs());
        assert!(a.missing_for(&b.summary()).is_empty());
        assert_eq!(a.len(), 4);
        assert!(!a.is_empty());
    }

    #[test]
    fn distributed_config_validation_names_the_field() {
        let bad_sync = DistributedConfig {
            sync_interval: 0,
            ..DistributedConfig::default()
        };
        let err = bad_sync.validate().expect_err("zero sync interval");
        assert!(err.to_string().contains("sync_interval"), "{err}");
        let bad_fanout = DistributedConfig {
            topology: DistTopology::Gossip { fanout: 0 },
            ..DistributedConfig::default()
        };
        let err = bad_fanout.validate().expect_err("zero fanout");
        assert!(err.to_string().contains("fanout"), "{err}");
        assert!(DistributedConfig::default().validate().is_ok());
    }
}
