//! Trace analysis: summary statistics over [`TraceSample`] windows —
//! the numbers the paper reads off its Fig. 5 panels.

use crate::runtime::TraceSample;
use serde::{Deserialize, Serialize};

/// Aggregate statistics of a trace window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Number of kernel invocations.
    pub invocations: usize,
    /// Window start (virtual seconds).
    pub t_begin_s: f64,
    /// Window end (virtual seconds).
    pub t_end_s: f64,
    /// Mean observed power, watts.
    pub mean_power_w: f64,
    /// Mean kernel execution time, seconds.
    pub mean_exec_s: f64,
    /// Mean selected thread count.
    pub mean_threads: f64,
    /// Total energy over the window, joules.
    pub energy_j: f64,
    /// Number of configuration changes inside the window.
    pub config_switches: usize,
    /// The most frequently dispatched clone version.
    pub dominant_version: usize,
}

impl TraceStats {
    /// Computes statistics over a window of samples.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty — an empty window has no statistics.
    pub fn from_samples(samples: &[TraceSample]) -> TraceStats {
        assert!(!samples.is_empty(), "empty trace window");
        let n = samples.len() as f64;
        let mut switches = 0;
        let mut version_counts = std::collections::HashMap::new();
        for pair in samples.windows(2) {
            if pair[0].config != pair[1].config {
                switches += 1;
            }
        }
        for s in samples {
            *version_counts.entry(s.version).or_insert(0usize) += 1;
        }
        let dominant_version = version_counts
            .into_iter()
            .max_by_key(|&(version, count)| (count, usize::MAX - version))
            .map(|(version, _)| version)
            .expect("non-empty window");
        let last = samples.last().expect("non-empty");
        TraceStats {
            invocations: samples.len(),
            t_begin_s: samples[0].t_start_s,
            t_end_s: last.t_start_s + last.time_s,
            mean_power_w: samples.iter().map(|s| s.power_w).sum::<f64>() / n,
            mean_exec_s: samples.iter().map(|s| s.time_s).sum::<f64>() / n,
            mean_threads: samples.iter().map(|s| f64::from(s.config.tn)).sum::<f64>() / n,
            energy_j: samples.iter().map(|s| s.power_w * s.time_s).sum(),
            config_switches: switches,
            dominant_version,
        }
    }

    /// Average throughput over the window (invocations per second).
    pub fn throughput(&self) -> f64 {
        self.invocations as f64 / (self.t_end_s - self.t_begin_s).max(1e-12)
    }

    /// The window's Thr/W² value (the paper's efficiency metric).
    pub fn throughput_per_watt2(&self) -> f64 {
        self.throughput() / (self.mean_power_w * self.mean_power_w)
    }
}

/// An order-sensitive FNV-1a digest of a trace: every numeric field's
/// exact bit pattern plus the selected configuration and dispatched
/// version of every sample, in order. Two traces digest equal iff they
/// are bit-identical sample for sample — the cheap fingerprint the
/// equivalence suites compare instead of shipping whole traces around.
pub fn trace_digest(samples: &[TraceSample]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut digest = OFFSET;
    let mut fold = |bytes: &[u8]| {
        for &b in bytes {
            digest = (digest ^ u64::from(b)).wrapping_mul(PRIME);
        }
    };
    for s in samples {
        fold(&s.t_start_s.to_bits().to_le_bytes());
        fold(&s.time_s.to_bits().to_le_bytes());
        fold(&s.power_w.to_bits().to_le_bytes());
        fold(format!("{:?}", s.config).as_bytes());
        fold(&(s.version as u64).to_le_bytes());
        fold(&[u8::from(s.forced)]);
    }
    digest
}

/// Splits a trace into fixed-duration windows (by invocation start time)
/// and summarises each; the decimated view the paper plots.
pub fn windowed_stats(samples: &[TraceSample], window_s: f64) -> Vec<TraceStats> {
    assert!(window_s > 0.0, "window must be positive");
    let mut out = Vec::new();
    let mut current: Vec<TraceSample> = Vec::new();
    let mut window_end = samples.first().map_or(0.0, |s| s.t_start_s) + window_s;
    for s in samples {
        if s.t_start_s >= window_end && !current.is_empty() {
            out.push(TraceStats::from_samples(&current));
            current.clear();
            while s.t_start_s >= window_end {
                window_end += window_s;
            }
        }
        current.push(s.clone());
    }
    if !current.is_empty() {
        out.push(TraceStats::from_samples(&current));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use platform_sim::{BindingPolicy, CompilerOptions, KnobConfig, OptLevel};

    fn sample(t: f64, time: f64, power: f64, tn: u32, version: usize) -> TraceSample {
        TraceSample {
            t_start_s: t,
            time_s: time,
            power_w: power,
            config: KnobConfig::new(
                CompilerOptions::level(OptLevel::O2),
                tn,
                BindingPolicy::Close,
            ),
            version,
            forced: false,
        }
    }

    #[test]
    fn stats_over_uniform_window() {
        let samples = vec![
            sample(0.0, 0.1, 100.0, 8, 2),
            sample(0.1, 0.1, 100.0, 8, 2),
            sample(0.2, 0.1, 100.0, 8, 2),
        ];
        let s = TraceStats::from_samples(&samples);
        assert_eq!(s.invocations, 3);
        assert!((s.mean_power_w - 100.0).abs() < 1e-12);
        assert!((s.mean_exec_s - 0.1).abs() < 1e-12);
        assert_eq!(s.config_switches, 0);
        assert_eq!(s.dominant_version, 2);
        assert!((s.energy_j - 30.0).abs() < 1e-9);
        assert!((s.throughput() - 10.0).abs() < 0.5);
    }

    #[test]
    fn switches_counted_between_distinct_configs() {
        let samples = vec![
            sample(0.0, 0.1, 90.0, 4, 0),
            sample(0.1, 0.1, 95.0, 8, 1),
            sample(0.2, 0.1, 95.0, 8, 1),
            sample(0.3, 0.1, 90.0, 4, 0),
        ];
        let s = TraceStats::from_samples(&samples);
        assert_eq!(s.config_switches, 2);
    }

    #[test]
    fn dominant_version_is_majority() {
        let samples = vec![
            sample(0.0, 0.1, 90.0, 4, 7),
            sample(0.1, 0.1, 90.0, 4, 7),
            sample(0.2, 0.1, 90.0, 8, 3),
        ];
        assert_eq!(TraceStats::from_samples(&samples).dominant_version, 7);
    }

    #[test]
    #[should_panic(expected = "empty trace window")]
    fn empty_window_panics() {
        let _ = TraceStats::from_samples(&[]);
    }

    #[test]
    fn windowing_partitions_all_samples() {
        let samples: Vec<TraceSample> = (0..50)
            .map(|i| sample(f64::from(i) * 0.2, 0.2, 80.0, 8, 0))
            .collect();
        let windows = windowed_stats(&samples, 2.0);
        let total: usize = windows.iter().map(|w| w.invocations).sum();
        assert_eq!(total, 50);
        assert_eq!(windows.len(), 5);
        for w in &windows {
            assert!(w.t_end_s - w.t_begin_s <= 2.0 + 0.2 + 1e-9);
        }
    }

    #[test]
    fn windowing_handles_gaps() {
        // A long idle gap must not produce empty windows.
        let samples = vec![sample(0.0, 0.1, 80.0, 8, 0), sample(10.0, 0.1, 80.0, 8, 0)];
        let windows = windowed_stats(&samples, 1.0);
        assert_eq!(windows.len(), 2);
        assert_eq!(windows[0].invocations, 1);
        assert_eq!(windows[1].invocations, 1);
    }

    #[test]
    fn digest_is_order_and_bit_sensitive() {
        let a = vec![sample(0.0, 0.1, 90.0, 4, 0), sample(0.1, 0.2, 95.0, 8, 1)];
        assert_eq!(trace_digest(&a), trace_digest(&a.clone()));
        let swapped = vec![a[1].clone(), a[0].clone()];
        assert_ne!(trace_digest(&a), trace_digest(&swapped));
        let mut nudged = a.clone();
        nudged[1].power_w += 1e-9;
        assert_ne!(trace_digest(&a), trace_digest(&nudged));
        let mut forced = a;
        forced[0].forced = true;
        assert_ne!(trace_digest(&forced), trace_digest(&nudged));
        assert_eq!(trace_digest(&[]), trace_digest(&[]));
    }

    #[test]
    fn efficiency_metric_consistency() {
        let samples = vec![sample(0.0, 0.5, 100.0, 8, 0), sample(0.5, 0.5, 100.0, 8, 0)];
        let s = TraceStats::from_samples(&samples);
        // 2 invocations over 1 s at 100 W: thr=2, thr/W^2 = 2e-4.
        assert!((s.throughput_per_watt2() - 2e-4).abs() < 1e-8);
    }
}
