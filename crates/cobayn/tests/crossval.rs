//! Leave-one-out cross-validation of COBAYN on the real benchmark suite
//! against the simulated compiler — the evaluation methodology of the
//! COBAYN paper, asserted as a regression test.

use cobayn::{iterative_compilation, Cobayn, CobaynConfig, TrainingApp};
use milepost::extract_function;
use platform_sim::{BindingPolicy, CompilerOptions, KnobConfig, Machine};
use polybench::{App, Dataset};

/// Single-thread throughput of a compiler configuration (isolates the
/// compiler effect, as COBAYN's iterative compilation does).
fn speed(machine: &Machine, app: App, co: &CompilerOptions) -> f64 {
    let profile = app.profile(Dataset::Medium);
    let cfg = KnobConfig::new(co.clone(), 1, BindingPolicy::Close);
    1.0 / machine.expected(&profile, &cfg).time_s
}

fn training_app(machine: &Machine, app: App) -> TrainingApp {
    let tu = minic::parse(&polybench::source(app, Dataset::Medium)).unwrap();
    let features = extract_function(&tu, &app.kernel_name()).unwrap();
    let good = iterative_compilation(|co| speed(machine, app, co), 0.15);
    TrainingApp { features, good }
}

#[test]
fn leave_one_out_predictions_beat_standard_levels() {
    let machine = Machine::xeon_e5_2630_v3(13).noiseless();
    let mut wins = 0usize;
    let mut recovered_total = 0.0f64;

    for target in App::ALL {
        let corpus: Vec<TrainingApp> = App::ALL
            .iter()
            .filter(|&&a| a != target)
            .map(|&a| training_app(&machine, a))
            .collect();
        let model = Cobayn::train(&corpus, CobaynConfig::default()).unwrap();
        let tu = minic::parse(&polybench::source(target, Dataset::Medium)).unwrap();
        let features = extract_function(&tu, &target.kernel_name()).unwrap();
        let predictions = model.predict(&features, 4);
        assert_eq!(predictions.len(), 4, "{target}");

        let best_std = platform_sim::OptLevel::ALL
            .iter()
            .map(|&l| speed(&machine, target, &CompilerOptions::level(l)))
            .fold(0.0f64, f64::max);
        let best_pred = predictions
            .iter()
            .map(|co| speed(&machine, target, co))
            .fold(0.0f64, f64::max);
        let oracle = CompilerOptions::cobayn_space()
            .iter()
            .map(|co| speed(&machine, target, co))
            .fold(0.0f64, f64::max);

        if best_pred >= best_std {
            wins += 1;
        }
        let recovered = if oracle > best_std {
            ((best_pred - best_std) / (oracle - best_std)).max(0.0)
        } else {
            1.0
        };
        recovered_total += recovered;
    }

    // The four predicted combos must beat (or match) the standard levels
    // on at least 10 of 12 unseen apps, and recover most of the oracle
    // headroom on average.
    assert!(
        wins >= 10,
        "predictions beat std levels on only {wins}/12 apps"
    );
    let mean_recovered = recovered_total / App::ALL.len() as f64;
    assert!(
        mean_recovered > 0.6,
        "mean oracle headroom recovered {mean_recovered:.2}"
    );
}

#[test]
fn predictions_are_app_specific() {
    // Predictions conditioned on different apps must not all collapse to
    // one combination (the feature evidence must matter).
    let machine = Machine::xeon_e5_2630_v3(17).noiseless();
    let corpus: Vec<TrainingApp> = App::ALL
        .iter()
        .map(|&a| training_app(&machine, a))
        .collect();
    let model = Cobayn::train(&corpus, CobaynConfig::default()).unwrap();
    let mut distinct = std::collections::HashSet::new();
    for app in App::ALL {
        let tu = minic::parse(&polybench::source(app, Dataset::Medium)).unwrap();
        let features = extract_function(&tu, &app.kernel_name()).unwrap();
        // Compare the whole predicted set: the strongest combo can be
        // globally good, but the 4-set must react to the evidence.
        let top = model.predict(&features, 4);
        distinct.insert(format!("{top:?}"));
    }
    assert!(
        distinct.len() >= 2,
        "all apps got the same top-4 prediction set"
    );
}
