//! # cobayn — Bayesian-network compiler autotuning
//!
//! Reimplementation of COBAYN (Ashouri et al., ACM TACO 2016) in the role
//! it plays inside SOCRATES (DATE 2018): prune the 128-combination GCC
//! flag space down to the four most promising combinations per kernel,
//! using a Bayesian network conditioned on Milepost-style application
//! features.
//!
//! - [`BayesianNetwork`]: discrete BN with tabular CPDs, Laplace-smoothed
//!   maximum-likelihood fitting, joint scoring and ancestral sampling;
//! - [`Cobayn`]: the trained predictor — PCA feature reduction, tertile
//!   discretisation, MI-selected structure, exact ranking of the flag
//!   space under feature evidence;
//! - [`iterative_compilation`]: the training-data generator (top fraction
//!   of the space by measured speedup).
//!
//! ## Example
//!
//! ```
//! use cobayn::{iterative_compilation, Cobayn, CobaynConfig, TrainingApp};
//! use milepost::Features;
//!
//! // Two toy training apps whose good configs were found by iterative
//! // compilation (here: a synthetic evaluator).
//! let apps: Vec<TrainingApp> = (0..2)
//!     .map(|i| {
//!         let mut v = vec![0.0; milepost::FeatureKind::COUNT];
//!         v[0] = f64::from(i) * 10.0;
//!         TrainingApp {
//!             features: Features::from_values(v),
//!             good: iterative_compilation(|co| co.flags.len() as f64, 0.05),
//!         }
//!     })
//!     .collect();
//! let model = Cobayn::train(&apps, CobaynConfig::default()).unwrap();
//! let suggestions = model.predict(&apps[0].features, 4);
//! assert_eq!(suggestions.len(), 4);
//! ```

#![warn(missing_docs)]

mod bn;
mod predictor;

pub use bn::{mutual_information, BayesianNetwork, BnError};
pub use predictor::{iterative_compilation, Cobayn, CobaynConfig, TrainError, TrainingApp};
