//! A discrete Bayesian network with tabular CPDs.
//!
//! Nodes are added in topological order (parents must already exist), so
//! the structure is a DAG by construction. Parameters are learned from
//! complete data with Laplace smoothing; inference needs are modest —
//! COBAYN ranks full assignments under fixed evidence, for which the
//! joint probability suffices — plus ancestral sampling for generation.

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A discrete Bayesian network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BayesianNetwork {
    nodes: Vec<Node>,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Node {
    name: String,
    arity: usize,
    parents: Vec<usize>,
    /// `cpt[parent_combo_index][value]`, rows sum to 1.
    cpt: Vec<Vec<f64>>,
}

/// Errors building or training a network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BnError {
    /// A parent index refers to a node added later (or not at all).
    BadParent {
        /// Offending node name.
        node: String,
        /// The invalid parent index.
        parent: usize,
    },
    /// Node arity must be at least 2.
    BadArity(String),
    /// A training row has the wrong length or an out-of-range value.
    BadRow(usize),
}

impl fmt::Display for BnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BnError::BadParent { node, parent } => {
                write!(
                    f,
                    "node `{node}`: parent index {parent} is not an earlier node"
                )
            }
            BnError::BadArity(node) => write!(f, "node `{node}`: arity must be >= 2"),
            BnError::BadRow(i) => write!(f, "training row {i} is malformed"),
        }
    }
}

impl std::error::Error for BnError {}

impl BayesianNetwork {
    /// An empty network.
    pub fn new() -> Self {
        BayesianNetwork { nodes: Vec::new() }
    }

    /// Adds a node with the given arity and parent indices; returns its
    /// index. Parents must have smaller indices (topological insertion),
    /// which makes cycles unrepresentable.
    ///
    /// # Errors
    ///
    /// Returns [`BnError`] on arity < 2 or a forward/self parent
    /// reference.
    pub fn add_node(
        &mut self,
        name: impl Into<String>,
        arity: usize,
        parents: Vec<usize>,
    ) -> Result<usize, BnError> {
        let name = name.into();
        if arity < 2 {
            return Err(BnError::BadArity(name));
        }
        let idx = self.nodes.len();
        for &p in &parents {
            if p >= idx {
                return Err(BnError::BadParent {
                    node: name,
                    parent: p,
                });
            }
        }
        let combos = parents
            .iter()
            .map(|&p| self.nodes[p].arity)
            .product::<usize>()
            .max(1);
        // Uniform prior until fitted.
        let cpt = vec![vec![1.0 / arity as f64; arity]; combos];
        self.nodes.push(Node {
            name,
            arity,
            parents,
            cpt,
        });
        Ok(idx)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the network has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Node name by index.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn name(&self, idx: usize) -> &str {
        &self.nodes[idx].name
    }

    /// Parent indices of a node.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn parents(&self, idx: usize) -> &[usize] {
        &self.nodes[idx].parents
    }

    fn combo_index(&self, node: &Node, assignment: &[usize]) -> usize {
        let mut idx = 0;
        for &p in &node.parents {
            idx = idx * self.nodes[p].arity + assignment[p];
        }
        idx
    }

    /// Learns all CPTs from complete data rows (`row[i]` = value of node
    /// `i`) with Laplace smoothing `alpha`.
    ///
    /// # Errors
    ///
    /// Returns [`BnError::BadRow`] when a row has the wrong length or an
    /// out-of-range value.
    pub fn fit(&mut self, rows: &[Vec<usize>], alpha: f64) -> Result<(), BnError> {
        for (i, row) in rows.iter().enumerate() {
            if row.len() != self.nodes.len() {
                return Err(BnError::BadRow(i));
            }
            for (v, n) in row.iter().zip(&self.nodes) {
                if *v >= n.arity {
                    return Err(BnError::BadRow(i));
                }
            }
        }
        for ni in 0..self.nodes.len() {
            let node = self.nodes[ni].clone();
            let combos = node.cpt.len();
            let mut counts = vec![vec![alpha; node.arity]; combos];
            for row in rows {
                let c = self.combo_index(&node, row);
                counts[c][row[ni]] += 1.0;
            }
            for row_counts in &mut counts {
                let total: f64 = row_counts.iter().sum();
                for v in row_counts.iter_mut() {
                    *v /= total;
                }
            }
            self.nodes[ni].cpt = counts;
        }
        Ok(())
    }

    /// Joint probability of a complete assignment.
    ///
    /// # Panics
    ///
    /// Panics if the assignment length or any value is out of range.
    pub fn joint(&self, assignment: &[usize]) -> f64 {
        assert_eq!(assignment.len(), self.nodes.len(), "assignment length");
        let mut p = 1.0;
        for (ni, node) in self.nodes.iter().enumerate() {
            let c = self.combo_index(node, assignment);
            p *= node.cpt[c][assignment[ni]];
        }
        p
    }

    /// Log-likelihood of a data set under the current parameters.
    pub fn log_likelihood(&self, rows: &[Vec<usize>]) -> f64 {
        rows.iter().map(|r| self.joint(r).max(1e-300).ln()).sum()
    }

    /// Ancestral sampling with optional clamped evidence
    /// (`evidence[i] = Some(v)` fixes node `i` to `v`).
    ///
    /// # Panics
    ///
    /// Panics if `evidence.len()` differs from the node count.
    pub fn sample<R: Rng>(&self, rng: &mut R, evidence: &[Option<usize>]) -> Vec<usize> {
        assert_eq!(evidence.len(), self.nodes.len(), "evidence length");
        let mut assignment = vec![0usize; self.nodes.len()];
        for (ni, node) in self.nodes.iter().enumerate() {
            if let Some(v) = evidence[ni] {
                assignment[ni] = v;
                continue;
            }
            let c = self.combo_index(node, &assignment);
            let u: f64 = rng.gen();
            let mut acc = 0.0;
            let mut chosen = node.arity - 1;
            for (v, p) in node.cpt[c].iter().enumerate() {
                acc += p;
                if u < acc {
                    chosen = v;
                    break;
                }
            }
            assignment[ni] = chosen;
        }
        assignment
    }

    /// Checks that all CPT rows are proper distributions (within `tol`).
    pub fn validate(&self, tol: f64) -> bool {
        self.nodes.iter().all(|n| {
            n.cpt.iter().all(|row| {
                let s: f64 = row.iter().sum();
                (s - 1.0).abs() <= tol && row.iter().all(|p| (0.0..=1.0).contains(p))
            })
        })
    }
}

impl Default for BayesianNetwork {
    fn default() -> Self {
        Self::new()
    }
}

/// Empirical mutual information (nats) between two discrete columns.
///
/// # Panics
///
/// Panics if the columns have different lengths or are empty.
pub fn mutual_information(xs: &[usize], ys: &[usize], x_arity: usize, y_arity: usize) -> f64 {
    assert_eq!(xs.len(), ys.len(), "column lengths differ");
    assert!(!xs.is_empty(), "empty columns");
    let n = xs.len() as f64;
    let mut joint = vec![vec![0.0f64; y_arity]; x_arity];
    let mut px = vec![0.0f64; x_arity];
    let mut py = vec![0.0f64; y_arity];
    for (&x, &y) in xs.iter().zip(ys) {
        joint[x][y] += 1.0;
        px[x] += 1.0;
        py[y] += 1.0;
    }
    let mut mi = 0.0;
    for x in 0..x_arity {
        for y in 0..y_arity {
            let pxy = joint[x][y] / n;
            if pxy > 0.0 {
                mi += pxy * (pxy / ((px[x] / n) * (py[y] / n))).ln();
            }
        }
    }
    mi.max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand_chacha::rand_core::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// A -> B network where B strongly follows A.
    fn chain() -> BayesianNetwork {
        let mut bn = BayesianNetwork::new();
        let a = bn.add_node("A", 2, vec![]).unwrap();
        bn.add_node("B", 2, vec![a]).unwrap();
        let rows: Vec<Vec<usize>> = (0..100)
            .map(|i| {
                let a = usize::from(i % 3 == 0); // P(A=1) ~ 1/3
                let b = a; // B copies A
                vec![a, b]
            })
            .collect();
        bn.fit(&rows, 0.5).unwrap();
        bn
    }

    #[test]
    fn dag_by_construction() {
        let mut bn = BayesianNetwork::new();
        let a = bn.add_node("A", 2, vec![]).unwrap();
        assert!(matches!(
            bn.add_node("B", 2, vec![5]),
            Err(BnError::BadParent { .. })
        ));
        assert!(bn.add_node("B", 2, vec![a]).is_ok());
        assert!(matches!(
            bn.add_node("C", 1, vec![]),
            Err(BnError::BadArity(_))
        ));
    }

    #[test]
    fn fit_learns_dependency() {
        let bn = chain();
        assert!(bn.validate(1e-9));
        // P(A=1, B=1) ~ 1/3, P(A=1, B=0) ~ 0.
        assert!(bn.joint(&[1, 1]) > 0.25);
        assert!(bn.joint(&[1, 0]) < 0.05);
    }

    #[test]
    fn joint_sums_to_one() {
        let bn = chain();
        let total: f64 = (0..2)
            .flat_map(|a| (0..2).map(move |b| (a, b)))
            .map(|(a, b)| bn.joint(&[a, b]))
            .sum();
        assert!((total - 1.0).abs() < 1e-9, "total {total}");
    }

    #[test]
    fn malformed_rows_rejected() {
        let mut bn = BayesianNetwork::new();
        bn.add_node("A", 2, vec![]).unwrap();
        assert_eq!(bn.fit(&[vec![0, 1]], 1.0), Err(BnError::BadRow(0)));
        assert_eq!(bn.fit(&[vec![7]], 1.0), Err(BnError::BadRow(0)));
    }

    #[test]
    fn sampling_respects_evidence_and_distribution() {
        let bn = chain();
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let mut b_ones = 0;
        for _ in 0..500 {
            let s = bn.sample(&mut rng, &[Some(1), None]);
            assert_eq!(s[0], 1);
            b_ones += s[1];
        }
        // B copies A: with A clamped to 1, B must be 1 almost always.
        assert!(b_ones > 450, "b_ones={b_ones}");
    }

    #[test]
    fn log_likelihood_prefers_fitting_model() {
        let bn = chain();
        let consistent = vec![vec![1usize, 1], vec![0, 0]];
        let inconsistent = vec![vec![1usize, 0], vec![0, 1]];
        assert!(bn.log_likelihood(&consistent) > bn.log_likelihood(&inconsistent));
    }

    #[test]
    fn mi_detects_dependence_and_independence() {
        let xs: Vec<usize> = (0..200).map(|i| i % 2).collect();
        let copy = xs.clone();
        let indep: Vec<usize> = (0..200).map(|i| (i / 2) % 2).collect();
        let mi_dep = mutual_information(&xs, &copy, 2, 2);
        let mi_ind = mutual_information(&xs, &indep, 2, 2);
        assert!(mi_dep > 0.6, "dependent MI {mi_dep}"); // ln 2 ≈ 0.693
        assert!(mi_ind < 0.01, "independent MI {mi_ind}");
        assert!(mi_dep > mi_ind * 10.0);
    }

    #[test]
    fn unfitted_network_is_uniform() {
        let mut bn = BayesianNetwork::new();
        bn.add_node("A", 4, vec![]).unwrap();
        assert!((bn.joint(&[2]) - 0.25).abs() < 1e-12);
        assert!(bn.validate(1e-12));
    }
}
