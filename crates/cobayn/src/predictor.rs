//! The COBAYN predictor: feature-conditioned compiler-flag suggestion.
//!
//! Training follows the COBAYN (TACO 2016) recipe:
//!
//! 1. iterative compilation on the training applications yields, per app,
//!    the set of *good* flag combinations (top fraction by speedup);
//! 2. application features are reduced (PCA) and discretised (tertiles);
//! 3. a Bayesian network is learned: evidence nodes for the reduced
//!    features, one node per compiler-flag variable, with structure
//!    chosen by mutual information against the training data;
//! 4. for a new application, the network is conditioned on the app's
//!    features and the flag-combination space is ranked by probability.
//!
//! Where COBAYN samples the posterior, we rank the full 128-point space
//! exactly (it is small), which is deterministic and strictly stronger.

use crate::bn::{mutual_information, BayesianNetwork, BnError};
use milepost::{FeatureReducer, Features, FitError};
use platform_sim::{CompilerFlag, CompilerOptions, OptLevel};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One training application: its static features and the flag
/// combinations iterative compilation found to perform well on it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingApp {
    /// Milepost feature vector of the kernel.
    pub features: Features,
    /// Good configurations (top fraction of the explored space).
    pub good: Vec<CompilerOptions>,
}

/// Tunable training hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CobaynConfig {
    /// PCA components kept from the feature vector.
    pub components: usize,
    /// Discretisation bins per component.
    pub bins: usize,
    /// Laplace smoothing for CPT estimation.
    pub alpha: f64,
    /// Minimum mutual information (nats) for a feature to become a flag
    /// node's parent. Real cross-application signals are weak (many apps
    /// share globally good flags), so the default is deliberately low.
    pub mi_threshold: f64,
}

impl Default for CobaynConfig {
    fn default() -> Self {
        CobaynConfig {
            components: 3,
            bins: 3,
            alpha: 1.0,
            mi_threshold: 1e-3,
        }
    }
}

/// Errors training a predictor.
#[derive(Debug, Clone, PartialEq)]
pub enum TrainError {
    /// Fewer than two training applications.
    TooFewApps,
    /// No training app provided any good configuration.
    NoGoodConfigs,
    /// Feature reduction failed.
    Reduction(FitError),
    /// Internal network construction failed (programming error surfaced).
    Network(BnError),
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainError::TooFewApps => write!(f, "need at least two training applications"),
            TrainError::NoGoodConfigs => write!(f, "no good configurations in training data"),
            TrainError::Reduction(e) => write!(f, "feature reduction failed: {e}"),
            TrainError::Network(e) => write!(f, "network construction failed: {e}"),
        }
    }
}

impl std::error::Error for TrainError {}

impl From<FitError> for TrainError {
    fn from(e: FitError) -> Self {
        TrainError::Reduction(e)
    }
}

impl From<BnError> for TrainError {
    fn from(e: BnError) -> Self {
        TrainError::Network(e)
    }
}

/// A trained COBAYN predictor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cobayn {
    config: CobaynConfig,
    reducer: FeatureReducer,
    /// Per-component ascending bin edges (len = bins - 1).
    edges: Vec<Vec<f64>>,
    network: BayesianNetwork,
}

impl Cobayn {
    /// Trains a predictor.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError`] when the corpus is too small or carries no
    /// good configurations.
    pub fn train(apps: &[TrainingApp], config: CobaynConfig) -> Result<Self, TrainError> {
        if apps.len() < 2 {
            return Err(TrainError::TooFewApps);
        }
        if apps.iter().all(|a| a.good.is_empty()) {
            return Err(TrainError::NoGoodConfigs);
        }
        let corpus: Vec<Features> = apps.iter().map(|a| a.features.clone()).collect();
        let reducer = FeatureReducer::fit(&corpus, config.components)?;
        let projected: Vec<Vec<f64>> = corpus.iter().map(|f| reducer.project(f)).collect();
        let edges = quantile_edges(&projected, config.components, config.bins);

        // One training row per (app, good configuration).
        let k = config.components;
        let n_flag_nodes = 1 + CompilerFlag::ALL.len(); // level + flags
        let mut rows: Vec<Vec<usize>> = Vec::new();
        for (app, proj) in apps.iter().zip(&projected) {
            let feature_bins: Vec<usize> = (0..k).map(|c| discretise(proj[c], &edges[c])).collect();
            for co in &app.good {
                let mut row = feature_bins.clone();
                row.push(usize::from(co.level == OptLevel::O3));
                for flag in CompilerFlag::ALL {
                    row.push(usize::from(co.has(flag)));
                }
                rows.push(row);
            }
        }

        // Structure: each flag variable gets its single best-MI feature
        // parent (greedy K2-style with one parent; no parent when the MI
        // signal is negligible).
        let mut network = BayesianNetwork::new();
        for c in 0..k {
            network.add_node(format!("feature{c}"), config.bins, vec![])?;
        }
        let col = |j: usize| -> Vec<usize> { rows.iter().map(|r| r[j]).collect() };
        for t in 0..n_flag_nodes {
            let target_col = col(k + t);
            let mut best: Option<(usize, f64)> = None;
            for c in 0..k {
                let mi = mutual_information(&col(c), &target_col, config.bins, 2);
                if best.is_none_or(|(_, b)| mi > b) {
                    best = Some((c, mi));
                }
            }
            let parents = match best {
                Some((c, mi)) if mi > config.mi_threshold => vec![c],
                _ => vec![],
            };
            let name = if t == 0 {
                "level-O3".to_string()
            } else {
                CompilerFlag::ALL[t - 1].as_str().to_string()
            };
            network.add_node(name, 2, parents)?;
        }
        network.fit(&rows, config.alpha)?;
        Ok(Cobayn {
            config,
            reducer,
            edges,
            network,
        })
    }

    /// The learned network (for inspection and tests).
    pub fn network(&self) -> &BayesianNetwork {
        &self.network
    }

    /// Ranks the whole 128-combination COBAYN space for an application
    /// and returns the `n` most promising configurations.
    pub fn predict(&self, features: &Features, n: usize) -> Vec<CompilerOptions> {
        let proj = self.reducer.project(features);
        let feature_bins: Vec<usize> = (0..self.config.components)
            .map(|c| discretise(proj[c], &self.edges[c]))
            .collect();
        let mut scored: Vec<(CompilerOptions, f64)> = CompilerOptions::cobayn_space()
            .into_iter()
            .map(|co| {
                let mut row = feature_bins.clone();
                row.push(usize::from(co.level == OptLevel::O3));
                for flag in CompilerFlag::ALL {
                    row.push(usize::from(co.has(flag)));
                }
                let p = self.network.joint(&row);
                (co, p)
            })
            .collect();
        scored.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("probabilities are finite")
                .then_with(|| a.0.cmp(&b.0))
        });
        scored.into_iter().take(n).map(|(co, _)| co).collect()
    }

    /// Probability score of one specific configuration for an app
    /// (useful for calibration tests).
    pub fn score(&self, features: &Features, co: &CompilerOptions) -> f64 {
        let proj = self.reducer.project(features);
        let mut row: Vec<usize> = (0..self.config.components)
            .map(|c| discretise(proj[c], &self.edges[c]))
            .collect();
        row.push(usize::from(co.level == OptLevel::O3));
        for flag in CompilerFlag::ALL {
            row.push(usize::from(co.has(flag)));
        }
        self.network.joint(&row)
    }
}

/// Selects the top `fraction` of the COBAYN flag space for one
/// application by measured speedup — the iterative-compilation step that
/// generates COBAYN training data.
///
/// # Panics
///
/// Panics if `fraction` is not in `(0, 1]`.
pub fn iterative_compilation(
    evaluate: impl Fn(&CompilerOptions) -> f64,
    fraction: f64,
) -> Vec<CompilerOptions> {
    assert!(
        fraction > 0.0 && fraction <= 1.0,
        "fraction must be in (0, 1], got {fraction}"
    );
    let mut scored: Vec<(CompilerOptions, f64)> = CompilerOptions::cobayn_space()
        .into_iter()
        .map(|co| {
            let s = evaluate(&co);
            (co, s)
        })
        .collect();
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("speedups are finite"));
    let keep = ((scored.len() as f64 * fraction).ceil() as usize).max(1);
    scored.into_iter().take(keep).map(|(co, _)| co).collect()
}

fn quantile_edges(projected: &[Vec<f64>], components: usize, bins: usize) -> Vec<Vec<f64>> {
    (0..components)
        .map(|c| {
            let mut vals: Vec<f64> = projected.iter().map(|p| p[c]).collect();
            vals.sort_by(|a, b| a.partial_cmp(b).expect("finite projections"));
            (1..bins)
                .map(|b| {
                    let q = b as f64 / bins as f64;
                    let pos = q * (vals.len() - 1) as f64;
                    let lo = pos.floor() as usize;
                    let hi = pos.ceil() as usize;
                    let frac = pos - lo as f64;
                    vals[lo] * (1.0 - frac) + vals[hi] * frac
                })
                .collect()
        })
        .collect()
}

fn discretise(v: f64, edges: &[f64]) -> usize {
    edges.iter().take_while(|&&e| v > e).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use milepost::FeatureKind;

    /// Builds a feature vector whose `Loops` counter is `loops` (plus a
    /// few correlated counters so PCA has signal).
    fn features_with_loops(loops: f64) -> Features {
        let mut v = vec![0.0; FeatureKind::COUNT];
        v[FeatureKind::Loops.index()] = loops;
        v[FeatureKind::ForLoops.index()] = loops;
        v[FeatureKind::Statements.index()] = 4.0 * loops + 3.0;
        v[FeatureKind::MulDivOps.index()] = 2.0 * loops;
        Features::from_values(v)
    }

    fn unroll() -> CompilerOptions {
        CompilerOptions::with_flags(OptLevel::O3, [CompilerFlag::UnrollAllLoops])
    }

    fn no_unroll() -> CompilerOptions {
        CompilerOptions::level(OptLevel::O2)
    }

    /// Loop-heavy apps like unrolling, flat apps don't.
    fn synthetic_corpus() -> Vec<TrainingApp> {
        let mut apps = Vec::new();
        for i in 0..6 {
            let loops = 6.0 + f64::from(i); // loop-heavy
            apps.push(TrainingApp {
                features: features_with_loops(loops),
                good: vec![unroll(); 4],
            });
        }
        for i in 0..6 {
            let loops = f64::from(i) * 0.2; // flat
            apps.push(TrainingApp {
                features: features_with_loops(loops),
                good: vec![no_unroll(); 4],
            });
        }
        apps
    }

    #[test]
    fn train_requires_two_apps() {
        let one = vec![TrainingApp {
            features: features_with_loops(1.0),
            good: vec![unroll()],
        }];
        assert_eq!(
            Cobayn::train(&one, CobaynConfig::default()).unwrap_err(),
            TrainError::TooFewApps
        );
    }

    #[test]
    fn train_requires_good_configs() {
        let apps = vec![
            TrainingApp {
                features: features_with_loops(1.0),
                good: vec![],
            },
            TrainingApp {
                features: features_with_loops(2.0),
                good: vec![],
            },
        ];
        assert_eq!(
            Cobayn::train(&apps, CobaynConfig::default()).unwrap_err(),
            TrainError::NoGoodConfigs
        );
    }

    #[test]
    fn predictor_transfers_flag_preference_by_features() {
        let model = Cobayn::train(&synthetic_corpus(), CobaynConfig::default()).unwrap();
        // Unseen loop-heavy app: unrolling must score higher than not.
        let loopy = features_with_loops(9.5);
        assert!(model.score(&loopy, &unroll()) > model.score(&loopy, &no_unroll()));
        // Unseen flat app: preference flips.
        let flat = features_with_loops(0.1);
        assert!(model.score(&flat, &no_unroll()) > model.score(&flat, &unroll()));
    }

    #[test]
    fn predictions_are_deterministic_and_distinct() {
        let model = Cobayn::train(&synthetic_corpus(), CobaynConfig::default()).unwrap();
        let f = features_with_loops(7.7);
        let a = model.predict(&f, 4);
        let b = model.predict(&f, 4);
        assert_eq!(a, b);
        assert_eq!(a.len(), 4);
        let set: std::collections::HashSet<_> = a.iter().collect();
        assert_eq!(set.len(), 4, "predictions must be distinct");
    }

    #[test]
    fn top_prediction_contains_preferred_flag() {
        let model = Cobayn::train(&synthetic_corpus(), CobaynConfig::default()).unwrap();
        let top = model.predict(&features_with_loops(9.0), 4);
        assert!(
            top.iter()
                .filter(|co| co.has(CompilerFlag::UnrollAllLoops))
                .count()
                >= 3,
            "top-4 for a loop-heavy app should mostly unroll: {top:?}"
        );
    }

    #[test]
    fn network_structure_links_flags_to_features() {
        let model = Cobayn::train(&synthetic_corpus(), CobaynConfig::default()).unwrap();
        let bn = model.network();
        // At least the unroll node must have learned a feature parent.
        let k = CobaynConfig::default().components;
        let unroll_node = k + 1 + CompilerFlag::UnrollAllLoops.bit();
        assert!(
            !bn.parents(unroll_node).is_empty(),
            "unroll node should depend on a feature"
        );
        assert!(bn.validate(1e-9));
    }

    #[test]
    fn iterative_compilation_selects_top_fraction() {
        // Score = number of flags (more flags = better, synthetic).
        let good = iterative_compilation(|co| co.flags.len() as f64, 0.1);
        assert_eq!(good.len(), 13); // ceil(128 * 0.1)

        // All selected combos have >= 4 flags (top of the count order).
        assert!(good.iter().all(|co| co.flags.len() >= 4), "{good:?}");
    }

    #[test]
    #[should_panic(expected = "fraction must be in (0, 1]")]
    fn iterative_compilation_validates_fraction() {
        let _ = iterative_compilation(|_| 1.0, 0.0);
    }

    #[test]
    fn discretise_respects_edges() {
        let edges = vec![1.0, 2.0];
        assert_eq!(discretise(0.5, &edges), 0);
        assert_eq!(discretise(1.5, &edges), 1);
        assert_eq!(discretise(2.5, &edges), 2);
        // Boundary values fall in the lower bin (v > e is strict).
        assert_eq!(discretise(1.0, &edges), 0);
    }
}
