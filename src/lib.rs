//! # socrates-suite — umbrella crate of the SOCRATES reproduction
//!
//! Re-exports the whole stack so examples and integration tests can use
//! one dependency. See the individual crates for details:
//!
//! - [`minic`] — mini-C front-end (lexer/parser/AST/printer);
//! - [`milepost`] — static code features (GCC-Milepost role);
//! - [`cobayn`] — Bayesian-network compiler-flag prediction;
//! - [`lara`] — aspect weaving (Multiversioning + Autotuner strategies);
//! - [`margot`] — runtime autotuner (monitors, AS-RTM, MAPE-K);
//! - [`platform_sim`] — simulated dual-socket NUMA testbed;
//! - [`polybench`] — the 12 benchmark applications;
//! - [`dse`] — design-space exploration;
//! - [`socrates`] — the end-to-end toolchain and adaptive runtime.

pub use cobayn;
pub use dse;
pub use lara;
pub use margot;
pub use milepost;
pub use minic;
pub use platform_sim;
pub use polybench;
pub use socrates;
