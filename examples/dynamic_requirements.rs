//! The paper's Fig. 5 scenario as a library example: a long-running
//! service alternates between an energy-efficient policy (Thr/W²) and a
//! performance policy (Throughput) — e.g. off-peak vs. peak hours — and
//! SOCRATES retunes compiler version, thread count and binding at every
//! switch without restarting the application.
//!
//! ```text
//! cargo run --example dynamic_requirements --release
//! ```

use margot::{Metric, Rank};
use polybench::{App, Dataset};
use socrates::{AdaptiveApplication, ArtifactStore, Toolchain};

fn main() {
    let toolchain = Toolchain {
        dataset: Dataset::Medium,
        ..Toolchain::default()
    };
    // A caller-owned artifact store: a second enhancement (same or
    // sibling app) would be answered from cache.
    let store = ArtifactStore::new();
    let enhanced = toolchain
        .enhance_with_store(App::TwoMm, &store)
        .expect("toolchain");
    let mut app = AdaptiveApplication::new(enhanced, Rank::throughput_per_watt2(), 2018);

    println!("dynamic requirement switching on 2mm (20 virtual s per phase)");
    println!(
        "{:>12} {:>10} {:>11} {:>9} {:>8} {:>18}",
        "phase", "power [W]", "exec [ms]", "threads", "bind", "invocations/phase"
    );

    let mut phase_stats = Vec::new();
    for (i, phase) in ["Thr/W^2", "Throughput", "Thr/W^2", "Throughput"]
        .iter()
        .enumerate()
    {
        match *phase {
            "Throughput" => app.set_rank(Rank::maximize(Metric::throughput())),
            _ => app.set_rank(Rank::throughput_per_watt2()),
        }
        let samples: Vec<_> = app.run_for(20.0).to_vec();
        let n = samples.len() as f64;
        let mean_power = samples.iter().map(|s| s.power_w).sum::<f64>() / n;
        let mean_exec = samples.iter().map(|s| s.time_s).sum::<f64>() / n * 1e3;
        let last = samples.last().expect("phase produced samples");
        println!(
            "{:>12} {:>10.1} {:>11.1} {:>9} {:>8} {:>18}",
            format!("{} #{}", phase, i / 2 + 1),
            mean_power,
            mean_exec,
            last.config.tn,
            last.config.bp,
            samples.len()
        );
        phase_stats.push((phase.to_string(), mean_power));
    }

    // The energy policy must come back to (almost) the same operating
    // point after the detour through the performance policy.
    let eff: Vec<f64> = phase_stats
        .iter()
        .filter(|(p, _)| p == "Thr/W^2")
        .map(|(_, p)| *p)
        .collect();
    println!();
    println!(
        "energy-phase mean power, first vs second occurrence: {:.1} W vs {:.1} W \
         (policy is stable across switches)",
        eff[0], eff[1]
    );
}
