//! A tour of the source-to-source weaving pipeline on a *custom* (non
//! Polybench) C application, showing the exact code transformations of
//! the paper's Fig. 2: original → multiversioned → adaptive.
//!
//! ```text
//! cargo run --example weaving_tour --release
//! ```

use lara::{autotuner, multiversioning, StaticVersion, Weaver};

const ORIGINAL: &str = "\
#include <stdio.h>
#define N 2048

static double signal[N];
static double filtered[N];

void kernel_fir(double gain) {
    for (int i = 2; i < N - 2; i++) {
        filtered[i] = gain * (0.2 * signal[i - 2] + 0.3 * signal[i - 1] + 0.5 * signal[i]);
    }
}

int main() {
    for (int i = 0; i < N; i++) {
        signal[i] = (double) (i % 13) / 13.0;
    }
    kernel_fir(0.98);
    printf(\"%f\\n\", filtered[N / 2]);
    return 0;
}
";

fn main() {
    println!("=== (a) original functional code ===");
    println!("{ORIGINAL}");

    let tu = minic::parse(ORIGINAL).expect("valid mini-C");
    let mut weaver = Weaver::new(tu);

    // Multiversioning: two compiler configurations x two bindings.
    let versions = [
        StaticVersion::new(["O2"], "close"),
        StaticVersion::new(["O2"], "spread"),
        StaticVersion::new(["O3", "unroll-all-loops"], "close"),
        StaticVersion::new(["O3", "unroll-all-loops"], "spread"),
    ];
    let mv = multiversioning(&mut weaver, "kernel_fir", &versions).expect("multiversioning");
    println!(
        "=== (b) after Multiversioning: {} clones + wrapper `{}` ===",
        versions.len(),
        mv.wrapper
    );

    // Autotuner: weave the mARGOt glue around the wrapper call in main.
    let at = autotuner(&mut weaver, &mv, "main").expect("autotuner");
    println!(
        "=== (c) after Autotuner: {} instrumented call site(s) ===",
        at.instrumented_sites
    );
    println!();

    let (weaved, metrics) = weaver.finish();
    let printed = minic::print(&weaved);
    println!("{printed}");

    // The weaved program is valid C: it reparses to the same AST.
    assert_eq!(minic::parse(&printed).expect("valid weaved C"), weaved);

    println!("=== weaving metrics (one Table I row) ===");
    println!("{metrics}");
}
