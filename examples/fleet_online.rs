//! The online fleet in action: eight adaptive instances deploy onto a
//! machine running hotter than the design-time platform, pool their
//! runtime observations in a shared knowledge base, sweep the design
//! space cooperatively, and converge onto the operating point that is
//! genuinely best on the drifted hardware — while a global power
//! budget is arbitrated across the fleet as instances leave.
//!
//! ```text
//! cargo run --example fleet_online --release
//! ```

use margot::Rank;
use polybench::{App, Dataset};
use socrates::{Fleet, FleetConfig, FleetEvent, FleetRuntime, Toolchain};

fn main() {
    let toolchain = Toolchain {
        dataset: Dataset::Large,
        ..Toolchain::default()
    };
    let enhanced = toolchain.enhance(App::TwoMm).expect("toolchain");

    // Deployment drift: the deployed machine burns 40% more per-core
    // dynamic power than the platform the DSE profiled (the idle floor
    // is unchanged, so the drift re-orders the operating points).
    let drifted = enhanced.platform.hotter(1.4);

    // Builder-style construction: every knob is validated at the
    // setter that introduces it, and the global 880 W budget lands in
    // the config instead of a post-spawn mutation.
    let config = FleetConfig::builder()
        .power_budget_w(Some(8.0 * 110.0))
        .expect("a positive, finite budget")
        .build()
        .expect("valid fleet config");
    let mut fleet = Fleet::new(config).expect("valid fleet config");
    let rank = Rank::throughput_per_watt2();
    fleet.spawn_on(&enhanced, &rank, &drifted.machine(42), 8);

    // The runtime surface streams events; count the cooperative
    // exploration publishes as they happen.
    let publishes = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
    let seen = std::sync::Arc::clone(&publishes);
    fleet.observe(Box::new(move |ev| {
        if matches!(ev, FleetEvent::Published { .. }) {
            seen.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
    }));

    println!("8-instance 2mm fleet on a hotter-than-profiled machine");
    println!("(energy-efficient policy, global 880 W budget)");
    println!();
    println!(
        "{:>8} {:>10} {:>10} {:>12} {:>10}",
        "t [s]", "epoch", "coverage", "power [W]", "exec [ms]"
    );

    for phase_end in [30.0, 60.0, 90.0, 120.0] {
        fleet.run_until(phase_end);
        let (covered, total) = fleet.exploration_coverage(App::TwoMm).expect("pool");
        // Fleet-wide means over the last 10 virtual seconds of planned
        // (non-exploration) invocations.
        let mut power = Vec::new();
        let mut exec = Vec::new();
        for id in 0..8 {
            for s in fleet.trace(id) {
                if s.t_start_s >= phase_end - 10.0 && !s.forced {
                    power.push(s.power_w);
                    exec.push(s.time_s);
                }
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        println!(
            "{:>8.0} {:>10} {:>7}/{:<4} {:>12.1} {:>10.1}",
            phase_end,
            fleet.knowledge_epoch(App::TwoMm).expect("pool"),
            covered,
            total,
            mean(&power),
            mean(&exec) * 1e3,
        );
    }

    // Half the fleet shuts down; the arbiter doubles the survivors'
    // power share and their operating points can stretch out.
    println!();
    println!("4 instances retire — power share doubles for the rest");
    for id in 0..4 {
        fleet.retire_instance(id);
    }
    fleet.run_until(150.0);
    let last = fleet.trace(7);
    let s = last.last().expect("instance 7 kept running");
    println!(
        "instance 7 now runs {} threads / {} at {:.1} W",
        s.config.tn, s.config.bp, s.power_w
    );
    println!(
        "{} knowledge publishes streamed to the observer",
        publishes.load(std::sync::atomic::Ordering::Relaxed)
    );

    // The fleet's learned knowledge outlives the deployment: persist it
    // for the next toolchain run to seed from.
    let dir = std::env::temp_dir().join("socrates-fleet-knowledge");
    let written = fleet.persist_learned(&dir).expect("persist");
    println!();
    println!("learned knowledge persisted to {}", written[0].display());
}
