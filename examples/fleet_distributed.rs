//! Distributed online autotuning over a lossy wire: a 12-instance
//! fleet exchanges runtime knowledge through a broker over a link
//! that delays, reorders and drops messages — and still converges
//! onto one shared view of the deployment platform.
//!
//! Run with: `cargo run --release --example fleet_distributed`

use margot::Rank;
use polybench::{App, Dataset};
use socrates::{
    DistTopology, DistributedConfig, DistributedFleet, FleetConfig, FleetRuntime, LinkConfig,
    Toolchain,
};

fn main() {
    // Design time: enhance the application once (shortened DSE so the
    // example runs in seconds).
    let enhanced = Toolchain {
        dataset: Dataset::Medium,
        dse_repetitions: 1,
        ..Toolchain::default()
    }
    .enhance(App::TwoMm)
    .expect("enhance 2mm");

    // Deployment: a broker-star fleet over a degraded link — up to 3
    // rounds of latency, 20% loss, 5% duplication, all seeded and
    // replayable. The builder validates the wire configuration at the
    // setter that introduces it.
    let config = FleetConfig::builder()
        .exploration_interval(0)
        .distributed(Some(DistributedConfig {
            topology: DistTopology::BrokerStar,
            link: LinkConfig {
                seed: 7,
                min_latency: 0,
                max_latency: 3,
                drop_prob: 0.2,
                dup_prob: 0.05,
            },
            ..DistributedConfig::default()
        }))
        .expect("a valid wire configuration")
        .build()
        .expect("valid fleet config");
    let mut fleet = DistributedFleet::new(config, &enhanced).expect("valid config");
    fleet.spawn(&Rank::throughput_per_watt2(), 42, 10);
    fleet.run_until(20.0);

    // Churn: two instances join mid-run; they announce themselves,
    // adopt the broker's snapshot and catch up via deltas.
    for seed in [1001, 1002] {
        fleet.add_instance(
            Rank::throughput_per_watt2(),
            enhanced.platform.machine(seed),
        );
    }
    fleet.run_until(30.0);

    // Drain: anti-entropy repair rounds until every node holds the
    // same effective knowledge.
    let repair_rounds = fleet.drain().expect("a 20% loss link drains");
    assert!(fleet.converged());
    let stats = fleet.stats();
    println!(
        "{} instances, {} rounds, {} observations exchanged",
        stats.instances,
        stats.rounds,
        fleet.canonical_ops().len()
    );
    println!(
        "link: {} sent / {} delivered / {} dropped / {} duplicated",
        stats.net.sent, stats.net.delivered, stats.net.dropped, stats.net.duplicated
    );
    println!("converged after {repair_rounds} repair rounds");
    let authoritative = fleet.authoritative_knowledge();
    for id in 0..stats.instances {
        assert_eq!(fleet.node_knowledge(id), authoritative);
    }
    println!(
        "all {} nodes (including the late joiners) share one knowledge view: {} points",
        stats.instances,
        authoritative.len()
    );
}
