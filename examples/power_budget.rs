//! Power-capped operation (the Fig. 4 scenario as an application):
//! a data-centre operator imposes a machine power budget that changes
//! during the day; the adaptive application keeps maximising performance
//! inside whatever budget is currently in force.
//!
//! ```text
//! cargo run --example power_budget --release
//! ```

use margot::{Cmp, Constraint, Metric, Rank};
use polybench::{App, Dataset};
use socrates::{AdaptiveApplication, ArtifactStore, Toolchain};

fn main() {
    let toolchain = Toolchain {
        dataset: Dataset::Medium,
        ..Toolchain::default()
    };
    // Persisted artifact store: the profiled knowledge round-trips
    // through JSON on disk, so re-running this example skips the DSE.
    // The cache key covers the toolchain config only — delete the
    // directory to force a re-profile after changing the code itself.
    let user = std::env::var("USER").unwrap_or_else(|_| "anon".to_string());
    let cache_dir = std::env::temp_dir().join(format!("socrates-knowledge-cache-{user}"));
    let store = ArtifactStore::with_persist_dir(&cache_dir);
    let enhanced = toolchain
        .enhance_with_store(App::ThreeMm, &store)
        .expect("toolchain");
    if store.stats().knowledge_loads > 0 {
        println!(
            "(design-time knowledge reloaded from {})",
            cache_dir.display()
        );
    } else {
        println!(
            "(design-time knowledge profiled and saved to {})",
            cache_dir.display()
        );
    }
    let mut app = AdaptiveApplication::new(enhanced, Rank::minimize(Metric::exec_time()), 7);

    // Performance objective under a power constraint (priority 10).
    app.add_constraint(Constraint::new(
        Metric::power(),
        Cmp::LessOrEqual,
        140.0,
        10,
    ));

    println!("power-capped adaptive execution of 3mm");
    println!(
        "{:>10} {:>10} {:>11} {:>10} {:>26}",
        "budget [W]", "power [W]", "exec [ms]", "threads", "compiler/binding"
    );

    // The operator tightens the cap in steps: 140 -> 100 -> 60 W, then
    // lifts it back to 120 W.
    for budget in [140.0, 100.0, 60.0, 120.0] {
        app.manager_mut()
            .asrtm_mut()
            .set_constraint_value(&Metric::power(), budget);
        app.run_for(5.0);
        let s = app.trace().last().expect("non-empty trace");
        println!(
            "{:>10.0} {:>10.1} {:>11.1} {:>10} {:>26}",
            budget,
            s.power_w,
            s.time_s * 1e3,
            s.config.tn,
            format!("{} / {}", s.config.co, s.config.bp),
        );
    }

    // Sanity: the tightest budget must have produced the coolest, slowest
    // configuration of the four phases.
    let phases: Vec<f64> = app.trace().iter().map(|s| s.power_w).collect();
    println!();
    println!(
        "observed machine power range across the day: {:.1} W .. {:.1} W",
        phases.iter().copied().fold(f64::INFINITY, f64::min),
        phases.iter().copied().fold(0.0, f64::max),
    );
}
