//! Named optimisation states: register whole requirement sets (rank +
//! constraints) once, then switch atomically by name — mARGOt's state
//! mechanism, driving the same machinery as Fig. 5 but with a
//! power-capped "capped" state in the mix.
//!
//! ```text
//! cargo run --example optimization_states --release
//! ```

use margot::{Cmp, Constraint, Metric, OptimizationState, Rank, StateRegistry};
use polybench::{App, Dataset};
use socrates::{AdaptiveApplication, ArtifactStore, Toolchain};

fn main() {
    let toolchain = Toolchain {
        dataset: Dataset::Medium,
        ..Toolchain::default()
    };
    let store = ArtifactStore::new();
    let enhanced = toolchain
        .enhance_with_store(App::Syr2k, &store)
        .expect("toolchain");

    // Three states an operator might define for a long-running service.
    let mut states = StateRegistry::new(
        "energy",
        OptimizationState::new(Rank::throughput_per_watt2()),
    );
    states.register(
        "performance",
        OptimizationState::new(Rank::maximize(Metric::throughput())),
    );
    states.register(
        "capped",
        OptimizationState::new(Rank::maximize(Metric::throughput()))
            .with_constraint(Constraint::new(Metric::power(), Cmp::LessOrEqual, 80.0, 10)),
    );

    let mut app = AdaptiveApplication::new(enhanced, states.active().rank.clone(), 31);

    println!("named optimization states on syr2k (8 virtual s per state)");
    println!(
        "{:>13} {:>10} {:>11} {:>9} {:>7}",
        "state", "power [W]", "exec [ms]", "threads", "bind"
    );

    for name in ["energy", "performance", "capped", "energy"] {
        let state = states.switch_to(name).expect("registered state");
        app.apply_state(state);
        let samples = app.run_for(8.0);
        let n = samples.len() as f64;
        let power = samples.iter().map(|s| s.power_w).sum::<f64>() / n;
        let exec = samples.iter().map(|s| s.time_s).sum::<f64>() / n * 1e3;
        let last = samples.last().expect("samples");
        println!(
            "{:>13} {:>10.1} {:>11.1} {:>9} {:>7}",
            name, power, exec, last.config.tn, last.config.bp
        );
    }

    // Switching to an unknown state is a loud, typed error.
    let err = states.switch_to("afterburner").unwrap_err();
    println!();
    println!("switching to an undefined state fails cleanly: {err}");
}
