//! Compiled-kernel sweep: run every Polybench app functionally on both
//! execution engines and show what lowering buys.
//!
//! Each weaved kernel is specialized for one thread and executed
//! through
//!
//! - the AST interpreter (the obviously-correct reference), and
//! - the register bytecode produced by `minivm`'s lowering backend,
//!   with array dimensions, pragma parameters and entry arguments
//!   baked in as specialization constants.
//!
//! The example prints the per-app speedup and **asserts trace
//! equality**: checksum, flop/load/store counts and return value must
//! be bit-identical between the engines for all 12 apps — the contract
//! every downstream consumer (pipeline profiling, fleets, benches)
//! relies on.
//!
//! ```text
//! cargo run --example compiled_sweep --release
//! ```

use polybench::{App, Dataset};
use socrates::{compile_kernel_for, ExecutionEngine};
use std::time::Instant;

/// Invocations timed per engine (after the compile/warm-up pass).
const RUNS: usize = 12;

fn main() {
    println!("Compiled-kernel sweep — bytecode vs AST interpreter, 12 apps, 1 thread\n");
    println!(
        "{:>12} {:>16} {:>14} {:>12} {:>9}",
        "app", "checksum", "interp [µs]", "byte [µs]", "speedup"
    );
    let mut worst = f64::INFINITY;
    for app in App::ALL {
        // Weave the original source exactly like the toolchain does.
        let tu = minic::parse(&polybench::source(app, Dataset::Large)).expect("source parses");
        let mut weaver = lara::Weaver::new(tu);
        let versions = [lara::StaticVersion::new(["O2"], "close")];
        let woven = lara::multiversioning(&mut weaver, &app.kernel_name(), &versions)
            .expect("weaving succeeds");
        let (weaved, _) = weaver.finish();
        let entry = &woven.version_functions[0];

        let ast = compile_kernel_for(ExecutionEngine::Ast, &weaved, entry, app, Dataset::Large, 1)
            .expect("interpreter accepts the weaved clone");
        let byte = compile_kernel_for(
            ExecutionEngine::Bytecode,
            &weaved,
            entry,
            app,
            Dataset::Large,
            1,
        )
        .expect("bytecode backend lowers the weaved clone");

        // The trace-equality contract: identical checksums and
        // identical semantic op counts, engine by engine.
        assert_eq!(
            ast.report,
            byte.report,
            "{}: engines diverged — bit-identity contract broken",
            app.name()
        );
        let code = byte.code.as_ref().expect("bytecode keeps compiled code");
        // Every re-run of the cached code reproduces the same report.
        assert_eq!(code.run().expect("runs"), byte.report);

        let spec = socrates::functional_spec(app, Dataset::Large, 1);
        let t_ast = Instant::now();
        for _ in 0..RUNS {
            minivm::interpret(&weaved, entry, &spec).expect("interprets");
        }
        let ast_us = t_ast.elapsed().as_secs_f64() * 1e6 / RUNS as f64;
        let t_byte = Instant::now();
        for _ in 0..RUNS {
            code.run().expect("runs");
        }
        let byte_us = t_byte.elapsed().as_secs_f64() * 1e6 / RUNS as f64;
        let speedup = ast_us / byte_us;
        worst = worst.min(speedup);
        println!(
            "{:>12} {:>16} {:>14.1} {:>12.1} {:>8.1}x",
            app.name(),
            format!("{:016x}", byte.report.checksum),
            ast_us,
            byte_us,
            speedup
        );
    }
    println!("\nall 12 apps bit-identical across engines; worst-case speedup {worst:.1}x");
}
