//! Quickstart: enhance one Polybench application with SOCRATES and run
//! it adaptively for a few virtual seconds.
//!
//! ```text
//! cargo run --example quickstart --release
//! ```

use margot::{Metric, Rank};
use polybench::{App, Dataset};
use socrates::{socrates_pipeline, AdaptiveApplication, ArtifactStore, StageContext, Toolchain};

fn main() {
    // 1. Run the staged toolchain pipeline: parse -> Milepost features
    //    -> COBAYN flag prediction -> LARA weaving -> full-factorial
    //    DSE profiling -> assembled EnhancedApp. Every stage output is
    //    cached in the artifact store, so enhancing another app next
    //    would reuse the whole COBAYN training corpus.
    let toolchain = Toolchain {
        dataset: Dataset::Medium, // quick demo; experiments use Large
        ..Toolchain::default()
    };
    let store = ArtifactStore::new();
    let pipeline = socrates_pipeline();
    println!("pipeline stages: {}", pipeline.stage_names().join(" -> "));
    let ctx = StageContext::new(&toolchain, &store, App::TwoMm);
    let enhanced = pipeline.run(&ctx, ()).expect("toolchain");

    println!("SOCRATES quickstart — app: {}", enhanced.app);
    println!(
        "  kernel features extracted : {} counters",
        milepost::FeatureKind::COUNT
    );
    println!(
        "  COBAYN flag predictions   : {:?}",
        enhanced
            .cobayn_flags
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
    );
    println!("  compiled kernel versions  : {}", enhanced.versions.len());
    println!("  knowledge operating points: {}", enhanced.knowledge.len());
    println!("  weaving metrics           : {}", enhanced.metrics);
    println!();

    // 2. The weaved application is real C — show a fragment around the
    //    instrumented call site.
    let weaved = minic::print(&enhanced.weaved);
    let snippet: Vec<&str> = weaved
        .lines()
        .skip_while(|l| !l.contains("margot_update"))
        .take(5)
        .collect();
    println!("weaved call site:");
    for line in &snippet {
        println!("    {}", line.trim());
    }
    println!();

    // 3. Boot the adaptive binary with an energy-efficiency objective
    //    and let the MAPE-K loop run for ten virtual seconds.
    let mut app = AdaptiveApplication::new(enhanced, Rank::throughput_per_watt2(), 42);
    app.run_for(10.0);
    let last = app.trace().last().expect("ran at least once");
    println!(
        "after {:.1} virtual s under Thr/W^2: config [{}] -> {:.1} ms at {:.1} W",
        app.now_s(),
        last.config,
        last.time_s * 1e3,
        last.power_w
    );

    // 4. Switch the requirement to raw throughput at runtime.
    app.set_rank(Rank::maximize(Metric::throughput()));
    app.run_for(10.0);
    let last = app.trace().last().expect("non-empty trace");
    println!(
        "after switching to Throughput:       config [{}] -> {:.1} ms at {:.1} W",
        last.config,
        last.time_s * 1e3,
        last.power_w
    );
    println!(
        "total energy drawn: {:.0} J over {} invocations",
        app.energy_j(),
        app.trace().len()
    );
}
