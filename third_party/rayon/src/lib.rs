//! Offline stand-in for the `rayon` crate.
//!
//! Provides the small data-parallel surface this workspace uses:
//! `slice.par_iter().map(f).collect::<Vec<_>>()` and
//! `(0..n).into_par_iter().map(f).collect::<Vec<_>>()`. Work is
//! distributed over `std::thread::scope` workers that pull indices from
//! a shared atomic counter, so uneven items balance across cores. The
//! output order always matches the input order, exactly like rayon's
//! indexed parallel iterators.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

pub mod prelude {
    //! Glob-importable traits, mirroring `rayon::prelude`.

    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

/// The number of worker threads a parallel operation will use: the
/// `RAYON_NUM_THREADS` environment variable if set (as in upstream
/// rayon), otherwise every available core.
pub fn current_num_threads() -> usize {
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
}

/// Runs `f(0..len)` across worker threads, returning results in index
/// order. The scheduling unit is a single index pulled from an atomic
/// counter — coarse chunking is unnecessary for the simulation-sized
/// workloads this workspace profiles.
fn par_map_indices<U, F>(len: usize, threads: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    if len == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, len);
    if threads == 1 {
        return (0..len).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, U)>> = Mutex::new(Vec::with_capacity(len));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut local: Vec<(usize, U)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= len {
                        break;
                    }
                    local.push((i, f(i)));
                }
                results
                    .lock()
                    .expect("worker panicked while holding results lock")
                    .extend(local);
            });
        }
    });
    let mut collected = results.into_inner().expect("results lock poisoned");
    collected.sort_by_key(|(i, _)| *i);
    collected.into_iter().map(|(_, v)| v).collect()
}

/// A lazy parallel computation that can be mapped and collected.
pub trait ParallelIterator: Sized {
    /// The element type produced by this iterator.
    type Item: Send;

    /// Maps every element through `f` in parallel.
    fn map<U, F>(self, f: F) -> Map<Self, F>
    where
        U: Send,
        F: Fn(Self::Item) -> U + Sync,
    {
        Map { base: self, f }
    }

    /// Runs the computation and gathers results in input order.
    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_par_vec(self.run())
    }

    /// Executes the pipeline, producing the results as a `Vec`.
    fn run(self) -> Vec<Self::Item>;
}

/// Collection types that can absorb a parallel iterator's output.
pub trait FromParallelIterator<T> {
    /// Builds the collection from results already in input order.
    fn from_par_vec(items: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_par_vec(items: Vec<T>) -> Vec<T> {
        items
    }
}

/// A `map` adaptor over a parallel iterator. The parallel execution
/// lives in the per-base `ParallelIterator` impls below, which fuse the
/// closure with index-order scheduling.
pub struct Map<B, F> {
    base: B,
    f: F,
}

/// A parallel iterator over `&[T]`.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for ParIter<'a, T> {
    type Item = &'a T;

    fn run(self) -> Vec<&'a T> {
        self.items.iter().collect()
    }
}

impl<'a, T: Sync, U, F> ParallelIterator for Map<ParIter<'a, T>, F>
where
    U: Send,
    F: Fn(&'a T) -> U + Sync,
{
    type Item = U;

    fn run(self) -> Vec<U> {
        let items = self.base.items;
        let f = &self.f;
        par_map_indices(items.len(), current_num_threads(), |i| f(&items[i]))
    }
}

/// Types whose references iterate in parallel (`par_iter`).
pub trait IntoParallelRefIterator<'a> {
    /// The element reference type.
    type Item: Send + 'a;
    /// The concrete parallel iterator.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Creates a parallel iterator over references.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + Send + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = ParIter<'a, T>;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + Send + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = ParIter<'a, T>;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// A parallel iterator over an index range.
pub struct RangeIter {
    start: usize,
    end: usize,
}

impl ParallelIterator for RangeIter {
    type Item = usize;

    fn run(self) -> Vec<usize> {
        (self.start..self.end).collect()
    }
}

impl<U, F> ParallelIterator for Map<RangeIter, F>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    type Item = U;

    fn run(self) -> Vec<U> {
        let (start, end) = (self.base.start, self.base.end);
        let f = &self.f;
        par_map_indices(end.saturating_sub(start), current_num_threads(), |i| {
            f(start + i)
        })
    }
}

/// Types that convert into a parallel iterator by value.
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;
    /// The concrete parallel iterator.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    type Iter = RangeIter;

    fn into_par_iter(self) -> RangeIter {
        RangeIter {
            start: self.start,
            end: self.end,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn slice_map_preserves_order() {
        let xs: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = xs.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn range_map_preserves_order() {
        let squares: Vec<usize> = (0..257).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares, (0..257).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u8> = Vec::<u8>::new().par_iter().map(|x| *x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn actually_uses_multiple_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        let _: Vec<()> = (0..256)
            .into_par_iter()
            .map(|_| {
                seen.lock().unwrap().insert(std::thread::current().id());
                std::thread::yield_now();
            })
            .collect();
        let threads = seen.lock().unwrap().len();
        if super::current_num_threads() > 1 {
            assert!(threads > 1, "expected multi-threaded execution");
        }
    }
}
