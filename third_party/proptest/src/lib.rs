//! Offline stand-in for the `proptest` crate.
//!
//! Implements the strategy combinators and macros this workspace's
//! property tests rely on — ranges, tuples, `prop_map`,
//! `prop_recursive`, `prop_oneof!`, `prop::collection::vec`,
//! `prop::option::of`, `prop::sample::select`, `prop::bool::ANY`,
//! `any::<T>()` and the `proptest!` / `prop_assert!` macros — on top of
//! a seeded ChaCha8 generator. Two deliberate simplifications versus
//! upstream: failing cases are **not shrunk** (the original inputs are
//! reported verbatim), and each test's RNG seed is derived from the
//! test's name, so runs are fully deterministic.

#![warn(missing_docs)]

use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::fmt;
use std::sync::Arc;

/// The RNG threaded through strategy sampling.
pub type TestRng = ChaCha8Rng;

/// Creates the deterministic RNG for a named test.
pub fn new_rng(test_name: &str) -> TestRng {
    // FNV-1a over the test name: stable across runs and platforms.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    TestRng::seed_from_u64(hash)
}

/// Per-test configuration (the subset of upstream's knobs in use).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property case (carries the formatted assertion message).
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// A generator of random values of one type.
///
/// Unlike upstream proptest there is no value tree: strategies sample
/// directly and failures are not shrunk.
pub trait Strategy: 'static {
    /// The type of values this strategy produces.
    type Value;

    /// Samples one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U + 'static,
    {
        Map { base: self, f }
    }

    /// Builds a recursive strategy: `expand` receives the
    /// strategy-so-far and returns a strategy for one more level of
    /// nesting. `depth` bounds the recursion; `_desired_size` and
    /// `_expected_branch_size` are accepted for signature compatibility
    /// but unused by this sampler.
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        expand: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
        S: Strategy<Value = Self::Value>,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            // Mixing the leaf back in at every level makes generated
            // structures vary in depth instead of always bottoming out
            // at `depth`.
            let deeper = expand(current).boxed();
            current = Union::new(vec![leaf.clone(), deeper]).boxed();
        }
        current
    }

    /// Type-erases the strategy so heterogeneous strategies of the same
    /// value type can be stored together.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
    {
        let inner = self;
        BoxedStrategy {
            sample: Arc::new(move |rng| inner.gen_value(rng)),
        }
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T> {
    sample: Arc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            sample: Arc::clone(&self.sample),
        }
    }
}

impl<T: 'static> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        (self.sample)(rng)
    }
}

/// The `prop_map` adaptor.
pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<B, U, F> Strategy for Map<B, F>
where
    B: Strategy,
    U: 'static,
    F: Fn(B::Value) -> U + 'static,
{
    type Value = U;

    fn gen_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.base.gen_value(rng))
    }
}

/// A uniform choice between boxed alternatives (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Creates a union over the given alternatives.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T: 'static> Strategy for Union<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].gen_value(rng)
    }
}

/// A strategy that always yields clones of one value.
pub struct Just<T>(pub T);

impl<T: Clone + 'static> Strategy for Just<T> {
    type Value = T;

    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// String strategies from a small regex subset, mirroring upstream's
/// `impl Strategy for &str`. Supported patterns: a literal with no
/// metacharacters, or `\PC` / `.` (any printable character) followed by
/// an optional `{m,n}`, `*` or `+` repetition.
impl Strategy for &'static str {
    type Value = String;

    fn gen_value(&self, rng: &mut TestRng) -> String {
        let (min_len, max_len) =
            if let Some(rest) = self.strip_prefix("\\PC").or_else(|| self.strip_prefix('.')) {
                match rest {
                    "" => (1usize, 1usize),
                    "*" => (0, 32),
                    "+" => (1, 32),
                    _ => {
                        let bounds = rest
                            .strip_prefix('{')
                            .and_then(|r| r.strip_suffix('}'))
                            .and_then(|r| r.split_once(','))
                            .and_then(|(lo, hi)| Some((lo.parse().ok()?, hi.parse().ok()?)));
                        match bounds {
                            Some(b) => b,
                            None => panic!(
                                "unsupported string-strategy pattern {self:?} \
                             (offline proptest shim supports literals and \
                             \\PC with {{m,n}}/*/+ repetition)"
                            ),
                        }
                    }
                }
            } else if self.contains(['\\', '{', '[', '(', '*', '+', '?', '|']) {
                panic!(
                    "unsupported string-strategy pattern {self:?} (offline \
                 proptest shim supports literals and \\PC repetitions)"
                );
            } else {
                return (*self).to_string();
            };
        let len = rng.gen_range(min_len..=max_len);
        (0..len)
            .map(|_| {
                // Mostly ASCII printable, occasionally a larger scalar, to
                // mimic `\PC` (any printable char) coverage cheaply.
                if rng.gen_range(0u32..8) == 0 {
                    char::from_u32(rng.gen_range(0xA1u32..0x2FF)).unwrap_or('¡')
                } else {
                    char::from(rng.gen_range(0x20u8..0x7F))
                }
            })
            .collect()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn gen_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn gen_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn gen_value(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;

    fn gen_value(&self, rng: &mut TestRng) -> f32 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),* $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.gen_value(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7),
);

/// Types with a canonical "any value" strategy (`any::<T>()`).
pub trait Arbitrary: Sized + 'static {
    /// The canonical strategy for the type.
    type Strategy: Strategy<Value = Self>;

    /// Returns the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// A fair boolean strategy.
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;

    fn gen_value(&self, rng: &mut TestRng) -> bool {
        rng.gen()
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;

    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            type Strategy = std::ops::RangeInclusive<$t>;

            fn arbitrary() -> Self::Strategy {
                <$t>::MIN..=<$t>::MAX
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The canonical strategy for `T` (upstream `proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

pub mod collection {
    //! Collection strategies (`prop::collection`).

    use super::{Strategy, TestRng};
    use rand::Rng;

    /// A strategy for `Vec<T>` with a length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        min_len: usize,
        max_len_exclusive: usize,
    }

    /// Lengths acceptable to [`vec()`].
    pub trait IntoLenRange {
        /// Lower bound (inclusive) and upper bound (exclusive).
        fn bounds(self) -> (usize, usize);
    }

    impl IntoLenRange for std::ops::Range<usize> {
        fn bounds(self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    impl IntoLenRange for std::ops::RangeInclusive<usize> {
        fn bounds(self) -> (usize, usize) {
            (*self.start(), *self.end() + 1)
        }
    }

    impl IntoLenRange for usize {
        fn bounds(self) -> (usize, usize) {
            (self, self + 1)
        }
    }

    /// `vec(element, len_range)`: a vector of sampled elements.
    pub fn vec<S: Strategy>(element: S, len: impl IntoLenRange) -> VecStrategy<S> {
        let (min_len, max_len_exclusive) = len.bounds();
        assert!(min_len < max_len_exclusive, "empty length range");
        VecStrategy {
            element,
            min_len,
            max_len_exclusive,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.min_len..self.max_len_exclusive);
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies (`prop::option`).

    use super::{Strategy, TestRng};
    use rand::Rng;

    /// A strategy yielding `None` a quarter of the time.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `of(inner)`: `Some(inner)` three-quarters of the time.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn gen_value(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.gen_range(0u32..4) == 0 {
                None
            } else {
                Some(self.inner.gen_value(rng))
            }
        }
    }
}

pub mod sample {
    //! Sampling from explicit lists (`prop::sample`).

    use super::{Strategy, TestRng};
    use rand::seq::SliceRandom;

    /// A uniform choice from a fixed list.
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// `select(options)`: one uniformly chosen element, cloned.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn select<T: Clone + 'static>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        Select { options }
    }

    impl<T: Clone + 'static> Strategy for Select<T> {
        type Value = T;

        fn gen_value(&self, rng: &mut TestRng) -> T {
            self.options
                .choose(rng)
                .expect("select options are non-empty")
                .clone()
        }
    }
}

pub mod bool {
    //! Boolean strategies (`prop::bool`).

    /// The fair-coin strategy.
    pub const ANY: super::AnyBool = super::AnyBool;
}

pub mod prelude {
    //! The glob import used by tests: `use proptest::prelude::*;`.

    /// Alias so `prop::collection::vec(..)` etc. resolve after a glob
    /// import, mirroring upstream's prelude.
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Runs the body of one generated case, converting `prop_assert!`
/// early-returns into a `Result`.
pub fn run_case<F: FnOnce() -> Result<(), TestCaseError>>(body: F) -> Result<(), TestCaseError> {
    body()
}

/// Declares property tests. Supports the upstream form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn my_property(x in 0u32..100, flag in any::<bool>()) {
///         prop_assert!(x < 100 || flag);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $(
            $(#[$attr:meta])*
            fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::new_rng(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    $(let $pat = $crate::Strategy::gen_value(&($strategy), &mut rng);)+
                    let outcome = $crate::run_case(|| { $body Ok(()) });
                    if let Err(e) = outcome {
                        panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name), case + 1, config.cases, e
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside `proptest!`, failing the case (not
/// panicking directly) so the harness can report the case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Asserts inequality inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` != `{:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// A uniform choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($(|)? $weight:literal => $strategy:expr),+ $(,)?) => {
        // Weighted arms: weights are treated as repetition counts.
        {
            let mut options = Vec::new();
            $(
                for _ in 0..$weight {
                    options.push($crate::Strategy::boxed($strategy));
                }
            )+
            $crate::Union::new(options)
        }
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = crate::new_rng("ranges");
        for _ in 0..200 {
            let x = (5u32..10).gen_value(&mut rng);
            assert!((5..10).contains(&x));
            let y = (0.5f64..2.0).gen_value(&mut rng);
            assert!((0.5..2.0).contains(&y));
        }
    }

    #[test]
    fn boxed_and_union_work() {
        let mut rng = crate::new_rng("union");
        let s = prop_oneof![0u32..10, 100u32..110];
        let mut low = false;
        let mut high = false;
        for _ in 0..100 {
            let v = s.gen_value(&mut rng);
            assert!((0..10).contains(&v) || (100..110).contains(&v));
            low |= v < 10;
            high |= v >= 100;
        }
        assert!(low && high, "union never picked one arm");
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug)]
        enum Tree {
            Leaf(#[allow(dead_code)] u8),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(children) => 1 + children.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = (0u8..16)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 16, 2, |inner| {
                prop::collection::vec(inner, 1..3).prop_map(Tree::Node)
            });
        let mut rng = crate::new_rng("recursive");
        for _ in 0..200 {
            assert!(depth(&strat.gen_value(&mut rng)) <= 4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_round_trip(x in 1u32..100, flag in any::<bool>()) {
            prop_assert!(x >= 1);
            prop_assert_eq!(x, x);
            if flag {
                prop_assert_ne!(x, 0);
            }
        }
    }
}
