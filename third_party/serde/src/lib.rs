//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a simplified serde: instead of the visitor-based
//! `Serializer`/`Deserializer` machinery, [`Serialize`] renders a value
//! into an owned [`Value`] tree and [`Deserialize`] rebuilds a value
//! from one. The derive macros (re-exported from `serde_derive`, as
//! upstream does) generate impls that mirror serde's data model:
//! structs become objects, newtype structs are transparent, unit enum
//! variants become strings and data-carrying variants become
//! single-key objects. `serde_json` in this workspace prints and parses
//! the [`Value`] tree as standard JSON.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A self-describing data tree — the meeting point of [`Serialize`]
/// and [`Deserialize`] (plays the role of `serde_json::Value`).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer too large for `i64`.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map with string keys (insertion order preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Looks up an object field by key.
    pub fn get_field(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|entries| entries.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// A short human label for the value's kind (for error messages).
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// A deserialization error: what was expected, what was found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Creates an error with a custom message.
    pub fn custom(msg: impl fmt::Display) -> Error {
        Error(msg.to_string())
    }

    /// Creates a type-mismatch error.
    pub fn expected(what: &str, found: &Value) -> Error {
        Error(format!("expected {what}, found {}", found.kind()))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    /// Renders `self` as a [`Value`].
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds a value from `v`.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] when the tree does not match the expected
    /// shape (wrong kind, missing field, out-of-range number, …).
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---- primitive impls ----------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::expected("bool", other)),
        }
    }
}

macro_rules! impl_serde_int {
    (@ser_signed $t:ty) => {
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    };
    (@ser_unsigned $t:ty) => {
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                match i64::try_from(*self) {
                    Ok(i) => Value::Int(i),
                    Err(_) => Value::UInt(*self as u64),
                }
            }
        }
    };
    ($($kind:tt $t:ty),* $(,)?) => {$(
        impl_serde_int!(@$kind $t);

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let out = match v {
                    Value::Int(i) => <$t>::try_from(*i).ok(),
                    Value::UInt(u) => <$t>::try_from(*u).ok(),
                    other => return Err(Error::expected("integer", other)),
                };
                out.ok_or_else(|| {
                    Error::custom(format!(
                        "integer {v:?} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}

impl_serde_int!(
    ser_unsigned u8, ser_unsigned u16, ser_unsigned u32, ser_unsigned u64,
    ser_unsigned usize, ser_signed i8, ser_signed i16, ser_signed i32,
    ser_signed i64, ser_signed isize,
);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            Value::UInt(u) => Ok(*u as f64),
            Value::Null => Ok(f64::NAN),
            other => Err(Error::expected("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().expect("one char")),
            other => Err(Error::expected("single-character string", other)),
        }
    }
}

// ---- containers ---------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+)),* $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }

        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(items) => {
                        let mut it = items.iter();
                        let tuple = ($(
                            {
                                let _ = $idx;
                                $name::from_value(
                                    it.next().ok_or_else(|| Error::custom("tuple too short"))?,
                                )?
                            },
                        )+);
                        if it.next().is_some() {
                            return Err(Error::custom("tuple too long"));
                        }
                        Ok(tuple)
                    }
                    other => Err(Error::expected("array", other)),
                }
            }
        }
    )*};
}

impl_serde_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
);

/// Renders a map key: serde's JSON convention requires string keys, so
/// the key's [`Value`] must be a string or an integer.
fn key_string<K: Serialize>(key: &K) -> Result<String, Error> {
    match key.to_value() {
        Value::Str(s) => Ok(s),
        Value::Int(i) => Ok(i.to_string()),
        Value::UInt(u) => Ok(u.to_string()),
        other => Err(Error::expected("string-like map key", &other)),
    }
}

/// Rebuilds a map key from its string form.
fn key_from_string<K: Deserialize>(key: &str) -> Result<K, Error> {
    K::from_value(&Value::Str(key.to_string())).or_else(|_| {
        key.parse::<i64>()
            .map_err(|_| Error::custom(format!("unparseable map key {key:?}")))
            .and_then(|i| K::from_value(&Value::Int(i)))
    })
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| {
                    (
                        key_string(k).expect("map key must be string-like"),
                        v.to_value(),
                    )
                })
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((key_from_string(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(Error::expected("object", other)),
        }
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| {
                (
                    key_string(k).expect("map key must be string-like"),
                    v.to_value(),
                )
            })
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + std::hash::Hash + Eq,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((key_from_string(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(Error::expected("object", other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-9i64).to_value()).unwrap(), -9);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        let o: Option<u8> = None;
        assert_eq!(Option::<u8>::from_value(&o.to_value()).unwrap(), None);
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1.25f64);
        assert_eq!(
            BTreeMap::<String, f64>::from_value(&m.to_value()).unwrap(),
            m
        );
    }

    #[test]
    fn out_of_range_integer_errors() {
        assert!(u8::from_value(&Value::Int(300)).is_err());
    }
}
