//! Offline stand-in for the `serde_json` crate.
//!
//! Prints the workspace serde shim's [`serde::Value`] tree as standard
//! JSON and parses JSON text back into it. Floats are printed with
//! Rust's shortest round-trip formatting (`{:?}`), so
//! `from_str(&to_string(&x)?)` reconstructs every finite `f64`
//! bit-exactly; non-finite floats serialize as `null`, as upstream
//! `serde_json` does.

#![warn(missing_docs)]

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// A serialization or parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Error {
        Error(e.to_string())
    }
}

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// Never fails for the shim's data model; the `Result` mirrors the
/// upstream signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as two-space-indented JSON.
///
/// # Errors
///
/// Never fails for the shim's data model; the `Result` mirrors the
/// upstream signature.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0);
    Ok(out)
}

/// Parses JSON text into a `T`.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON or when the parsed tree does
/// not match `T`'s shape.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value(text)?;
    Ok(T::from_value(&value)?)
}

// ---- printing -----------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<&str>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_f64(out, *f),
        Value::Str(s) => write_json_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_json_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<&str>, level: usize) {
    if let Some(pad) = indent {
        out.push('\n');
        for _ in 0..level {
            out.push_str(pad);
        }
    }
}

fn write_f64(out: &mut String, f: f64) {
    if !f.is_finite() {
        out.push_str("null");
    } else {
        // `{:?}` is Rust's shortest representation that round-trips the
        // exact bit pattern; it always contains `.`, `e` or is integral.
        out.push_str(&format!("{f:?}"));
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parsing ------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(Error::new(format!(
                "unexpected character {:?} at byte {}",
                b as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected ',' or ']' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            entries.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected ',' or '}}' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            // Surrogate pairs are not produced by this
                            // printer; reject rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| Error::new("invalid unicode scalar"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid number {text:?}")))
        } else if let Ok(i) = text.parse::<i64>() {
            Ok(Value::Int(i))
        } else if let Ok(u) = text.parse::<u64>() {
            Ok(Value::UInt(u))
        } else {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid number {text:?}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "42", "-7", "1.5", "\"hi\""] {
            let v = parse_value(text).unwrap();
            let mut out = String::new();
            write_value(&mut out, &v, None, 0);
            assert_eq!(out, text);
        }
    }

    #[test]
    fn floats_round_trip_bit_exactly() {
        for f in [0.1, 1.0 / 3.0, 1e-300, 2.5e17, std::f64::consts::PI] {
            let s = to_string(&f).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{s}");
        }
    }

    #[test]
    fn nested_structures_round_trip() {
        let text = r#"{"a":[1,2.5,"x"],"b":{"c":null,"d":false}}"#;
        let v = parse_value(text).unwrap();
        let mut out = String::new();
        write_value(&mut out, &v, None, 0);
        assert_eq!(out, text);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = parse_value(r#"{"xs":[1,2],"name":"demo"}"#).unwrap();
        let mut pretty = String::new();
        write_value(&mut pretty, &v, Some("  "), 0);
        assert!(pretty.contains('\n'));
        assert_eq!(parse_value(&pretty).unwrap(), v);
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "line\nquote\"back\\slash\ttab\u{1}".to_string();
        let s = to_string(&original).unwrap();
        let back: String = from_str(&s).unwrap();
        assert_eq!(back, original);
    }

    #[test]
    fn errors_on_garbage() {
        assert!(parse_value("{invalid}").is_err());
        assert!(parse_value("[1,]").is_err());
        assert!(parse_value("12 34").is_err());
    }
}
