//! Offline stand-in for the `criterion` crate.
//!
//! Provides the group/`bench_function`/`iter` API surface the
//! workspace's benches use, backed by a plain wall-clock harness: each
//! benchmark is warmed up once, timed for `sample_size` samples and
//! reported to stdout as `name ... mean <t> (min <t>, max <t>)`. There
//! is no statistical analysis, HTML report or comparison baseline —
//! the numbers are for eyeballing relative speed (e.g. serial versus
//! parallel DSE), which is all the workspace needs offline.

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box`, criterion's optimizer barrier.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The top-level benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Sets the default number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.default_sample_size = n.max(1);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: self.default_sample_size,
        }
    }

    /// Benches a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        run_benchmark(&id.into().label, sample_size, f);
        self
    }
}

/// A named collection of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benches in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benches `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_benchmark(&label, self.sample_size, f);
        self
    }

    /// Benches `f` with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (upstream flushes reports here; a no-op offline).
    pub fn finish(self) {}
}

/// A benchmark identifier, optionally parameterized.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// An id that is just the parameter (`from_parameter` upstream).
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> BenchmarkId {
        BenchmarkId {
            label: label.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> BenchmarkId {
        BenchmarkId { label }
    }
}

/// Hands timing control to the benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u32,
}

impl Bencher {
    /// Times `f`, recording one sample per call batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed warm-up call.
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(f());
        }
        self.samples.push(start.elapsed() / self.iters_per_sample);
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        iters_per_sample: 1,
    };
    for _ in 0..sample_size {
        f(&mut bencher);
    }
    if bencher.samples.is_empty() {
        println!("{label:<50} (no samples)");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let min = bencher.samples.iter().min().expect("non-empty");
    let max = bencher.samples.iter().max().expect("non-empty");
    println!(
        "{label:<50} mean {} (min {}, max {}, n={})",
        fmt_duration(mean),
        fmt_duration(*min),
        fmt_duration(*max),
        bencher.samples.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", d.as_secs_f64() * 1e3)
    } else if nanos >= 1_000 {
        format!("{:.3} µs", d.as_secs_f64() * 1e6)
    } else {
        format!("{nanos} ns")
    }
}

/// Declares a benchmark group runner, mirroring upstream's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, mirroring upstream's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::from_parameter(42u32), &42u32, |b, n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }

    #[test]
    fn harness_runs() {
        let mut criterion = Criterion::default();
        trivial_bench(&mut criterion);
        criterion.bench_function("top-level", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert!(fmt_duration(Duration::from_micros(1500)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(2)).ends_with("s"));
    }
}
