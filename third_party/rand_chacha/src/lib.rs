//! Offline stand-in for the `rand_chacha` crate.
//!
//! Implements a genuine ChaCha stream cipher (8 rounds, RFC 7539 block
//! function) as a deterministic, seedable, cloneable RNG. The word
//! stream is high-quality and stable across runs and platforms, but is
//! **not** guaranteed to be bit-compatible with the upstream
//! `rand_chacha` crate — the workspace only relies on determinism for
//! a given seed.

#![warn(missing_docs)]

use rand::RngCore;

pub mod rand_core {
    //! Re-exports matching `rand_chacha::rand_core`.

    pub use rand::{RngCore, SeedableRng};
}

/// A ChaCha RNG with 8 rounds — the cheapest member of the family, the
/// usual choice for simulation workloads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    /// Cipher state: constants, 256-bit key, 64-bit counter, 64-bit nonce.
    state: [u32; 16],
    /// Current 16-word output block.
    block: [u32; 16],
    /// Next unread word index in `block`; 16 means "block exhausted".
    cursor: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
const ROUNDS: usize = 8;

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self
            .block
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(*s);
        }
        // 64-bit block counter in words 12..14.
        let counter = (u64::from(self.state[13]) << 32 | u64::from(self.state[12])).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.cursor = 0;
    }
}

impl rand::SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        // Counter and nonce start at zero.
        ChaCha8Rng {
            state,
            block: [0; 16],
            cursor: 16,
        }
    }

    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let mut seed = [0u8; 32];
        for chunk in seed.chunks_exact_mut(8) {
            chunk.copy_from_slice(&rand::split_mix_64(&mut sm).to_le_bytes());
        }
        Self::from_seed(seed)
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let word = self.block[self.cursor];
        self.cursor += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32();
        let hi = self.next_u32();
        u64::from(hi) << 32 | u64::from(lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn clone_forks_the_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        let _ = a.next_u64();
        let mut b = a.clone();
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn uniform_mean_is_centred() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn bits_look_balanced() {
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let ones: u32 = (0..1000).map(|_| rng.next_u64().count_ones()).sum();
        let ratio = f64::from(ones) / 64_000.0;
        assert!((ratio - 0.5).abs() < 0.02, "ones ratio {ratio}");
    }
}
