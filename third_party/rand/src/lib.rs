//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a minimal, API-compatible subset of `rand` 0.8: the
//! [`RngCore`] / [`Rng`] traits, [`SeedableRng`], uniform sampling via
//! [`Rng::gen`] / [`Rng::gen_range`] and in-place shuffling via
//! [`seq::SliceRandom`]. The sampling algorithms follow the same
//! constructions as upstream (53-bit mantissa floats, Lehmer-style
//! widening multiply for bounded integers, Fisher–Yates shuffling) but
//! the exact output streams are **not** guaranteed to match upstream
//! `rand` — only to be deterministic for a given seeded generator.

#![warn(missing_docs)]

/// The core of a random number generator: a source of `u32`/`u64` words.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;

    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be instantiated from a small seed.
pub trait SeedableRng: Sized {
    /// The fixed-size seed accepted by [`SeedableRng::from_seed`].
    type Seed;

    /// Creates a generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it to a full seed
    /// with SplitMix64 (the same expansion `rand_core` uses).
    fn seed_from_u64(state: u64) -> Self;
}

/// Expands a `u64` into a stream of seed words via SplitMix64.
///
/// Exposed so sibling shims (`rand_chacha`) can share the expansion.
pub fn split_mix_64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types that can be sampled uniformly from an `RngCore` by
/// [`Rng::gen`] (the role of `rand`'s `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),* $(,)?) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.$via() as $t
            }
        }
    )*};
}

impl_standard_int! {
    u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64,
    usize => next_u64, i8 => next_u32, i16 => next_u32, i32 => next_u32,
    i64 => next_u64, isize => next_u64,
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u: f64 = Standard::sample(rng);
        let v = self.start + u * (self.end - self.start);
        // Rounding can land exactly on `end` for tiny ranges; step down
        // to keep the bound exclusive (works for any sign of `end`).
        if v < self.end {
            v
        } else {
            self.end.next_down()
        }
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u: f32 = Standard::sample(rng);
        let v = self.start + u * (self.end - self.start);
        if v < self.end {
            v
        } else {
            self.end.next_down()
        }
    }
}

/// Draws a `u64` below `bound` without modulo bias (widening-multiply
/// rejection, Lemire's method).
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(bound as u128);
        let lo = m as u64;
        if lo >= bound || lo >= (u64::MAX - bound + 1) % bound {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = uniform_u64_below(rng, span);
                ((self.start as i128) + off as i128) as $t
            }
        }

        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return Standard::sample(rng);
                }
                let off = uniform_u64_below(rng, span as u64);
                ((start as i128) + off as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing random sampling methods, blanket-implemented for every
/// [`RngCore`] (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value from the `Standard` distribution (uniform floats in
    /// `[0, 1)`, any-bit-pattern integers, fair bools).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Draws a fair boolean.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let u: f64 = self.gen();
        u < p
    }
}

impl<R: RngCore> Rng for R {}

pub mod seq {
    //! Sequence-related helpers (the subset of `rand::seq` in use).

    use super::{uniform_u64_below, RngCore};

    /// Slice extensions: shuffling and random element choice.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns one uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_u64_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[uniform_u64_below(rng, self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            let mut s = self.0;
            self.0 = self.0.wrapping_add(1);
            split_mix_64(&mut s)
        }
    }

    #[test]
    fn floats_are_unit_interval() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = Counter(3);
        for _ in 0..1000 {
            let x = rng.gen_range(10u32..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn float_ranges_with_nonpositive_end_stay_exclusive() {
        let mut rng = Counter(9);
        for _ in 0..1000 {
            let a = rng.gen_range(-1.0f64..0.0);
            assert!((-1.0..0.0).contains(&a), "{a}");
            let b = rng.gen_range(-5.0f64..-2.0);
            assert!((-5.0..-2.0).contains(&b), "{b}");
            let c = rng.gen_range(-1.0f32..0.0);
            assert!((-1.0..0.0).contains(&c), "{c}");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Counter(11);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice sorted");
    }
}
