//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for
//! the workspace's simplified serde shim without depending on
//! `syn`/`quote` (unavailable offline): the item is parsed directly
//! from the `proc_macro` token stream and the impls are emitted as
//! formatted strings.
//!
//! Representation choices mirror upstream serde's JSON conventions:
//! named structs serialize as objects, newtype structs are transparent,
//! tuple structs as arrays, unit enum variants as strings, and
//! data-carrying variants as single-key objects.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// A parsed `struct`/`enum` item, reduced to what codegen needs.
struct Item {
    name: String,
    /// Generic parameters in declaration order (lifetimes keep their `'`).
    generics: Vec<String>,
    kind: Kind,
}

enum Kind {
    UnitStruct,
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

// ---- token-stream parsing ----------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Cursor {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        self.pos += 1;
        t
    }

    fn eat_punct(&mut self, ch: char) -> bool {
        if let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() == ch {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn eat_ident(&mut self, word: &str) -> bool {
        if let Some(TokenTree::Ident(i)) = self.peek() {
            if i.to_string() == word {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_ident(&mut self) -> String {
        match self.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde_derive: expected identifier, found {other:?}"),
        }
    }

    /// Skips outer attributes (`#[...]`), including doc comments.
    fn skip_attributes(&mut self) {
        while self.eat_punct('#') {
            match self.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {}
                other => panic!("serde_derive: malformed attribute, found {other:?}"),
            }
        }
    }

    /// Skips `pub`, `pub(...)` and other visibility qualifiers.
    fn skip_visibility(&mut self) {
        if self.eat_ident("pub") {
            if let Some(TokenTree::Group(g)) = self.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    self.pos += 1;
                }
            }
        }
    }

    /// Consumes a `<...>` generics list, returning the parameter names.
    fn parse_generics(&mut self) -> Vec<String> {
        let mut params = Vec::new();
        if !self.eat_punct('<') {
            return params;
        }
        let mut depth = 1usize;
        let mut at_param_start = true;
        while depth > 0 {
            match self.next() {
                Some(TokenTree::Punct(p)) => match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 1 => at_param_start = true,
                    '\'' if depth == 1 && at_param_start => {
                        let life = self.expect_ident();
                        params.push(format!("'{life}"));
                        at_param_start = false;
                    }
                    _ => {}
                },
                Some(TokenTree::Ident(i)) if depth == 1 && at_param_start => {
                    let word = i.to_string();
                    if word == "const" {
                        // `const N: usize` — keep the name, bounds skipped below.
                        let name = self.expect_ident();
                        params.push(format!("const {name}"));
                    } else {
                        params.push(word);
                    }
                    at_param_start = false;
                }
                Some(_) => {}
                None => panic!("serde_derive: unterminated generics"),
            }
        }
        params
    }

    /// Skips a `where` clause, stopping before the item body.
    fn skip_where_clause(&mut self) {
        if !self.eat_ident("where") {
            return;
        }
        while let Some(t) = self.peek() {
            match t {
                TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => return,
                TokenTree::Punct(p) if p.as_char() == ';' => return,
                _ => {
                    self.pos += 1;
                }
            }
        }
    }

    /// Skips a type expression up to a top-level `,` (which is consumed).
    fn skip_type_to_comma(&mut self) {
        let mut angle_depth = 0usize;
        while let Some(t) = self.next() {
            if let TokenTree::Punct(p) = t {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth = angle_depth.saturating_sub(1),
                    ',' if angle_depth == 0 => return,
                    _ => {}
                }
            }
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut c = Cursor::new(input);
    c.skip_attributes();
    c.skip_visibility();

    let is_enum = if c.eat_ident("struct") {
        false
    } else if c.eat_ident("enum") {
        true
    } else {
        panic!("serde_derive: only structs and enums are supported");
    };
    let name = c.expect_ident();
    let generics = c.parse_generics();
    c.skip_where_clause();

    let kind = if is_enum {
        match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive: expected enum body, found {other:?}"),
        }
    } else {
        match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::UnitStruct,
            other => panic!("serde_derive: expected struct body, found {other:?}"),
        }
    };

    Item {
        name,
        generics,
        kind,
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut c = Cursor::new(stream);
    let mut fields = Vec::new();
    loop {
        c.skip_attributes();
        c.skip_visibility();
        if c.peek().is_none() {
            return fields;
        }
        fields.push(c.expect_ident());
        if !c.eat_punct(':') {
            panic!("serde_derive: expected `:` after field name");
        }
        c.skip_type_to_comma();
    }
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut c = Cursor::new(stream);
    let mut count = 0usize;
    loop {
        c.skip_attributes();
        c.skip_visibility();
        if c.peek().is_none() {
            return count;
        }
        count += 1;
        c.skip_type_to_comma();
    }
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut c = Cursor::new(stream);
    let mut variants = Vec::new();
    loop {
        c.skip_attributes();
        if c.peek().is_none() {
            return variants;
        }
        let name = c.expect_ident();
        let shape = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let fields = count_tuple_fields(g.stream());
                c.pos += 1;
                Shape::Tuple(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                c.pos += 1;
                Shape::Named(fields)
            }
            _ => Shape::Unit,
        };
        // Skip an optional `= discriminant` and the trailing comma.
        if c.eat_punct('=') {
            c.skip_type_to_comma();
        } else {
            c.eat_punct(',');
        }
        variants.push(Variant { name, shape });
    }
}

// ---- code generation ----------------------------------------------------

/// Builds `impl<...> Trait for Name<...>` headers with per-type-param
/// bounds on the derived trait.
fn impl_header(item: &Item, trait_path: &str) -> String {
    if item.generics.is_empty() {
        return format!("impl {trait_path} for {} ", item.name);
    }
    let bounded: Vec<String> = item
        .generics
        .iter()
        .map(|g| {
            if g.starts_with('\'') || g.starts_with("const ") {
                g.clone()
            } else {
                format!("{g}: {trait_path}")
            }
        })
        .collect();
    let args: Vec<String> = item
        .generics
        .iter()
        .map(|g| g.strip_prefix("const ").unwrap_or(g).to_string())
        .collect();
    format!(
        "impl<{}> {trait_path} for {}<{}> ",
        bounded.join(", "),
        item.name,
        args.join(", ")
    )
}

fn gen_serialize(item: &Item) -> String {
    let body = match &item.kind {
        Kind::UnitStruct => "::serde::Value::Null".to_string(),
        Kind::NamedStruct(fields) => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "fields.push(({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f})));\n"
                    )
                })
                .collect();
            format!(
                "let mut fields: Vec<(String, ::serde::Value)> = Vec::new();\n{pushes}::serde::Value::Object(fields)"
            )
        }
        Kind::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Kind::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.shape {
                        Shape::Unit => format!(
                            "Self::{vname} => ::serde::Value::Str({vname:?}.to_string()),\n"
                        ),
                        Shape::Tuple(1) => format!(
                            "Self::{vname}(f0) => ::serde::Value::Object(vec![({vname:?}.to_string(), ::serde::Serialize::to_value(f0))]),\n"
                        ),
                        Shape::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(f{i})"))
                                .collect();
                            format!(
                                "Self::{vname}({}) => ::serde::Value::Object(vec![({vname:?}.to_string(), ::serde::Value::Array(vec![{}]))]),\n",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        Shape::Named(fields) => {
                            let binds = fields.join(", ");
                            let pushes: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "({f:?}.to_string(), ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "Self::{vname} {{ {binds} }} => ::serde::Value::Object(vec![({vname:?}.to_string(), ::serde::Value::Object(vec![{}]))]),\n",
                                pushes.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n{}{{\nfn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n",
        impl_header(item, "::serde::Serialize")
    )
}

/// Generates an expression deserializing named fields from object `src`
/// into a `Name { ... }` literal.
fn named_fields_expr(constructor: &str, fields: &[String], src: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::from_value({src}.get_field({f:?}).unwrap_or(&::serde::Value::Null))?"
            )
        })
        .collect();
    format!("{constructor} {{ {} }}", inits.join(", "))
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::UnitStruct => "let _ = v; Ok(Self)".to_string(),
        Kind::NamedStruct(fields) => format!(
            "match v {{\n::serde::Value::Object(_) => Ok({}),\nother => Err(::serde::Error::expected({name:?}, other)),\n}}",
            named_fields_expr("Self", fields, "v")
        ),
        Kind::TupleStruct(1) => "Ok(Self(::serde::Deserialize::from_value(v)?))".to_string(),
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "match v {{\n::serde::Value::Array(items) if items.len() == {n} => Ok(Self({})),\nother => Err(::serde::Error::expected(\"array of length {n}\", other)),\n}}",
                items.join(", ")
            )
        }
        Kind::Enum(variants) => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.shape, Shape::Unit))
                .map(|v| format!("{:?} => Ok(Self::{}),\n", v.name, v.name))
                .collect();
            let data_arms: String = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.shape {
                        Shape::Unit => None,
                        Shape::Tuple(1) => Some(format!(
                            "{vname:?} => Ok(Self::{vname}(::serde::Deserialize::from_value(inner)?)),\n"
                        )),
                        Shape::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                                .collect();
                            Some(format!(
                                "{vname:?} => match inner {{\n::serde::Value::Array(items) if items.len() == {n} => Ok(Self::{vname}({})),\nother => Err(::serde::Error::expected(\"array of length {n}\", other)),\n}},\n",
                                items.join(", ")
                            ))
                        }
                        Shape::Named(fields) => Some(format!(
                            "{vname:?} => match inner {{\n::serde::Value::Object(_) => Ok({}),\nother => Err(::serde::Error::expected(\"object\", other)),\n}},\n",
                            named_fields_expr(&format!("Self::{vname}"), fields, "inner")
                        )),
                    }
                })
                .collect();
            format!(
                "match v {{\n::serde::Value::Str(tag) => match tag.as_str() {{\n{unit_arms}other => Err(::serde::Error::custom(format!(\"unknown {name} variant {{other:?}}\"))),\n}},\n::serde::Value::Object(entries) if entries.len() == 1 => {{\nlet (tag, inner) = &entries[0];\nmatch tag.as_str() {{\n{data_arms}other => Err(::serde::Error::custom(format!(\"unknown {name} variant {{other:?}}\"))),\n}}\n}},\nother => Err(::serde::Error::expected({name:?}, other)),\n}}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n{}{{\nfn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n}}\n",
        impl_header(item, "::serde::Deserialize")
    )
}

/// Derives the workspace serde shim's `Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive: generated Serialize impl must parse")
}

/// Derives the workspace serde shim's `Deserialize` trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive: generated Deserialize impl must parse")
}
